//! Property-based tests for the reconfiguration plane: CRC-32, bitstream
//! authentication, region geometry, ICAP access control, and vote-gate
//! soundness under randomized vote sets.

use manycore_resilience::crypto::MacKey;
use manycore_resilience::fpga::{
    crc32, Bitstream, FpgaFabric, Icap, Principal, ReconfigEngine, Region,
};
use manycore_resilience::soc::{PrivilegeGate, PrivilegedOp, Vote};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- CRC-32 ----------------

    #[test]
    fn crc32_detects_any_single_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..128), byte in 0usize..128, bit in 0u8..8) {
        let c1 = crc32(&data);
        let mut tampered = data.clone();
        let idx = byte % tampered.len();
        tampered[idx] ^= 1 << bit;
        prop_assert_ne!(c1, crc32(&tampered), "CRC-32 must catch single-bit flips");
    }

    #[test]
    fn crc32_is_a_function(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(crc32(&data), crc32(&data));
    }

    // ---------------- regions ----------------

    #[test]
    fn region_overlap_is_symmetric_and_reflexive(s1 in 0u32..60, l1 in 1u32..8, s2 in 0u32..60, l2 in 1u32..8) {
        let a = Region::new(s1, l1);
        let b = Region::new(s2, l2);
        prop_assert!(a.overlaps(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        // Overlap iff some frame is shared.
        let shared = a.frames().any(|f| b.frames().any(|g| g == f));
        prop_assert_eq!(a.overlaps(&b), shared);
    }

    // ---------------- bitstreams ----------------

    #[test]
    fn bitstream_verifies_only_at_its_region_and_key(variant in any::<u64>(), start in 0u32..8, len in 1u32..4, key_seed in any::<u64>(), other_start in 0u32..8) {
        let key = MacKey::derive(key_seed, "bs");
        let region = Region::new(start, len);
        let bs = Bitstream::for_variant(variant, region, 4, &key);
        prop_assert!(bs.verify(region, &key));
        let other = Region::new(other_start, len);
        if other != region {
            prop_assert!(!bs.verify(other, &key), "region binding");
        }
        let wrong_key = MacKey::derive(key_seed.wrapping_add(1), "bs");
        prop_assert!(!bs.verify(region, &wrong_key), "key binding");
    }

    #[test]
    fn bitstream_word_corruption_always_detected(variant in any::<u64>(), word in 0usize..8, flip in any::<u64>()) {
        prop_assume!(flip != 0);
        let key = MacKey::derive(1, "bs");
        let region = Region::new(0, 2);
        let mut bs = Bitstream::for_variant(variant, region, 4, &key);
        let idx = word % bs.words.len();
        bs.words[idx] ^= flip;
        prop_assert!(!bs.verify(region, &key));
    }

    #[test]
    fn retarget_round_trip(variant in any::<u64>(), s1 in 0u32..8, s2 in 0u32..8, len in 1u32..4) {
        let key = MacKey::derive(2, "bs");
        let from = Region::new(s1, len);
        let to = Region::new(s2, len);
        let bs = Bitstream::for_variant(variant, from, 4, &key);
        let back = bs.retarget(to, &key).retarget(from, &key);
        prop_assert_eq!(back, bs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------------- ICAP + gate soundness ----------------

    #[test]
    fn icap_never_writes_without_a_covering_grant(grant_start in 0u32..12, grant_len in 1u32..5, write_start in 0u32..12, write_len in 1u32..5) {
        let key = MacKey::derive(3, "bs");
        let mut icap = Icap::new(key.clone());
        let grant = Region::new(grant_start, grant_len);
        icap.allow(Principal(0), grant);
        let mut fabric = FpgaFabric::new(4, 4, 4);
        let target = Region::new(write_start, write_len);
        let bs = Bitstream::for_variant(1, target, 4, &key);
        let covered = grant.start <= target.start
            && grant.start + grant.len >= target.start + target.len;
        let in_bounds = fabric.contains(target);
        let result = icap.write(&mut fabric, Principal(0), target, &bs);
        if covered && in_bounds {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn gate_soundness_random_vote_subsets(
        kernels in 2u32..6,
        threshold_frac in 1u32..=2,
        voters in proptest::collection::vec(0u32..8, 0..10),
        forged in proptest::collection::vec(0u32..8, 0..4),
    ) {
        let threshold = ((kernels / threshold_frac).max(1)) as usize;
        let gate = PrivilegeGate::new(5, kernels, threshold);
        let op = PrivilegedOp::RejuvenateTile { tile: manycore_resilience::soc::TileId(1) };
        let mut votes: Vec<Vote> = Vec::new();
        // Genuine votes from (possibly repeated, possibly unknown) kernels.
        for v in &voters {
            if let Some(k) = gate.kernel_key(*v) {
                votes.push(Vote::sign(*v, k, &op));
            } else {
                // Unknown kernel signs with a derived-but-wrong key.
                votes.push(Vote::sign(*v, &MacKey::derive(999, "ghost"), &op));
            }
        }
        // Forged votes in real kernels' names.
        for v in &forged {
            votes.push(Vote::sign(*v % kernels, &MacKey::derive(123, "forged"), &op));
        }
        // Ground truth: distinct known kernels with genuine signatures.
        let mut genuine: Vec<u32> = voters
            .iter()
            .copied()
            .filter(|v| *v < kernels)
            .collect();
        genuine.sort_unstable();
        genuine.dedup();
        prop_assert_eq!(
            gate.check(&op, &votes),
            genuine.len() >= threshold,
            "gate must count exactly the distinct genuine votes"
        );
    }

    #[test]
    fn reconfigure_is_atomic_under_random_failures(
        start in 0u32..14,
        len in 1u32..4,
        corrupt in proptest::bool::ANY,
    ) {
        let key = MacKey::derive(6, "bs");
        let mut icap = Icap::new(key.clone());
        icap.allow(Principal(0), Region::new(0, 16));
        let mut engine = ReconfigEngine::new(FpgaFabric::new(4, 4, 4), icap);
        let region = Region::new(start, len);
        let mut bs = Bitstream::for_variant(7, region, 4, &key);
        if corrupt {
            bs.words[0] ^= 0xFFFF;
        }
        let in_bounds = engine.fabric().contains(region);
        let result = engine.reconfigure(Principal(0), region, &bs, 1);
        match (in_bounds, corrupt) {
            (true, false) => {
                prop_assert!(result.is_ok());
                prop_assert_eq!(engine.fabric().block_region(1), Some(region));
            }
            _ => {
                prop_assert!(result.is_err());
                prop_assert_eq!(engine.fabric().block_region(1), None, "no half-enabled blocks");
            }
        }
    }
}
