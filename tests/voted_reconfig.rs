//! Integration: the voted privilege gate in front of the FPGA fabric —
//! the paper's §II-E / [55] "last line of defense" end to end.

use manycore_resilience::crypto::MacKey;
use manycore_resilience::fpga::{
    Bitstream, FpgaFabric, FrameState, Icap, IcapError, Principal, ReconfigEngine, ReconfigError,
    Region,
};
use manycore_resilience::soc::{GateError, PrivilegeGate, PrivilegedOp, Vote};

const WORDS: usize = 4;

fn setup(kernels: u32, threshold: usize) -> (PrivilegeGate, ReconfigEngine, MacKey) {
    let bs_key = MacKey::derive(0x7E57, "bitstreams");
    let mut icap = Icap::new(bs_key.clone());
    icap.allow(PrivilegeGate::GATE_PRINCIPAL, Region::new(0, 16));
    let engine = ReconfigEngine::new(FpgaFabric::new(4, 4, WORDS), icap);
    (PrivilegeGate::new(0x7E57, kernels, threshold), engine, bs_key)
}

fn approve(gate: &PrivilegeGate, op: &PrivilegedOp, kernels: &[u32]) -> Vec<Vote> {
    kernels.iter().map(|k| Vote::sign(*k, gate.kernel_key(*k).expect("known kernel"), op)).collect()
}

#[test]
fn full_lifecycle_install_relocate_decommission() {
    let (mut gate, mut engine, key) = setup(3, 2);
    let home = Region::new(0, 2);
    let install = PrivilegedOp::Reconfigure {
        region: home,
        block: 7,
        bitstream: Bitstream::for_variant(1, home, WORDS, &key),
    };
    let votes = approve(&gate, &install, &[0, 1]);
    gate.execute(&mut engine, &install, &votes).unwrap();
    assert_eq!(engine.fabric().block_region(7), Some(home));

    // Relocation through the gate principal.
    let dest = Region::new(8, 2);
    engine.relocate(PrivilegeGate::GATE_PRINCIPAL, 7, dest).unwrap();
    assert_eq!(engine.fabric().block_region(7), Some(dest));
    for f in home.frames() {
        assert_eq!(engine.fabric().frame_state(f), FrameState::Empty);
    }

    // Decommission frees everything.
    engine.decommission(PrivilegeGate::GATE_PRINCIPAL, 7).unwrap();
    assert_eq!(engine.fabric().block_region(7), None);
}

#[test]
fn minority_cannot_reconfigure_and_cannot_bypass() {
    let (mut gate, mut engine, key) = setup(5, 3);
    let region = Region::new(0, 2);
    let evil = PrivilegedOp::Reconfigure {
        region,
        block: 0xBAD,
        bitstream: Bitstream::for_variant(666, region, WORDS, &key),
    };
    // Two compromised kernels of five: below the 3-vote quorum.
    let votes = approve(&gate, &evil, &[3, 4]);
    assert_eq!(gate.execute(&mut engine, &evil, &votes), Err(GateError::InsufficientVotes));
    // Vote stuffing with duplicates doesn't help.
    let mut stuffed = approve(&gate, &evil, &[3, 4]);
    stuffed.extend(approve(&gate, &evil, &[3, 3, 4]));
    assert_eq!(gate.execute(&mut engine, &evil, &stuffed), Err(GateError::InsufficientVotes));
    // Raw ICAP bypass: denied by ACL.
    let direct = engine.reconfigure(
        Principal(3),
        region,
        &Bitstream::for_variant(666, region, WORDS, &key),
        0xBAD,
    );
    assert_eq!(direct, Err(ReconfigError::Icap(IcapError::AccessDenied)));
    assert_eq!(engine.fabric().block_region(0xBAD), None);
}

#[test]
fn votes_for_one_op_cannot_be_replayed_for_another() {
    let (mut gate, mut engine, key) = setup(3, 2);
    let benign_region = Region::new(0, 2);
    let benign = PrivilegedOp::Reconfigure {
        region: benign_region,
        block: 1,
        bitstream: Bitstream::for_variant(1, benign_region, WORDS, &key),
    };
    let votes = approve(&gate, &benign, &[0, 1]);
    gate.execute(&mut engine, &benign, &votes).unwrap();

    // Replay the same votes for a different target region.
    let other_region = Region::new(4, 2);
    let other = PrivilegedOp::Reconfigure {
        region: other_region,
        block: 2,
        bitstream: Bitstream::for_variant(2, other_region, WORDS, &key),
    };
    assert_eq!(
        gate.execute(&mut engine, &other, &votes),
        Err(GateError::InsufficientVotes),
        "votes are bound to the operation digest"
    );
}

#[test]
fn gate_approved_op_can_still_fail_validation() {
    // The gate checks *authorization*; the ICAP still checks *integrity*.
    let (mut gate, mut engine, _) = setup(3, 2);
    let region = Region::new(0, 2);
    let rogue_key = MacKey::derive(1, "not-the-authority");
    let op = PrivilegedOp::Reconfigure {
        region,
        block: 3,
        bitstream: Bitstream::for_variant(9, region, WORDS, &rogue_key),
    };
    let votes = approve(&gate, &op, &[0, 1]);
    let result = gate.execute(&mut engine, &op, &votes);
    assert_eq!(
        result,
        Err(GateError::Execution(ReconfigError::Icap(IcapError::InvalidBitstream))),
        "defense in depth: authorization does not bypass validation"
    );
}

#[test]
fn grants_flow_only_through_the_gate() {
    let (mut gate, mut engine, key) = setup(3, 2);
    let user = Principal(7);
    let region = Region::new(4, 2);
    assert!(!engine.icap().permits(user, region));
    let grant = PrivilegedOp::Grant { principal: user, region };
    let votes = approve(&gate, &grant, &[1, 2]);
    gate.execute(&mut engine, &grant, &votes).unwrap();
    assert!(engine.icap().permits(user, region));
    // Now the delegated user configures its own frames — §II-E's
    // "the actual configuration of a frame can even be delegated to its
    // current user".
    let bs = Bitstream::for_variant(5, region, WORDS, &key);
    engine.reconfigure(user, region, &bs, 11).unwrap();
    assert_eq!(engine.fabric().block_region(11), Some(region));
    // And revocation takes it back.
    let revoke = PrivilegedOp::Revoke { principal: user, region };
    let votes = approve(&gate, &revoke, &[0, 2]);
    gate.execute(&mut engine, &revoke, &votes).unwrap();
    assert!(!engine.icap().permits(user, region));
}
