//! Top-of-stack smoke test: drives [`ResilientSoc::run_workload`] — the
//! integrated tile-placement → NoC-latency → replication path — for every
//! protocol choice and asserts the cross-replica safety checker stays
//! green. This covers the facade entry point end-to-end beyond what the
//! scenario-specific integration suites exercise.

use manycore_resilience::adapt::ProtocolChoice;
use manycore_resilience::soc::{ResilientSoc, SocConfig};

/// One committed-workload run; returns the report after asserting the
/// universal invariants every healthy run must satisfy.
fn run(
    protocol: ProtocolChoice,
    f: u32,
    clients: u32,
    requests_per_client: u64,
) -> manycore_resilience::bft::runner::RunReport {
    let mut soc = ResilientSoc::new(SocConfig::default());
    let report = soc.run_workload(protocol, f, clients, requests_per_client);
    assert!(report.safety_ok, "{}: correct replicas' logs diverged", report.protocol);
    assert_eq!(
        report.committed,
        u64::from(clients) * requests_per_client,
        "{}: not every requested operation committed",
        report.protocol
    );
    assert!(
        report.committed <= report.requested,
        "{}: committed more than requested",
        report.protocol
    );
    report
}

#[test]
fn minbft_workload_commits_safely() {
    let report = run(ProtocolChoice::MinBft, 1, 1, 3);
    assert_eq!(report.n_replicas, 3, "MinBFT is a 2f+1 protocol");
}

#[test]
fn pbft_workload_commits_safely() {
    let report = run(ProtocolChoice::Pbft, 1, 1, 3);
    assert_eq!(report.n_replicas, 4, "PBFT is a 3f+1 protocol");
}

#[test]
fn passive_workload_commits_safely() {
    let report = run(ProtocolChoice::Passive, 1, 1, 3);
    assert_eq!(report.n_replicas, 2, "passive replication is f+1");
}

#[test]
fn minbft_pays_fewer_messages_than_pbft() {
    let minbft = run(ProtocolChoice::MinBft, 1, 2, 5);
    let pbft = run(ProtocolChoice::Pbft, 1, 2, 5);
    assert!(
        minbft.messages_protocol < pbft.messages_protocol,
        "hybrid-anchored MinBFT ({} msgs) must beat PBFT ({} msgs)",
        minbft.messages_protocol,
        pbft.messages_protocol
    );
}

#[test]
fn workload_is_deterministic_per_seed() {
    let mut a = ResilientSoc::new(SocConfig { mesh_width: 4, mesh_height: 4, seed: 99 });
    let mut b = ResilientSoc::new(SocConfig { mesh_width: 4, mesh_height: 4, seed: 99 });
    let ra = a.run_workload(ProtocolChoice::MinBft, 1, 2, 4);
    let rb = b.run_workload(ProtocolChoice::MinBft, 1, 2, 4);
    assert_eq!(ra.committed, rb.committed);
    assert_eq!(ra.messages_total, rb.messages_total);
    assert_eq!(ra.duration_cycles, rb.duration_cycles);
}
