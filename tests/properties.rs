//! Property-based tests (proptest) over the core invariants:
//! crypto round-trips, ECC correction, USIG uniqueness/monotonicity,
//! protocol safety under random fault configurations, NoC delivery.

use manycore_resilience::bft::adversary::Behavior;
use manycore_resilience::bft::api::{Cluster, ReplicaNode};
use manycore_resilience::bft::broadcast::{run_broadcast, SenderBehavior};
use manycore_resilience::bft::minbft::MinBftCluster;
use manycore_resilience::bft::passive::PassiveCluster;
use manycore_resilience::bft::pbft::PbftCluster;
use manycore_resilience::bft::runner::{run, RunConfig};
use manycore_resilience::bft::ReplicaId;
use manycore_resilience::crypto::{hmac_sha256, hmac_verify, sha256, MacKey, Sha256};
use manycore_resilience::hw::ecc::{DecodeOutcome, Hamming};
use manycore_resilience::hw::{EccRegister, LoadOutcome, RegisterCell};
use manycore_resilience::hybrid::{A2m, KeyRing, TrInc, UiWindow, Usig, UsigId};
use manycore_resilience::noc::network::{Network, NetworkConfig};
use manycore_resilience::noc::{Mesh2d, NodeId, Routing};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- crypto ----------------

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_verifies_iff_untampered(key_seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 1..256), flip_byte in 0usize..256, flip_bit in 0u8..8) {
        let key = MacKey::derive(key_seed, "prop");
        let tag = hmac_sha256(key.as_bytes(), &msg);
        prop_assert!(hmac_verify(key.as_bytes(), &msg, &tag));
        let mut tampered = msg.clone();
        let idx = flip_byte % tampered.len();
        tampered[idx] ^= 1 << flip_bit;
        prop_assert!(!hmac_verify(key.as_bytes(), &tampered, &tag));
    }

    // ---------------- ECC ----------------

    #[test]
    fn hamming_roundtrip_any_width(width in 1u32..=64, raw in any::<u64>()) {
        let code = Hamming::new(width);
        let data = if width == 64 { raw } else { raw & ((1u64 << width) - 1) };
        prop_assert_eq!(code.decode(code.encode(data)), DecodeOutcome::Clean(data));
    }

    #[test]
    fn hamming_corrects_any_single_flip(width in 1u32..=64, raw in any::<u64>(), bit in any::<u32>()) {
        let code = Hamming::new(width);
        let data = if width == 64 { raw } else { raw & ((1u64 << width) - 1) };
        let cw = code.encode(data);
        let bit = bit % code.codeword_bits();
        match code.decode(cw ^ (1u128 << bit)) {
            DecodeOutcome::Corrected(v, pos) => {
                prop_assert_eq!(v, data);
                prop_assert_eq!(pos, bit);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    #[test]
    fn hamming_detects_any_double_flip(raw in any::<u64>(), b1 in any::<u32>(), b2 in any::<u32>()) {
        let code = Hamming::new(32);
        let data = raw & 0xFFFF_FFFF;
        let cw = code.encode(data);
        let b1 = b1 % code.codeword_bits();
        let b2 = b2 % code.codeword_bits();
        prop_assume!(b1 != b2);
        prop_assert_eq!(code.decode(cw ^ (1u128 << b1) ^ (1u128 << b2)), DecodeOutcome::DoubleError);
    }

    #[test]
    fn ecc_register_survives_interleaved_single_flips(ops in proptest::collection::vec((any::<u64>(), any::<u32>()), 1..40)) {
        let mut reg = EccRegister::new(64);
        reg.store(0);
        for (value, bit) in ops {
            reg.store(value);
            reg.inject_flip(bit % 72);
            // One flip between stores: always corrected.
            prop_assert_eq!(reg.load(), LoadOutcome::Value(value));
        }
    }

    // ---------------- USIG ----------------

    #[test]
    fn usig_counters_are_unique_and_sequential(seed in any::<u64>(), msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..50)) {
        let ring = KeyRing::provision(seed, 1);
        let mut usig = Usig::new(UsigId(0), ring, Box::new(manycore_resilience::hw::PlainRegister::new(64)));
        let mut window = UiWindow::new();
        let mut last = 0u64;
        for msg in &msgs {
            let ui = usig.create_ui(msg).unwrap();
            prop_assert_eq!(ui.counter, last + 1);
            prop_assert!(usig.verify_ui(UsigId(0), &ui, msg));
            prop_assert!(window.accept(&ui));
            prop_assert!(!window.accept(&ui), "replay must be rejected");
            last = ui.counter;
        }
    }

    #[test]
    fn trinc_attestation_intervals_never_overlap(advances in proptest::collection::vec(1u64..100, 1..30)) {
        let key = MacKey::derive(3, "trinc-prop");
        let mut t = TrInc::new(0, key.clone());
        let c = t.create_counter();
        let mut cursor = 0u64;
        let mut last_end = 0u64;
        for (i, step) in advances.iter().enumerate() {
            cursor += step;
            let msg = format!("m{i}");
            let att = t.attest(c, cursor, msg.as_bytes()).unwrap();
            prop_assert!(att.old >= last_end, "intervals must not overlap");
            prop_assert_eq!(att.new, cursor);
            let ok = TrInc::verify(&key, &att, msg.as_bytes());
            prop_assert!(ok);
            last_end = att.new;
        }
        // Any rollback attempt is refused.
        prop_assert!(t.attest(c, cursor.saturating_sub(1), b"rollback").is_err());
    }

    #[test]
    fn a2m_content_verification_is_exact(values in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..20), tamper_idx in 0usize..20) {
        let key = MacKey::derive(4, "a2m-prop");
        let mut a2m = A2m::new(0, key.clone());
        let log = a2m.create_log();
        for v in &values {
            a2m.append(log, v).unwrap();
        }
        let cert = a2m.end(log).unwrap();
        let refs: Vec<&[u8]> = values.iter().map(|v| v.as_slice()).collect();
        prop_assert!(A2m::verify_content(&key, &cert, &refs));
        // Tampering with any one entry breaks verification.
        let idx = tamper_idx % values.len();
        let mut tampered = values.clone();
        tampered[idx].push(0xFF);
        let trefs: Vec<&[u8]> = tampered.iter().map(|v| v.as_slice()).collect();
        prop_assert!(!A2m::verify_content(&key, &cert, &trefs));
        // Truncation breaks it too.
        prop_assert!(!A2m::verify_content(&key, &cert, &refs[..refs.len() - 1]));
    }

    #[test]
    fn broadcast_is_consistent_under_any_sender_behavior(n in 2u32..8, kind in 0u8..3, k in 0usize..8) {
        let behavior = match kind {
            0 => SenderBehavior::Correct,
            1 => SenderBehavior::PartialSend(k),
            _ => SenderBehavior::Equivocate,
        };
        let report = run_broadcast(n, b"payload", behavior);
        prop_assert!(report.consistent, "no two correct receivers may disagree");
        // Anyone who delivered, delivered the genuine payload.
        for d in report.delivered.iter().flatten() {
            prop_assert_eq!(d.as_slice(), b"payload");
        }
        // Completeness: if any receiver delivered, relays reach everyone.
        if report.delivered.iter().any(|d| d.is_some()) {
            prop_assert!(report.complete);
        }
    }

    #[test]
    fn usig_rejects_cross_message_certificates(seed in any::<u64>(), m1 in proptest::collection::vec(any::<u8>(), 1..64), m2 in proptest::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(m1 != m2);
        let ring = KeyRing::provision(seed, 2);
        let mut u0 = Usig::new(UsigId(0), ring.clone(), Box::new(manycore_resilience::hw::PlainRegister::new(64)));
        let u1 = Usig::new(UsigId(1), ring, Box::new(manycore_resilience::hw::PlainRegister::new(64)));
        let ui = u0.create_ui(&m1).unwrap();
        prop_assert!(u1.verify_ui(UsigId(0), &ui, &m1));
        prop_assert!(!u1.verify_ui(UsigId(0), &ui, &m2));
    }
}

// Protocol safety properties get fewer, heavier cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pbft_safe_under_any_single_fault_config(seed in 1u64..1000, byz_replica in 0u32..4, byz_kind in 0u8..4) {
        let cfg = RunConfig {
            f: 1,
            clients: 1,
            requests_per_client: 5,
            seed,
            max_cycles: 20_000_000,
            ..Default::default()
        };
        let mut cluster = PbftCluster::new(&cfg);
        let behavior = match byz_kind {
            0 => Behavior::Crashed,
            1 => Behavior::Silent,
            2 => Behavior::Equivocate,
            _ => Behavior::CrashAt(seed % 400),
        };
        cluster.set_script(ReplicaId(byz_replica), behavior.into());
        let report = run(&mut cluster, &cfg);
        prop_assert!(report.safety_ok, "seed={} replica={} kind={}", seed, byz_replica, byz_kind);
        prop_assert_eq!(report.committed, 5);
    }

    #[test]
    fn minbft_safe_under_any_single_fault_config(seed in 1u64..1000, byz_replica in 0u32..3, byz_kind in 0u8..4) {
        let cfg = RunConfig {
            f: 1,
            clients: 1,
            requests_per_client: 5,
            seed,
            max_cycles: 20_000_000,
            ..Default::default()
        };
        let mut cluster = MinBftCluster::new(&cfg);
        let behavior = match byz_kind {
            0 => Behavior::Crashed,
            1 => Behavior::Silent,
            2 => Behavior::ForgeUi,
            _ => Behavior::CrashAt(seed % 400),
        };
        cluster.set_script(ReplicaId(byz_replica), behavior.into());
        let report = run(&mut cluster, &cfg);
        prop_assert!(report.safety_ok, "seed={} replica={} kind={}", seed, byz_replica, byz_kind);
        prop_assert_eq!(report.committed, 5);
    }

    #[test]
    fn noc_event_queue_matches_reference_model(
        seed in any::<u64>(), w in 2u16..8, h in 2u16..8, pkts in 1usize..60,
        fault_permille in 0u32..150, adaptive in any::<bool>(),
        hop_cycles in 1u32..4, tight_budget in 1u64..30,
    ) {
        let fault_rate = fault_permille as f64 / 1000.0;
        // The slab + next-event-time queue engine must be observably
        // identical to the retain-loop specification: same packets
        // delivered and dropped, at the same cycles, in the same order,
        // with the same hop counts — under contention, dead links, and
        // staggered injection.
        let mesh = Mesh2d::new(w, h);
        let routing = if adaptive { Routing::FaultAdaptive { max_misroutes: 8 } } else { Routing::Xy };
        let config = NetworkConfig { routing, hop_cycles, ..Default::default() };
        let mut fast = Network::new(mesh, config.clone());
        let mut reference = manycore_resilience::noc::ReferenceNetwork::new(mesh, config);
        let mut rng = manycore_resilience::sim::SimRng::new(seed);
        for link in mesh.links() {
            if rng.chance(fault_rate) {
                fast.kill_link(link);
                reference.kill_link(link);
            }
        }
        // Staggered injection: half up front, a few ticks, then the rest —
        // exercises slot reuse against fresh injections.
        let pairs: Vec<(NodeId, NodeId)> = (0..pkts)
            .map(|_| {
                let s = NodeId(rng.below(mesh.node_count() as u64) as u16);
                let d = NodeId(rng.below(mesh.node_count() as u64) as u16);
                (s, d)
            })
            .collect();
        let (first, second) = pairs.split_at(pkts / 2);
        for &(s, d) in first {
            fast.inject(s, d, 1);
            reference.inject(s, d, 1);
        }
        for _ in 0..3 {
            fast.tick();
            reference.tick();
        }
        for &(s, d) in second {
            fast.inject(s, d, 1);
            reference.inject(s, d, 1);
        }
        // A tight budget first: the budget-crossing tick must behave
        // identically in both models (it executes iff it started within
        // budget), then drain to completion.
        let fast_elapsed = fast.drain(tight_budget);
        let ref_elapsed = reference.drain(tight_budget);
        prop_assert_eq!(fast_elapsed, ref_elapsed, "budget semantics diverged");
        prop_assert_eq!(fast.in_flight(), reference.in_flight(), "post-budget population");
        fast.drain(100_000);
        reference.drain(100_000);
        let fast_deliveries: Vec<(u64, u64, u32)> =
            fast.stats().delivered.iter().map(|d| (d.at, d.packet.0, d.hops)).collect();
        let ref_deliveries: Vec<(u64, u64, u32)> =
            reference.delivered.iter().map(|d| (d.at, d.packet.0, d.hops)).collect();
        prop_assert_eq!(fast_deliveries, ref_deliveries, "delivery sequences diverged");
        let fast_drops: Vec<(u64, u64, bool)> =
            fast.stats().dropped.iter().map(|d| (d.at, d.packet.0, d.dead_end)).collect();
        let ref_drops: Vec<(u64, u64, bool)> =
            reference.dropped.iter().map(|d| (d.at, d.packet.0, d.dead_end)).collect();
        prop_assert_eq!(fast_drops, ref_drops, "drop sequences diverged");
        prop_assert_eq!(fast.in_flight(), reference.in_flight());
    }

    #[test]
    fn noc_delivers_everything_on_a_healthy_mesh(seed in any::<u64>(), w in 2u16..8, h in 2u16..8, pkts in 1usize..40) {
        let mesh = Mesh2d::new(w, h);
        let mut net = Network::new(mesh, NetworkConfig { routing: Routing::Xy, ..Default::default() });
        let mut rng = manycore_resilience::sim::SimRng::new(seed);
        for _ in 0..pkts {
            let s = NodeId(rng.below(mesh.node_count() as u64) as u16);
            let d = NodeId(rng.below(mesh.node_count() as u64) as u16);
            net.inject(s, d, 1);
        }
        net.drain(1_000_000);
        prop_assert_eq!(net.stats().delivered.len(), pkts);
        prop_assert!(net.stats().dropped.is_empty());
        // Every delivery takes at least the Manhattan distance.
        for d in &net.stats().delivered {
            prop_assert!(d.hops as u64 <= 2 * (w + h) as u64);
        }
    }
}

// ---------------- batching / pipelining equivalence ----------------
//
// Batching and client pipelining must be pure performance transforms:
// for any request schedule, a batched+windowed run and an unbatched
// closed-loop run commit the same operations, keep the safety checker
// green, and leave every replica's state machine at the identical digest
// — across all three protocol modes. (Request payloads are a pure
// function of (seed, client, seq) and each op writes its own key, so
// differently interleaved runs execute the same op set to the same final
// state.) The batched run is executed twice with the epoch-tokenized
// flush timers: the repeat must be bit-identical, pinning down that
// partial-batch flush timing is deterministic under pipelined clients.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pbft_batching_preserves_state_and_safety(
        seed in 1u64..5_000, clients in 1u32..=5, reqs in 1u64..=5, batch in 2usize..=8,
        window in 1usize..=4,
    ) {
        let base = RunConfig {
            f: 1, clients, requests_per_client: reqs, seed,
            max_cycles: 20_000_000, ..Default::default()
        };
        let batched_cfg = RunConfig {
            batch_size: batch, batch_flush: 80, client_window: window, ..base.clone()
        };
        let mut plain = PbftCluster::new(&base);
        let r1 = run(&mut plain, &base);
        let mut batched = PbftCluster::new(&batched_cfg);
        let r2 = run(&mut batched, &batched_cfg);
        // Flush-timing determinism: an identical batched+windowed run
        // reproduces the exact trace (duration, messages, commits).
        let mut batched_again = PbftCluster::new(&batched_cfg);
        let r2b = run(&mut batched_again, &batched_cfg);
        prop_assert_eq!(r2.committed, r2b.committed);
        prop_assert_eq!(r2.messages_total, r2b.messages_total);
        prop_assert_eq!(r2.duration_cycles, r2b.duration_cycles);
        prop_assert_eq!(r1.committed, clients as u64 * reqs);
        prop_assert_eq!(r2.committed, clients as u64 * reqs);
        prop_assert!(r1.safety_ok && r2.safety_ok, "safety checker must accept both runs");
        for (a, b) in plain.nodes().iter().zip(batched.nodes()) {
            prop_assert_eq!(a.state_digest(), b.state_digest(), "replica {} diverged", a.id());
        }
    }

    #[test]
    fn minbft_batching_preserves_state_and_safety(
        seed in 1u64..5_000, clients in 1u32..=5, reqs in 1u64..=5, batch in 2usize..=8,
        window in 1usize..=4,
    ) {
        let base = RunConfig {
            f: 1, clients, requests_per_client: reqs, seed,
            max_cycles: 20_000_000, ..Default::default()
        };
        let batched_cfg = RunConfig {
            batch_size: batch, batch_flush: 80, client_window: window, ..base.clone()
        };
        let mut plain = MinBftCluster::new(&base);
        let r1 = run(&mut plain, &base);
        let mut batched = MinBftCluster::new(&batched_cfg);
        let r2 = run(&mut batched, &batched_cfg);
        // Flush-timing determinism: an identical batched+windowed run
        // reproduces the exact trace (duration, messages, commits).
        let mut batched_again = MinBftCluster::new(&batched_cfg);
        let r2b = run(&mut batched_again, &batched_cfg);
        prop_assert_eq!(r2.committed, r2b.committed);
        prop_assert_eq!(r2.messages_total, r2b.messages_total);
        prop_assert_eq!(r2.duration_cycles, r2b.duration_cycles);
        prop_assert_eq!(r1.committed, clients as u64 * reqs);
        prop_assert_eq!(r2.committed, clients as u64 * reqs);
        prop_assert!(r1.safety_ok && r2.safety_ok, "safety checker must accept both runs");
        for (a, b) in plain.nodes().iter().zip(batched.nodes()) {
            prop_assert_eq!(a.state_digest(), b.state_digest(), "replica {} diverged", a.id());
        }
        // Authentication is amortized, never inflated, by batching.
        let macs = |c: &MinBftCluster| -> u64 {
            c.nodes().iter().map(|n| { let (i, v) = n.mac_ops(); i + v }).sum()
        };
        prop_assert!(macs(&batched) <= macs(&plain), "batching must not add MAC work");
    }

    #[test]
    fn passive_batching_preserves_state_and_safety(
        seed in 1u64..5_000, clients in 1u32..=5, reqs in 1u64..=5, batch in 2usize..=8,
        window in 1usize..=4,
    ) {
        let base = RunConfig {
            f: 1, clients, requests_per_client: reqs, seed,
            max_cycles: 20_000_000, ..Default::default()
        };
        let batched_cfg = RunConfig {
            batch_size: batch, batch_flush: 80, client_window: window, ..base.clone()
        };
        let mut plain = PassiveCluster::new(&base);
        let r1 = run(&mut plain, &base);
        let mut batched = PassiveCluster::new(&batched_cfg);
        let r2 = run(&mut batched, &batched_cfg);
        // Flush-timing determinism: an identical batched+windowed run
        // reproduces the exact trace (duration, messages, commits).
        let mut batched_again = PassiveCluster::new(&batched_cfg);
        let r2b = run(&mut batched_again, &batched_cfg);
        prop_assert_eq!(r2.committed, r2b.committed);
        prop_assert_eq!(r2.messages_total, r2b.messages_total);
        prop_assert_eq!(r2.duration_cycles, r2b.duration_cycles);
        prop_assert_eq!(r1.committed, clients as u64 * reqs);
        prop_assert_eq!(r2.committed, clients as u64 * reqs);
        prop_assert!(r1.safety_ok && r2.safety_ok, "safety checker must accept both runs");
        for (a, b) in plain.nodes().iter().zip(batched.nodes()) {
            prop_assert_eq!(a.state_digest(), b.state_digest(), "replica {} diverged", a.id());
        }
    }
}

// ---------------- dense-state churn equivalence (PR 5) ----------------
//
// The open-addressed `OpIndex` must behave exactly like a `BTreeMap`
// reference model under *adversarial churn*: random interleavings of
// insert / overwrite / remove / lookup, including the regimes the
// PR 4 unit tests only probe pointwise — probe chains running through
// tombstones, tombstone graves being reused by later inserts, and a
// growth rehash landing while graves are still outstanding
// (tombstone-reuse-then-rehash). After every batch the full canonical
// view and every individual lookup must agree with the model.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn op_index_churn_matches_btreemap_reference(
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u64>()), 1..400),
        rehash_burst in 0usize..200,
    ) {
        use manycore_resilience::bft::api::{ClientId, OpId};
        use manycore_resilience::bft::dense::OpIndex;
        use std::collections::BTreeMap;

        let key = |c: u32, s: u64| OpId { client: ClientId(c % 7), seq: s % 97 };
        let mut dense: OpIndex<u64> = OpIndex::new();
        let mut model: BTreeMap<(u32, u64), u64> = BTreeMap::new();

        let check_key = |dense: &OpIndex<u64>, model: &BTreeMap<(u32, u64), u64>, k: OpId| {
            let m = model.get(&(k.client.0, k.seq)).copied();
            prop_assert_eq!(dense.get(&k).copied(), m, "lookup diverged at {:?}", k);
            prop_assert_eq!(dense.contains_key(&k), m.is_some());
            Ok(())
        };

        for (i, &(kind, c, s)) in ops.iter().enumerate() {
            let k = key(c, s);
            match kind % 4 {
                // Insert / overwrite (reuses the first grave on the chain).
                0 | 1 => {
                    let old_dense = dense.insert(k, i as u64);
                    let old_model = model.insert((k.client.0, k.seq), i as u64);
                    prop_assert_eq!(old_dense, old_model, "displaced value diverged");
                }
                // Remove (leaves a tombstone in the dense table).
                2 => {
                    let got = dense.remove(&k);
                    let want = model.remove(&(k.client.0, k.seq));
                    prop_assert_eq!(got, want, "removed value diverged");
                }
                // Lookup-only step.
                _ => check_key(&dense, &model, k)?,
            }
            prop_assert_eq!(dense.len(), model.len(), "len diverged at step {}", i);
        }

        // Tombstone-reuse-then-rehash interleaving: carve graves into the
        // current table, refill some (grave reuse), then slam in a burst
        // large enough to force a growth rehash while graves remain.
        let keys: Vec<OpId> = model.keys().map(|&(c, s)| OpId { client: ClientId(c), seq: s }).collect();
        for (j, k) in keys.iter().enumerate() {
            if j % 3 == 0 {
                prop_assert_eq!(dense.remove(k).is_some(), model.remove(&(k.client.0, k.seq)).is_some());
            }
        }
        for (j, k) in keys.iter().enumerate() {
            if j % 6 == 0 {
                dense.insert(*k, 7_000 + j as u64);
                model.insert((k.client.0, k.seq), 7_000 + j as u64);
            }
        }
        for j in 0..rehash_burst {
            let k = OpId { client: ClientId(1_000 + (j % 5) as u32), seq: j as u64 };
            dense.insert(k, j as u64);
            model.insert((k.client.0, k.seq), j as u64);
        }

        // Full-state equivalence: canonical iteration equals the model's
        // sorted order, and every key (live or dead) resolves identically.
        let canon: Vec<(u32, u64, u64)> =
            dense.iter_canonical().iter().map(|(k, v)| (k.client.0, k.seq, **v)).collect();
        let want: Vec<(u32, u64, u64)> = model.iter().map(|(&(c, s), &v)| (c, s, v)).collect();
        prop_assert_eq!(canon, want, "canonical views diverged after churn");
        for k in keys {
            check_key(&dense, &model, k)?;
        }
        prop_assert_eq!(dense.len(), model.len());
    }
}

// ---------------- certified checkpoints (PR 7) ----------------
//
// Checkpoint digests are the protocols' *common knowledge*: at every
// certificate boundary, all correct replicas that crossed it must have
// vouched for byte-identical state digests — otherwise certificates
// could never form (the quorum groups by digest), and a state transfer
// could install a snapshot some replicas would dispute. For any
// fault-free schedule, any protocol, and any batch regime, every pair of
// replicas must agree on the digest at every watermark both reached.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn checkpoint_digests_agree_at_every_boundary(
        seed in 1u64..5_000, clients in 1u32..=4, reqs in 2u64..=6, big_batch in any::<bool>(),
        proto in 0u8..3,
    ) {
        let cfg = RunConfig {
            f: 1, clients, requests_per_client: reqs, seed,
            batch_size: if big_batch { 8 } else { 1 }, batch_flush: 80,
            checkpoint_interval: 2, max_cycles: 20_000_000,
            ..Default::default()
        };
        let histories: Vec<Vec<(u64, [u8; 32])>> = match proto {
            0 => {
                let mut c = PbftCluster::new(&cfg);
                let r = run(&mut c, &cfg);
                prop_assert!(r.safety_ok);
                prop_assert_eq!(r.committed, clients as u64 * reqs);
                c.nodes().iter().map(|n| n.checkpoint_history().to_vec()).collect()
            }
            1 => {
                let mut c = MinBftCluster::new(&cfg);
                let r = run(&mut c, &cfg);
                prop_assert!(r.safety_ok);
                prop_assert_eq!(r.committed, clients as u64 * reqs);
                c.nodes().iter().map(|n| n.checkpoint_history().to_vec()).collect()
            }
            _ => {
                let mut c = PassiveCluster::new(&cfg);
                let r = run(&mut c, &cfg);
                prop_assert!(r.safety_ok);
                prop_assert_eq!(r.committed, clients as u64 * reqs);
                c.nodes().iter().map(|n| n.checkpoint_history().to_vec()).collect()
            }
        };
        // Enough ops ran for at least one watermark everywhere.
        prop_assert!(
            histories.iter().any(|h| !h.is_empty()),
            "no certificate ever stabilised (proto={})", proto
        );
        // Every watermark two replicas both certified carries the same
        // digest — across ALL pairs, at EVERY boundary.
        for (i, a) in histories.iter().enumerate() {
            for (j, b) in histories.iter().enumerate().skip(i + 1) {
                for (seq, da) in a {
                    for (seq_b, db) in b {
                        if seq == seq_b {
                            prop_assert_eq!(
                                da, db,
                                "replicas {} and {} disagree at watermark {} (proto={})",
                                i, j, seq, proto
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------- dense-state slot GC (PR 4) ----------------
//
// The dense rework anchors each replica's agreement slots in a window at
// the execution watermark: executed sequence numbers are *retired* — a
// late or replayed message for one must be rejected outright, never
// resurrected into a fresh-looking slot (which would re-enter agreement,
// pollute the op→slot index, and emit spurious votes). These properties
// complement the digest-equivalence suites above (which pin that the
// dense engines commit the same operations to the same state as before):
// here a completed cluster is poked directly with below-watermark
// messages and must stay silent and unchanged — across all three
// protocols.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pbft_retired_slots_reject_stale_proposals(
        seed in 1u64..5_000, clients in 1u32..=4, reqs in 1u64..=5, batch in 1usize..=4,
        stale_seq in 1u64..=3,
    ) {
        use manycore_resilience::bft::api::{Batch, ClientId, Endpoint, Input, OpId, Outbox, Request};
        use manycore_resilience::bft::pbft::PbftMsg;
        use std::sync::Arc;

        let cfg = RunConfig {
            f: 1, clients, requests_per_client: reqs, seed, batch_size: batch,
            batch_flush: 80, max_cycles: 20_000_000, ..Default::default()
        };
        let mut cluster = PbftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        prop_assert_eq!(report.committed, clients as u64 * reqs);
        let stale_seq = stale_seq.min(reqs); // an agreement slot that executed
        let digests: Vec<[u8; 32]> = cluster.nodes().iter().map(|n| n.state_digest()).collect();
        let logs: Vec<usize> = cluster.nodes().iter().map(|n| n.committed_log().len()).collect();

        // Replay a proposal for the executed slot at a backup (replica 1),
        // from the legitimate primary endpoint, in the current view (0:
        // the run was fault-free). A resurrected slot would accept the
        // digest and broadcast a Prepare; a retired slot stays silent.
        let evil_batch = Arc::new(Batch::new(vec![Arc::new(Request {
            op: OpId { client: ClientId(0), seq: 1 },
            payload: b"SET k0.1 hijacked".to_vec(),
        })]));
        let backup = &mut cluster.nodes_mut()[1];
        let mut out = Outbox::new();
        backup.on_input(
            Input::Message {
                from: Endpoint::Replica(ReplicaId(0)),
                msg: PbftMsg::PrePrepare { view: 0, seq: stale_seq, batch: evil_batch.clone() },
            },
            1, &mut out,
        );
        prop_assert!(out.msgs.is_empty(), "stale pre-prepare must be rejected silently");
        // Stale votes for the retired slot are equally inert.
        let mut out = Outbox::new();
        backup.on_input(
            Input::Message {
                from: Endpoint::Replica(ReplicaId(2)),
                msg: PbftMsg::Prepare {
                    view: 0, seq: stale_seq, digest: evil_batch.digest(), from: ReplicaId(2),
                },
            },
            2, &mut out,
        );
        backup.on_input(
            Input::Message {
                from: Endpoint::Replica(ReplicaId(2)),
                msg: PbftMsg::Commit {
                    view: 0, seq: stale_seq, digest: evil_batch.digest(), from: ReplicaId(2),
                },
            },
            3, &mut out,
        );
        prop_assert!(out.msgs.is_empty(), "stale votes must be rejected silently");
        for (node, (d, l)) in cluster.nodes().iter().zip(digests.iter().zip(&logs)) {
            prop_assert_eq!(&node.state_digest(), d, "state mutated by stale messages");
            prop_assert_eq!(&node.committed_log().len(), l, "log grew from stale messages");
        }
    }

    #[test]
    fn minbft_executed_ops_answer_from_dedup_not_reagreement(
        seed in 1u64..5_000, clients in 1u32..=4, reqs in 1u64..=5, batch in 1usize..=4,
    ) {
        use manycore_resilience::bft::api::{ClientId, Endpoint, Input, OpId, Outbox, Request};
        use manycore_resilience::bft::minbft::MinBftMsg;
        use std::sync::Arc;

        let cfg = RunConfig {
            f: 1, clients, requests_per_client: reqs, seed, batch_size: batch,
            batch_flush: 80, max_cycles: 20_000_000, ..Default::default()
        };
        let mut cluster = MinBftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        prop_assert_eq!(report.committed, clients as u64 * reqs);
        let log_before = cluster.nodes()[0].committed_log().len();
        let digest_before = cluster.nodes()[0].state_digest();

        // A client retry for an executed op must be answered from the
        // exactly-once dedup index (one Reply, shared result) without
        // re-entering agreement — the retired slot cannot be reused.
        let op = OpId { client: ClientId(0), seq: 1 };
        let primary = &mut cluster.nodes_mut()[0];
        let mut out = Outbox::new();
        primary.on_input(
            Input::Message {
                from: Endpoint::Client(ClientId(0)),
                msg: MinBftMsg::Request(Arc::new(Request { op, payload: b"retry".to_vec() })),
            },
            1, &mut out,
        );
        prop_assert_eq!(out.msgs.len(), 1, "exactly one cached reply, no re-proposal");
        match &out.msgs[0] {
            (Endpoint::Client(c), MinBftMsg::Reply(r)) => {
                prop_assert_eq!(*c, ClientId(0));
                prop_assert_eq!(r.op, op);
            }
            other => prop_assert!(false, "expected a cached Reply, got {other:?}"),
        }
        prop_assert_eq!(cluster.nodes()[0].committed_log().len(), log_before);
        prop_assert_eq!(cluster.nodes()[0].state_digest(), digest_before);
    }

    #[test]
    fn passive_backup_rejects_replayed_state_updates(
        seed in 1u64..5_000, clients in 1u32..=4, reqs in 1u64..=5, batch in 1usize..=4,
    ) {
        use manycore_resilience::bft::api::{ClientId, Endpoint, Input, OpId, Outbox, Request};
        use manycore_resilience::bft::passive::PassiveMsg;
        use std::sync::Arc;

        let cfg = RunConfig {
            f: 1, clients, requests_per_client: reqs, seed, batch_size: batch,
            batch_flush: 80, max_cycles: 20_000_000, ..Default::default()
        };
        let mut cluster = PassiveCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        prop_assert_eq!(report.committed, clients as u64 * reqs);
        let log_before = cluster.nodes()[1].committed_log().len();
        let digest_before = cluster.nodes()[1].state_digest();

        // Replay a state update for log sequence 1 (long applied) with
        // *different* content: the held-back window watermark must reject
        // it — re-applying would corrupt the mirrored log.
        let backup = &mut cluster.nodes_mut()[1];
        let mut out = Outbox::new();
        backup.on_input(
            Input::Message {
                from: Endpoint::Replica(ReplicaId(0)),
                msg: PassiveMsg::StateUpdate {
                    epoch: 0,
                    first_seq: 1,
                    ops: vec![(
                        Arc::new(Request {
                            op: OpId { client: ClientId(9), seq: 999 },
                            payload: b"SET k9.999 forged".to_vec(),
                        }),
                        Arc::new(b"forged".to_vec()),
                    )],
                },
            },
            1, &mut out,
        );
        prop_assert_eq!(cluster.nodes()[1].committed_log().len(), log_before);
        prop_assert_eq!(cluster.nodes()[1].state_digest(), digest_before);
    }
}
