//! Integration tests for the adversarial scenario engine: composable
//! time-phased fault scripts interpreted uniformly by the runner, judged
//! by the safety/liveness oracle — the machinery under the `f5_scenarios`
//! campaign, exercised here through the public facade.

use manycore_resilience::bft::adversary::{
    Flood, LinkFault, ReplaySpec, ReplicaScript, Scenario, ScenarioOracle, Window,
};
use manycore_resilience::bft::api::{Cluster, ReplicaNode};
use manycore_resilience::bft::minbft::MinBftCluster;
use manycore_resilience::bft::passive::PassiveCluster;
use manycore_resilience::bft::pbft::PbftCluster;
use manycore_resilience::bft::runner::{run, run_scenario, RunConfig};

fn config(f: u32, clients: u32, reqs: u64, seed: u64) -> RunConfig {
    RunConfig {
        f,
        clients,
        requests_per_client: reqs,
        seed,
        max_cycles: 30_000_000,
        ..Default::default()
    }
}

#[test]
fn empty_scenario_is_bit_identical_to_plain_run() {
    // The scenario hooks must be free when disabled: same committed count,
    // same message count, same virtual duration — the whole trace.
    let cfg = RunConfig { batch_size: 4, batch_flush: 80, ..config(1, 4, 8, 901) };
    let plain = run(&mut PbftCluster::new(&cfg), &cfg);
    let scripted = run_scenario(&mut PbftCluster::new(&cfg), &cfg, &Scenario::none());
    assert_eq!(plain.committed, scripted.report.committed);
    assert_eq!(plain.messages_total, scripted.report.messages_total);
    assert_eq!(plain.messages_protocol, scripted.report.messages_protocol);
    assert_eq!(plain.duration_cycles, scripted.report.duration_cycles);
    assert_eq!(scripted.flood_requests + scripted.script_drops + scripted.replays, 0);
}

#[test]
fn crash_recover_window_fails_over_and_passes_oracle() {
    // The primary crashes for a window and comes back: the view change
    // must depose it, the workload must finish, and the recovered replica
    // must do no harm. Works identically for PBFT and MinBFT.
    let cfg = config(1, 2, 6, 903);
    let scenario =
        Scenario::none().script(0, ReplicaScript::correct().crash(Window::new(100, 6_000)));

    let mut pbft = PbftCluster::new(&cfg);
    let out = run_scenario(&mut pbft, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&pbft, &out.report, 12);
    assert!(verdict.pass(), "pbft: {verdict:?}");
    assert!(pbft.nodes()[1].view() >= 1, "crash window must trigger a view change");

    let mut minbft = MinBftCluster::new(&cfg);
    let out = run_scenario(&mut minbft, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&minbft, &out.report, 12);
    assert!(verdict.pass(), "minbft: {verdict:?}");
}

#[test]
fn passive_failover_from_scripted_crash_window() {
    let cfg = config(1, 1, 8, 905);
    let scenario = Scenario::none().script(0, ReplicaScript::correct().crash(Window::from(120)));
    let mut cluster = PassiveCluster::new(&cfg);
    let out = run_scenario(&mut cluster, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&cluster, &out.report, 8);
    assert!(verdict.pass(), "{verdict:?}");
    assert!(cluster.nodes()[1].is_primary(), "backup must have promoted itself");
}

#[test]
fn recovered_backup_can_still_fail_over() {
    // Composition regression: the backup's detector timer fires *inside*
    // its own crash window (chain swallowed), and the primary dies later.
    // Recovery must revive the self-re-arming detector chain, or the
    // composed scenario — each fault individually tolerated — loses
    // liveness forever.
    let cfg = config(1, 1, 100, 923);
    let scenario = Scenario::none()
        .script(1, ReplicaScript::correct().crash(Window::new(300, 900)))
        .script(0, ReplicaScript::correct().crash(Window::from(1_200)));
    let mut cluster = PassiveCluster::new(&cfg);
    let out = run_scenario(&mut cluster, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&cluster, &out.report, 100);
    assert!(verdict.pass(), "{verdict:?}");
    assert_eq!(cluster.nodes()[1].failovers(), 1, "revived detector must promote the backup");
    assert!(cluster.nodes()[1].is_primary());
}

#[test]
fn healed_partition_restores_liveness_and_keeps_prefix_safety() {
    // Isolate one PBFT backup for a window: the quorum keeps committing,
    // the isolated replica's log stays a (possibly shorter) prefix, and
    // the oracle passes with liveness expected.
    let cfg = config(1, 2, 8, 907);
    let scenario = Scenario::none().partition(vec![3], Window::new(300, 4_000));
    let mut cluster = PbftCluster::new(&cfg);
    let out = run_scenario(&mut cluster, &cfg, &scenario);
    assert!(out.script_drops > 0, "the partition must actually sever traffic");
    let verdict = ScenarioOracle::expecting_liveness().judge(&cluster, &out.report, 16);
    assert!(verdict.pass(), "{verdict:?}");
    let full = cluster.nodes()[0].committed_log().len();
    assert_eq!(full, 16);
    assert!(cluster.nodes()[3].committed_log().len() <= full);
}

#[test]
fn dos_flood_consumes_capacity_but_workload_commits() {
    let cfg = RunConfig { batch_size: 4, batch_flush: 80, ..config(1, 2, 6, 909) };
    let scenario = Scenario::none().flood(Flood {
        window: Window::new(100, 2_000),
        period: 50,
        payload_size: 16,
    });
    for protocol in 0..3u8 {
        let (verdict, flood_requests, digests_agree) = match protocol {
            0 => {
                let mut c = PbftCluster::new(&cfg);
                let out = run_scenario(&mut c, &cfg, &scenario);
                let v = ScenarioOracle::expecting_liveness().judge(&c, &out.report, 12);
                let d = c.nodes()[0].state_digest() == c.nodes()[1].state_digest();
                (v, out.flood_requests, d)
            }
            1 => {
                let mut c = MinBftCluster::new(&cfg);
                let out = run_scenario(&mut c, &cfg, &scenario);
                let v = ScenarioOracle::expecting_liveness().judge(&c, &out.report, 12);
                let d = c.nodes()[0].state_digest() == c.nodes()[1].state_digest();
                (v, out.flood_requests, d)
            }
            _ => {
                let mut c = PassiveCluster::new(&cfg);
                let out = run_scenario(&mut c, &cfg, &scenario);
                let v = ScenarioOracle::expecting_liveness().judge(&c, &out.report, 12);
                let d = c.nodes()[0].state_digest() == c.nodes()[1].state_digest();
                (v, out.flood_requests, d)
            }
        };
        assert!(verdict.pass(), "protocol {protocol}: {verdict:?}");
        assert!(flood_requests >= 5, "protocol {protocol}: flood too small ({flood_requests})");
        assert!(digests_agree, "protocol {protocol}: flood ops must replicate identically");
    }
}

#[test]
fn duplicated_sends_stay_exactly_once() {
    let cfg = config(1, 2, 6, 911);
    let all_duplicating = |n: u32| {
        let mut s = Scenario::none();
        for r in 0..n {
            s = s.script(r, ReplicaScript::correct().duplicate_sends(Window::ALWAYS));
        }
        s
    };
    let mut cluster = MinBftCluster::new(&cfg);
    let out = run_scenario(&mut cluster, &cfg, &all_duplicating(3));
    assert!(out.duplicates > 0);
    let verdict = ScenarioOracle::expecting_liveness().judge(&cluster, &out.report, 12);
    assert!(verdict.pass(), "{verdict:?}");
    for node in cluster.nodes() {
        assert_eq!(node.committed_log().len(), 12, "exactly-once under duplication");
    }
}

#[test]
fn reordered_bursts_are_absorbed_by_holdback() {
    // Reverse every outbox burst of every replica: MinBFT's per-sender
    // USIG contiguity window must reorder them back; PBFT's vote tallies
    // are order-insensitive.
    let cfg = config(1, 2, 6, 913);
    for pbft in [true, false] {
        let mut s = Scenario::none();
        let n = if pbft { 4 } else { 3 };
        for r in 0..n {
            s = s.script(r, ReplicaScript::correct().reorder_sends(Window::ALWAYS));
        }
        let verdict = if pbft {
            let mut c = PbftCluster::new(&cfg);
            let out = run_scenario(&mut c, &cfg, &s);
            ScenarioOracle::expecting_liveness().judge(&c, &out.report, 12)
        } else {
            let mut c = MinBftCluster::new(&cfg);
            let out = run_scenario(&mut c, &cfg, &s);
            ScenarioOracle::expecting_liveness().judge(&c, &out.report, 12)
        };
        assert!(verdict.pass(), "pbft={pbft}: {verdict:?}");
    }
}

#[test]
fn stale_replay_is_rejected_by_every_protocol() {
    let cfg = RunConfig { batch_size: 2, batch_flush: 60, ..config(1, 2, 8, 915) };
    // The window must open while the workload is still running (a batch=2
    // run of 16 ops lasts ~600 cycles) or nothing gets replayed.
    let replay = ReplicaScript::correct().replay_sends(ReplaySpec {
        window: Window::new(250, 3_000),
        period: 40,
        burst: 3,
    });
    // PBFT: replayed pre-prepares/commits for retired slots are inert.
    let mut pbft = PbftCluster::new(&cfg);
    let out = run_scenario(&mut pbft, &cfg, &Scenario::none().script(0, replay.clone()));
    assert!(out.replays > 0, "the attack must actually inject stale messages");
    let verdict = ScenarioOracle::expecting_liveness().judge(&pbft, &out.report, 16);
    assert!(verdict.pass(), "pbft: {verdict:?}");
    for node in pbft.nodes() {
        assert_eq!(node.committed_log().len(), 16, "replay must not re-execute");
    }
    // MinBFT: replayed (consumed) USIG counters are dropped at ingest.
    let mut minbft = MinBftCluster::new(&cfg);
    let out = run_scenario(&mut minbft, &cfg, &Scenario::none().script(0, replay.clone()));
    assert!(out.replays > 0);
    let verdict = ScenarioOracle::expecting_liveness().judge(&minbft, &out.report, 16);
    assert!(verdict.pass(), "minbft: {verdict:?}");
    for node in minbft.nodes() {
        assert_eq!(node.committed_log().len(), 16);
    }
    // Passive: replayed state updates fall below the backup's watermark.
    let mut passive = PassiveCluster::new(&cfg);
    let out = run_scenario(&mut passive, &cfg, &Scenario::none().script(0, replay));
    let verdict = ScenarioOracle::expecting_liveness().judge(&passive, &out.report, 16);
    assert!(verdict.pass(), "passive: {verdict:?}");
    assert_eq!(passive.nodes()[1].committed_log().len(), 16);
}

#[test]
fn degraded_links_slow_but_do_not_stall() {
    let cfg = config(1, 2, 6, 917);
    let scenario = Scenario::none().link_fault(LinkFault {
        source: Some(0),
        dest: None,
        window: Window::new(100, 2_500),
        drop_rate: 0.2,
        extra_delay: 120,
    });
    let mut cluster = PbftCluster::new(&cfg);
    let out = run_scenario(&mut cluster, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&cluster, &out.report, 12);
    assert!(verdict.pass(), "{verdict:?}");
    assert!(out.script_drops > 0, "the fault must actually drop messages");
    let healthy = run(&mut PbftCluster::new(&cfg), &cfg);
    assert!(
        out.report.duration_cycles > healthy.duration_cycles,
        "degradation must cost virtual time: {} vs {}",
        out.report.duration_cycles,
        healthy.duration_cycles
    );
}

#[test]
fn byzantine_window_is_judged_safe_and_live() {
    // An equivocation window on the initial primary: safety must hold,
    // the view change restores liveness, and the oracle's digest check
    // compares only the correct replicas.
    let cfg = config(1, 2, 6, 919);
    let scenario = Scenario::none().script(
        0,
        ReplicaScript::correct().equivocate(Window::new(0, 2_000)).forge_ui(Window::new(0, 2_000)),
    );
    let mut pbft = PbftCluster::new(&cfg);
    let out = run_scenario(&mut pbft, &cfg, &scenario.clone());
    let verdict = ScenarioOracle::expecting_liveness().judge(&pbft, &out.report, 12);
    assert!(verdict.pass(), "pbft: {verdict:?}");
    assert_eq!(pbft.correct_replicas().len(), 3, "the attacker is excluded from checks");

    let mut minbft = MinBftCluster::new(&cfg);
    let out = run_scenario(&mut minbft, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&minbft, &out.report, 12);
    assert!(verdict.pass(), "minbft: {verdict:?}");
    assert_eq!(minbft.correct_replicas().len(), 2);
}

#[test]
fn scenario_runs_are_deterministic() {
    let cfg = RunConfig { batch_size: 4, batch_flush: 80, ..config(1, 4, 6, 921) };
    let scenario = Scenario::none()
        .script(0, ReplicaScript::correct().crash(Window::new(200, 3_000)))
        .partition(vec![2], Window::new(500, 2_500))
        .flood(Flood { window: Window::new(100, 1_500), period: 70, payload_size: 16 })
        .link_fault(LinkFault {
            source: None,
            dest: Some(1),
            window: Window::new(50, 4_000),
            drop_rate: 0.1,
            extra_delay: 15,
        });
    let run_once = || {
        let mut c = PbftCluster::new(&cfg);
        let out = run_scenario(&mut c, &cfg, &scenario);
        (
            out.report.committed,
            out.report.messages_total,
            out.report.duration_cycles,
            out.flood_requests,
            out.script_drops,
        )
    };
    assert_eq!(run_once(), run_once(), "identical scenario, identical trace");
}

#[test]
fn corrupted_transfer_snapshots_are_rejected_never_installed() {
    // A rejuvenated replica asks for state transfer and every serving
    // replica corrupts the snapshot bytes. The certificate digest check
    // must reject every response — the wiped replica would rather stay
    // behind than install state it cannot prove. The rest of the cluster
    // keeps the workload live.
    let cfg = RunConfig { checkpoint_interval: 3, ..config(1, 4, 12, 931) };
    let mut scenario = Scenario::none().script(3, ReplicaScript::correct().rejuvenate_at(150));
    for r in 0..3 {
        scenario = scenario
            .script(r, ReplicaScript::correct().corrupt_snapshots(Window::new(0, 1_000_000)));
    }
    let mut cluster = PbftCluster::new(&cfg);
    let out = run_scenario(&mut cluster, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&cluster, &out.report, 48);
    assert!(verdict.pass(), "{verdict:?}");
    assert_eq!(out.rejuvenations, 1, "the wipe must fire");
    let rejected: u64 = cluster.nodes().iter().map(|n| n.checkpoint_stats().rejected).sum();
    let transfers: u64 = cluster.nodes().iter().map(|n| n.checkpoint_stats().transfers).sum();
    assert!(rejected >= 1, "corrupt snapshots must be rejected, got {rejected}");
    assert_eq!(transfers, 0, "a corrupted snapshot must never install");
    // The wiped replica stayed behind rather than installing garbage.
    let stable = cluster.nodes()[0].checkpoint_stats().stable_seq;
    assert!(
        cluster.nodes()[3].committed_seq() < stable,
        "the re-joiner cannot have caught up without a genuine transfer"
    );
}

#[test]
fn forged_checkpoint_certificates_never_certify() {
    // A Byzantine replica broadcasts forged checkpoint vouchers: garbage
    // MACs (rejected outright) and properly-MAC'd lies about its state
    // digest (isolated in their own digest group, never reaching quorum).
    // Honest replicas still certify the true digests on schedule.
    let cfg = RunConfig { checkpoint_interval: 3, ..config(1, 4, 12, 933) };
    let scenario = Scenario::none()
        .script(1, ReplicaScript::correct().forge_checkpoints(Window::new(0, 1_000_000)));
    let lie = manycore_resilience::crypto::sha256(b"forged-checkpoint-state");

    let mut pbft = PbftCluster::new(&cfg);
    let out = run_scenario(&mut pbft, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&pbft, &out.report, 48);
    assert!(verdict.pass(), "pbft: {verdict:?}");
    let rejected: u64 = pbft.nodes().iter().map(|n| n.checkpoint_stats().rejected).sum();
    assert!(rejected >= 1, "forged vouchers must bump the rejection counter");
    for node in pbft.nodes() {
        assert!(node.checkpoint_stats().stable_seq > 0, "real certificates must still form");
        for (seq, digest) in node.checkpoint_history() {
            assert_ne!(digest, &lie, "forged digest certified at watermark {seq}");
        }
    }

    let mut minbft = MinBftCluster::new(&cfg);
    let out = run_scenario(&mut minbft, &cfg, &scenario);
    let verdict = ScenarioOracle::expecting_liveness().judge(&minbft, &out.report, 48);
    assert!(verdict.pass(), "minbft: {verdict:?}");
    let rejected: u64 = minbft.nodes().iter().map(|n| n.checkpoint_stats().rejected).sum();
    assert!(rejected >= 1, "forged vouchers must bump the rejection counter");
    for node in minbft.nodes() {
        for (seq, digest) in node.checkpoint_history() {
            assert_ne!(digest, &lie, "forged digest certified at watermark {seq}");
        }
    }
}
