//! Integration: replication protocols running over the SoC's NoC-derived
//! latencies, with tile-level fault injection.

use manycore_resilience::adapt::ProtocolChoice;
use manycore_resilience::soc::{ResilientSoc, SocConfig, TileId};

fn soc(seed: u64) -> ResilientSoc {
    ResilientSoc::new(SocConfig { mesh_width: 4, mesh_height: 4, seed })
}

#[test]
fn all_protocols_commit_fault_free() {
    for protocol in [ProtocolChoice::Passive, ProtocolChoice::MinBft, ProtocolChoice::Pbft] {
        let mut s = soc(1);
        let report = s.run_workload(protocol, 1, 2, 10);
        assert_eq!(report.committed, 20, "{protocol:?}");
        assert!(report.safety_ok, "{protocol:?}");
    }
}

#[test]
fn replica_counts_match_paper_table() {
    let mut s = soc(2);
    assert_eq!(s.run_workload(ProtocolChoice::Passive, 1, 1, 2).n_replicas, 2);
    assert_eq!(s.run_workload(ProtocolChoice::MinBft, 1, 1, 2).n_replicas, 3);
    assert_eq!(s.run_workload(ProtocolChoice::Pbft, 1, 1, 2).n_replicas, 4);
    assert_eq!(s.run_workload(ProtocolChoice::MinBft, 2, 1, 2).n_replicas, 5);
    assert_eq!(s.run_workload(ProtocolChoice::Pbft, 2, 1, 2).n_replicas, 7);
}

#[test]
fn minbft_cheaper_than_pbft_on_chip() {
    let mut s1 = soc(3);
    let mut s2 = soc(3);
    let minbft = s1.run_workload(ProtocolChoice::MinBft, 1, 2, 20);
    let pbft = s2.run_workload(ProtocolChoice::Pbft, 1, 2, 20);
    assert!(minbft.messages_per_commit() < pbft.messages_per_commit());
    assert!(minbft.n_replicas < pbft.n_replicas);
}

#[test]
fn byzantine_tile_masked_by_both_bft_protocols() {
    for protocol in [ProtocolChoice::MinBft, ProtocolChoice::Pbft] {
        let mut s = soc(4);
        s.compromise_tile(TileId(0));
        let report = s.run_workload(protocol, 1, 1, 8);
        assert!(report.safety_ok, "{protocol:?} must mask 1 Byzantine tile at f=1");
        assert_eq!(report.committed, 8, "{protocol:?} must stay live");
    }
}

#[test]
fn crashed_tiles_are_excluded_from_placement() {
    let mut s = soc(5);
    s.crash_tile(TileId(0));
    s.crash_tile(TileId(1));
    s.crash_tile(TileId(2));
    let report = s.run_workload(ProtocolChoice::MinBft, 1, 1, 5);
    assert_eq!(report.committed, 5, "healthy tiles carry the deployment");
    assert!(report.safety_ok);
}

#[test]
fn far_apart_replicas_pay_noc_latency() {
    // Same protocol on a 2x2 mesh (max 2 hops) vs an 8x8 strip placement.
    let mut small = ResilientSoc::new(SocConfig { mesh_width: 2, mesh_height: 2, seed: 6 });
    let mut large = ResilientSoc::new(SocConfig { mesh_width: 8, mesh_height: 8, seed: 6 });
    // Crash tiles to force the large SoC to place replicas far from (0,0).
    for i in 0..48 {
        large.crash_tile(TileId(i));
    }
    let near = small.run_workload(ProtocolChoice::MinBft, 1, 1, 10);
    let far = large.run_workload(ProtocolChoice::MinBft, 1, 1, 10);
    let near_lat = near.commit_latency.median().unwrap();
    let far_lat = far.commit_latency.median().unwrap();
    assert!(far_lat > near_lat, "distance must cost cycles: near {near_lat} vs far {far_lat}");
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed| {
        let mut s = soc(seed);
        let r = s.run_workload(ProtocolChoice::MinBft, 1, 2, 10);
        (r.committed, r.messages_total, r.duration_cycles)
    };
    assert_eq!(run(7), run(7));
    // Note: with the deterministic MeshHops latency model, different seeds
    // may legitimately produce identical timings — only equality is a
    // guaranteed invariant here.
}
