//! Integration: the managed SoC (detector → controller → workload → voted
//! rejuvenation) across multi-epoch campaigns — the Fig. 1 vertical slice.

use manycore_resilience::adapt::{ProtocolChoice, ThreatLevel};
use manycore_resilience::soc::{EpochThreat, ManagerConfig, SocConfig, SocManager, TileId};

fn manager(seed: u64, config: ManagerConfig) -> SocManager {
    SocManager::new(SocConfig { mesh_width: 4, mesh_height: 4, seed }, config)
}

#[test]
fn storm_campaign_stays_safe_with_full_stack() {
    let mut mgr = manager(1, ManagerConfig::default());
    let storm = [
        EpochThreat::default(),
        EpochThreat { compromise: vec![TileId(2)], ..Default::default() },
        EpochThreat { compromise: vec![TileId(6)], seu_events: 2, ..Default::default() },
        EpochThreat { compromise: vec![TileId(10), TileId(12)], ..Default::default() },
        EpochThreat { crash: vec![TileId(15)], ..Default::default() },
        EpochThreat::default(),
    ];
    let mut total_rejuvenated = 0;
    for threat in &storm {
        let report = mgr.run_epoch(threat, 1, 5);
        assert!(report.run.safety_ok, "safety must hold every epoch");
        assert_eq!(report.run.committed, 5, "liveness must hold every epoch");
        total_rejuvenated += report.rejuvenated.len();
    }
    assert!(total_rejuvenated >= 4, "every compromised tile gets rejuvenated");
    // After the storm every tile is healthy or benignly crashed — no
    // lingering compromise.
    assert!(mgr
        .soc()
        .tiles()
        .iter()
        .all(|t| t.health != manycore_resilience::soc::TileHealth::Compromised));
}

#[test]
fn adaptation_scales_deployment_with_threat() {
    let mut mgr = manager(2, ManagerConfig::default());
    let quiet = mgr.run_epoch(&EpochThreat::default(), 1, 3);
    assert_eq!(quiet.level, ThreatLevel::Low);
    assert_eq!(quiet.deployment.protocol, ProtocolChoice::Passive);
    let attack = EpochThreat { compromise: vec![TileId(3), TileId(5)], ..Default::default() };
    let hot = mgr.run_epoch(&attack, 1, 3);
    assert!(hot.level >= ThreatLevel::High);
    assert!(hot.deployment.replicas() > quiet.deployment.replicas());
    assert!(hot.deployment.protocol.tolerates_byzantine());
}

#[test]
fn rejuvenation_restores_the_fault_budget_across_epochs() {
    // Without rejuvenation, two sequential single-tile compromises
    // accumulate; with it, each epoch starts with a clean fleet.
    let attack_sequence = [
        EpochThreat { compromise: vec![TileId(1)], ..Default::default() },
        EpochThreat { compromise: vec![TileId(2)], ..Default::default() },
        EpochThreat { compromise: vec![TileId(3)], ..Default::default() },
    ];
    let mut with = manager(3, ManagerConfig::default());
    let mut without =
        manager(3, ManagerConfig { enable_rejuvenation: false, ..Default::default() });
    let mut with_max = 0usize;
    let mut without_max = 0usize;
    for threat in &attack_sequence {
        with.run_epoch(threat, 1, 2);
        without.run_epoch(threat, 1, 2);
        let count = |mgr: &SocManager| {
            mgr.soc()
                .tiles()
                .iter()
                .filter(|t| t.health == manycore_resilience::soc::TileHealth::Compromised)
                .count()
        };
        with_max = with_max.max(count(&with));
        without_max = without_max.max(count(&without));
    }
    // Counted at epoch end: rejuvenation has already cleaned the fleet.
    assert_eq!(with_max, 0, "rejuvenation clears each compromise before the next epoch");
    assert_eq!(without_max, 3, "without it the adversary accumulates tiles");
}

#[test]
fn diverse_rejuvenation_retires_compromised_variants() {
    let mut mgr = manager(4, ManagerConfig::default());
    let victim = TileId(5);
    let old_variant = mgr.soc().tiles()[victim.0 as usize].variant;
    mgr.run_epoch(&EpochThreat { compromise: vec![victim], ..Default::default() }, 1, 2);
    let new_variant = mgr.soc().tiles()[victim.0 as usize].variant;
    assert_ne!(new_variant, old_variant, "the broken variant must not return");
}

#[test]
fn fabric_relocation_happens_through_the_gate_only() {
    let mut mgr = manager(5, ManagerConfig::default());
    let before = mgr.engine().fabric().block_region(3).unwrap();
    let report =
        mgr.run_epoch(&EpochThreat { compromise: vec![TileId(3)], ..Default::default() }, 1, 2);
    assert_eq!(report.relocations, 1);
    let after = mgr.engine().fabric().block_region(3).unwrap();
    assert_ne!(before, after);
    let (approved, denied) = report.gate_stats;
    assert!(approved > 0);
    assert_eq!(denied, 0, "all-correct kernels never produce denials");
}

#[test]
fn campaigns_are_reproducible() {
    let campaign = |seed| {
        let mut mgr = manager(seed, ManagerConfig::default());
        let mut summary = Vec::new();
        for threat in [
            EpochThreat::default(),
            EpochThreat { compromise: vec![TileId(7)], seu_events: 1, ..Default::default() },
            EpochThreat::default(),
        ] {
            let r = mgr.run_epoch(&threat, 2, 4);
            summary.push((r.level, r.run.committed, r.run.messages_total, r.rejuvenated));
        }
        summary
    };
    assert_eq!(campaign(11), campaign(11));
}
