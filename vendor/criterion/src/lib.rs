//! Vendored stand-in for `criterion` (the container cannot reach
//! crates.io). Provides the `criterion_group!`/`criterion_main!` entry
//! points, benchmark groups, `Bencher::iter`, and `Throughput`, backed by
//! a simple adaptive timing loop: each benchmark is calibrated to a
//! target batch duration, then the best-of-N batch mean is reported in
//! ns/iter (plus derived throughput when configured).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Honors real criterion's `--test` CLI flag (`cargo bench -- --test`):
    /// run every benchmark body exactly once as a smoke test, skipping
    /// calibration and timing — what CI uses to keep the benches compiling
    /// and panic-free without paying measurement time.
    fn default() -> Self {
        Criterion { test_mode: std::env::args().skip(1).any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        let test_mode = self.test_mode;
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None, test_mode }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] whose `iter` closure
    /// is the measured region.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.test_mode {
            let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut bencher);
            println!("  {}/{id}: test ok", self.name);
            return self;
        }
        // Calibrate: find an iteration count taking roughly 5ms per batch.
        let mut iters: u64 = 1;
        loop {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(4).max(iters + 1);
        }
        // Measure: best batch mean is the least-noise estimate.
        let batches = self.sample_size.min(20);
        let mut best_ns_per_iter = f64::INFINITY;
        for _ in 0..batches {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            let ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
            if ns < best_ns_per_iter {
                best_ns_per_iter = ns;
            }
        }
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                let gib_s = b as f64 / best_ns_per_iter / 1.073_741_824;
                format!("  ({gib_s:.3} GiB/s)")
            }
            Some(Throughput::Elements(e)) => {
                let melem_s = e as f64 * 1e3 / best_ns_per_iter;
                format!("  ({melem_s:.3} Melem/s)")
            }
            None => String::new(),
        };
        println!("  {}/{id}: {best_ns_per_iter:.1} ns/iter{rate}", self.name);
        self
    }

    /// Ends the group (formatting-only in this shim).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `iters` invocations of `f`, keeping results opaque to the
    /// optimizer via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_counts_all_iterations() {
        let mut calls = 0u64;
        let mut bencher = super::Bencher { iters: 37, elapsed: std::time::Duration::ZERO };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 37);
        assert!(bencher.elapsed > std::time::Duration::ZERO || calls == 37);
    }
}
