//! Vendored stand-in for `serde_derive` (the container cannot reach
//! crates.io). Implements `#[derive(Serialize)]` for structs with named
//! fields by walking the raw token stream — no `syn`/`quote` available.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim trait: `serialize_json`) for a
/// struct with named fields. Tuple structs, unit structs, enums, and
/// generic structs are rejected with a compile-time panic; the workspace
/// only derives on plain named-field record structs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => {}
        other => panic!("serde_derive shim: expected `struct`, found `{other}`"),
    }
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct name, found `{other}`"),
    };
    i += 1;

    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        TokenTree::Punct(p) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic structs are not supported")
        }
        other => panic!(
            "serde_derive shim: only structs with named fields are supported, found `{other}`"
        ),
    };

    let fields = field_names(body);
    let mut emit = String::new();
    emit.push_str("out.push('{');");
    for (idx, field) in fields.iter().enumerate() {
        if idx > 0 {
            emit.push_str("out.push(',');");
        }
        emit.push_str(&format!("out.push_str(\"\\\"{field}\\\":\");"));
        emit.push_str(&format!("::serde::Serialize::serialize_json(&self.{field}, out);"));
    }
    emit.push_str("out.push('}');");

    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn serialize_json(&self, out: &mut ::std::string::String) {{ {emit} }} \
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl failed to parse")
}

/// Extracts the field names from the token stream of a named-field struct
/// body: `[attrs] [vis] name : Type ,` repeated. Commas nested inside
/// bracketed groups are invisible at this level; commas inside generic
/// argument lists are skipped by tracking `<`/`>` depth.
fn field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field name, found {other:?}"),
        }
        // Skip the type: everything up to the next comma at angle depth 0.
        // The `>` of a `->` return arrow (fn-pointer fields) must not be
        // counted as closing an angle bracket.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '-' => {
                    if let Some(TokenTree::Punct(next)) = tokens.get(i + 1) {
                        if next.as_char() == '>' {
                            i += 1; // consume the arrow's `>` too
                        }
                    }
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}
