//! Vendored stand-in for `serde` (the container cannot reach crates.io).
//!
//! Instead of serde's full data model, [`Serialize`] writes JSON directly
//! into a `String`; `serde_json::to_string` simply drives this trait. The
//! surface is exactly what the workspace consumes: `use serde::Serialize`
//! plus `#[derive(Serialize)]` on named-field record structs.

pub use serde_derive::Serialize;

/// Serializes `self` as a JSON value appended to `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

macro_rules! display_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use ::std::fmt::Write;
                let _ = write!(out, "{self}");
            }
        }
    )*};
}

display_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use ::std::fmt::Write;
                if self.is_finite() {
                    let _ = write!(out, "{self}");
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use ::std::fmt::Write;
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        self.as_str().serialize_json(out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        self.to_string().serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

// Function-pointer fields (callbacks) are configuration, not data; JSON
// has no representation for them, so they serialize as null.
impl<A, R> Serialize for fn(A) -> R {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&42u32), "42");
        assert_eq!(json(&-7i64), "-7");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json(&Some(1u8)), "1");
        assert_eq!(json(&None::<u8>), "null");
        assert_eq!(json(&vec![1u8, 2, 3]), "[1,2,3]");
    }
}
