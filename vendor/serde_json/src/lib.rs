//! Vendored stand-in for `serde_json` (the container cannot reach
//! crates.io). Covers the `to_string` entry point plus a minimal
//! dynamically-typed [`Value`] / [`from_str`] parser (enough for perf
//! tooling to re-read and validate the JSON it emits); serialization
//! itself lives in the shim `serde::Serialize` trait.

use std::collections::BTreeMap;
use std::fmt;

/// Serialization error. The shim data model writes JSON directly and
/// cannot fail, so this is never constructed; it exists to keep the
/// `Result` signature source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T>(value: &T) -> Result<String, Error>
where
    T: serde::Serialize + ?Sized,
{
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// A dynamically-typed JSON value (parse side of the shim).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like real serde_json's lossy view).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted by key).
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (lossy through f64, as with the serialize side).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `null` (including the out-of-range index fallback).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(o) => o.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
/// [`struct@Error`] on any syntax violation or trailing garbage.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(()));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(()))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, b"null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err(Error(())),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Result<Value, Error> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(()))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(Error(())),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error(())),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or(Error(()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if b.len() - *pos < 4 {
                            return Err(Error(()));
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4]).map_err(|_| Error(()))?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| Error(()))?;
                        *pos += 4;
                        // Surrogates are replaced, not paired — enough for
                        // the ASCII-dominated perf records this shim reads.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(Error(())),
                }
            }
            _ => {
                // Collect the full UTF-8 sequence starting at c.
                let start = *pos - 1;
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(Error(())),
                };
                if start + len > b.len() {
                    return Err(Error(()));
                }
                let s = std::str::from_utf8(&b[start..start + len]).map_err(|_| Error(()))?;
                out.push_str(s);
                *pos = start + len;
            }
        }
    }
    Err(Error(()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error(()))?;
    text.parse::<f64>().map(Value::Number).map_err(|_| Error(()))
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Rec {
        name: &'static str,
        count: u32,
        ratio: f64,
        ok: bool,
    }

    #[test]
    fn parse_round_trip_of_emitted_json() {
        let rec = Rec { name: "tile-0", count: 3, ratio: 0.25, ok: true };
        let json = super::to_string(&rec).unwrap();
        let v = super::from_str(&json).unwrap();
        assert_eq!(v["name"].as_str(), Some("tile-0"));
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["ratio"].as_f64(), Some(0.25));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn parse_nested_arrays_objects_and_escapes() {
        let v = super::from_str(
            r#" { "rows": [ {"x": -1.5e2, "s": "a\"b\nA"}, null, [1,2] ], "e": {} } "#,
        )
        .unwrap();
        assert_eq!(v["rows"].as_array().unwrap().len(), 3);
        assert_eq!(v["rows"][0]["x"].as_f64(), Some(-150.0));
        assert_eq!(v["rows"][0]["s"].as_str(), Some("a\"b\nA"));
        assert!(v["rows"][1].is_null());
        assert_eq!(v["rows"][2][1].as_u64(), Some(2));
        assert_eq!(v["e"].as_object().unwrap().len(), 0);
        assert!(v["rows"][99].is_null(), "out-of-range indexes read as null");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{]"] {
            assert!(super::from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn derived_struct_round_trip() {
        let rec = Rec { name: "tile-0", count: 3, ratio: 0.25, ok: true };
        assert_eq!(
            super::to_string(&rec).unwrap(),
            r#"{"name":"tile-0","count":3,"ratio":0.25,"ok":true}"#
        );
    }

    // Regression: the derive's type scanner must not mistake the `>` of a
    // `->` return arrow for a closing angle bracket, which would silently
    // drop every later field from the output.
    #[derive(Serialize)]
    struct WithFnField {
        scale: fn(u64) -> u64,
        after_arrow: u32,
        items: Vec<u8>,
        last: bool,
    }

    #[test]
    fn fn_pointer_field_does_not_swallow_later_fields() {
        fn double(x: u64) -> u64 {
            x * 2
        }
        let rec = WithFnField { scale: double, after_arrow: 7, items: vec![1, 2], last: true };
        assert_eq!(
            super::to_string(&rec).unwrap(),
            r#"{"scale":null,"after_arrow":7,"items":[1,2],"last":true}"#
        );
    }
}
