//! Vendored stand-in for `serde_json` (the container cannot reach
//! crates.io). Covers exactly the `to_string` entry point the workspace
//! uses; serialization itself lives in the shim `serde::Serialize` trait.

use std::fmt;

/// Serialization error. The shim data model writes JSON directly and
/// cannot fail, so this is never constructed; it exists to keep the
/// `Result` signature source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T>(value: &T) -> Result<String, Error>
where
    T: serde::Serialize + ?Sized,
{
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Rec {
        name: &'static str,
        count: u32,
        ratio: f64,
        ok: bool,
    }

    #[test]
    fn derived_struct_round_trip() {
        let rec = Rec { name: "tile-0", count: 3, ratio: 0.25, ok: true };
        assert_eq!(
            super::to_string(&rec).unwrap(),
            r#"{"name":"tile-0","count":3,"ratio":0.25,"ok":true}"#
        );
    }

    // Regression: the derive's type scanner must not mistake the `>` of a
    // `->` return arrow for a closing angle bracket, which would silently
    // drop every later field from the output.
    #[derive(Serialize)]
    struct WithFnField {
        scale: fn(u64) -> u64,
        after_arrow: u32,
        items: Vec<u8>,
        last: bool,
    }

    #[test]
    fn fn_pointer_field_does_not_swallow_later_fields() {
        fn double(x: u64) -> u64 {
            x * 2
        }
        let rec = WithFnField { scale: double, after_arrow: 7, items: vec![1, 2], last: true };
        assert_eq!(
            super::to_string(&rec).unwrap(),
            r#"{"scale":null,"after_arrow":7,"items":[1,2],"last":true}"#
        );
    }
}
