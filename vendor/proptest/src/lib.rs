//! Vendored stand-in for `proptest` (the container cannot reach
//! crates.io). Implements the DSL subset this workspace's property tests
//! use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] #[test] fn p(x in strategy, ..) { .. } }`
//! * strategies: `any::<T>()` for unsigned integers and `bool`, integer
//!   `Range`/`RangeInclusive`, tuples of strategies, and
//!   `proptest::collection::vec(element, len_range)`, `proptest::bool::ANY`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Case generation is deterministic: the RNG seed for case *i* of a test
//! derives from an FNV-1a hash of the fully-qualified test name and *i*,
//! so failures reproduce without a persistence file. Integer `any`
//! strategies are edge-biased (zero / one / MAX show up ~1 case in 8)
//! because uniform sampling almost never exercises boundary values.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Draws one value from this strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The canonical strategy for `T`: uniform-with-edge-bias over the
    /// whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! uint_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Edge bias: boundary values surface bugs uniform
                    // sampling would practically never hit.
                    match rng.next_u64() & 7 {
                        0 => match rng.next_u64() & 3 {
                            0 => 0,
                            1 => 1,
                            _ => <$t>::MAX,
                        },
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    uint_arbitrary!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end as u128 - start as u128 + 1;
                    if span > u64::MAX as u128 {
                        // 0..=u64::MAX: the span overflows u64; the whole
                        // domain is wanted, so draw raw bits.
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span as u64) as $t
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `len` (half-open, like
    /// proptest's `SizeRange` from a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    pub struct AnyBool;

    /// Either boolean with equal probability.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only the case count is modeled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required for the property to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; draw fresh ones.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    /// Deterministic split-mix style RNG driving all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a raw seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Drives one property: draws inputs and runs the case body until
    /// `config.cases` cases pass, panicking on the first failure with the
    /// offending inputs. Called by the generated code of [`proptest!`](macro@crate::proptest).
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
    {
        let base = fnv1a(name);
        let max_rejects = u64::from(config.cases).saturating_mul(64).max(4096);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::new(base ^ attempt.wrapping_mul(0x2545_F491_4F6C_DD1D));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err((TestCaseError::Reject, _)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{name}: gave up after {rejected} rejected cases \
                         ({passed} passed); prop_assume! filter is too strict"
                    );
                }
                Err((TestCaseError::Fail(message), inputs)) => {
                    panic!(
                        "{name}: property failed after {passed} passing case(s)\n  \
                         {message}\n  inputs: {inputs}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body for
/// the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    &($config),
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strategy), rng);)+
                        let inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        );
                        let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| {
                                $body;
                                ::std::result::Result::Ok(())
                            })();
                        outcome.map_err(|e| (e, inputs))
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// `assert!` for property bodies: fails the case instead of panicking so
/// the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            left_val, right_val
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                            left_val,
                            right_val,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`",
                            left_val, right_val
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`: {}",
                            left_val,
                            right_val,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Filters the current case: when the condition is false the inputs are
/// discarded and fresh ones drawn, without counting toward the case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..10, b in 0u64..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn tuples_sample_componentwise(pair in (any::<u8>(), 0u16..5)) {
            let (_, small) = pair;
            prop_assert!(small < 5);
        }
    }

    // Regression: a full-domain inclusive range has a span of 2^64, which
    // must not truncate to 0 and collapse the strategy onto a constant.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn full_domain_inclusive_range_is_not_constant(x in 0u64..=u64::MAX, y in 0u64..=u64::MAX) {
            // One colliding pair in 64 cases is ~2^-58 under a correct
            // strategy; the pre-fix bug made every sample 0.
            prop_assert!(x != 0 || y != 0 || x != y);
        }
    }

    #[test]
    fn full_domain_inclusive_range_varies() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::new(7);
        let strategy = 0u64..=u64::MAX;
        let samples: Vec<u64> = (0..16).map(|_| strategy.sample(&mut rng)).collect();
        assert!(samples.iter().any(|&s| s != samples[0]), "degenerate strategy: {samples:?}");
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_inputs() {
        crate::test_runner::run_cases(
            &ProptestConfig::with_cases(8),
            "failures_report_inputs",
            |_rng| Err((TestCaseError::fail("forced"), "x = 1".to_string())),
        );
    }
}
