//! HCLF scenario (paper §II-C/§II-E): an FPGA-hosted softcore under a
//! persistent attacker, defended by diverse spatial rejuvenation through
//! the voted privilege gate.
//!
//! Demonstrates:
//! 1. authenticated partial dynamic reconfiguration (CRC + HMAC + ACL);
//! 2. a compromised kernel failing to push a malicious bitstream through
//!    the gate, and failing to bypass the ICAP;
//! 3. periodic diverse relocation wasting an APT's exploit-development
//!    effort (the E6/E9 effect, end to end on the fabric API).
//!
//! ```sh
//! cargo run --example fpga_rejuvenation
//! ```

use manycore_resilience::crypto::MacKey;
use manycore_resilience::fpga::{Bitstream, FpgaFabric, Icap, Principal, ReconfigEngine, Region};
use manycore_resilience::rejuv::{simulate, AptConfig, Policy};
use manycore_resilience::sim::SimRng;
use manycore_resilience::soc::{PrivilegeGate, PrivilegedOp, Vote};

fn main() {
    // --- 1. Resilient provisioning: only the gate can write. ------------
    let bs_key = MacKey::derive(0xF06A, "bitstream-authority");
    let mut fabric = FpgaFabric::new(8, 8, 8);
    let mut rng = SimRng::new(0xF06A);
    fabric.plant_backdoors(0.05, &mut rng);
    println!(
        "fabric: {} frames, {} secretly backdoored (supply-chain attack)",
        fabric.frame_count(),
        fabric.backdoor_count(),
    );
    let mut icap = Icap::new(bs_key.clone());
    icap.allow(PrivilegeGate::GATE_PRINCIPAL, Region::new(0, 64));
    let mut engine = ReconfigEngine::new(fabric, icap);
    let mut gate = PrivilegeGate::new(0xF06A, 3, 2);

    // Install the softcore through the gate (2-of-3 kernel votes).
    let home = Region::new(0, 4);
    let op = PrivilegedOp::Reconfigure {
        region: home,
        block: 1,
        bitstream: Bitstream::for_variant(1, home, 8, &bs_key),
    };
    let votes: Vec<Vote> =
        (0..2).map(|k| Vote::sign(k, gate.kernel_key(k).unwrap(), &op)).collect();
    gate.execute(&mut engine, &op, &votes).expect("install");
    println!(
        "softcore installed at frames {}..{} via voted reconfiguration",
        home.start,
        home.start + home.len
    );

    // --- 2. A compromised kernel attacks. --------------------------------
    let evil_region = Region::new(8, 4);
    let evil_op = PrivilegedOp::Reconfigure {
        region: evil_region,
        block: 0xBAD,
        bitstream: Bitstream::for_variant(0xBAD, evil_region, 8, &bs_key),
    };
    // One real vote (kernel 2 is compromised) + one forged vote.
    let attack_votes = vec![
        Vote::sign(2, gate.kernel_key(2).unwrap(), &evil_op),
        Vote::sign(0, &MacKey::derive(666, "guessed"), &evil_op),
    ];
    let gate_result = gate.execute(&mut engine, &evil_op, &attack_votes);
    println!("\ncompromised kernel via gate:  {gate_result:?}");
    let bypass = engine.reconfigure(
        Principal(2),
        evil_region,
        &Bitstream::for_variant(0xBAD, evil_region, 8, &bs_key),
        0xBAD,
    );
    let bypass_err = bypass.expect_err("the ACL must stop the bypass");
    println!("compromised kernel via ICAP:  {bypass_err:?}");
    assert!(engine.fabric().block_region(0xBAD).is_none(), "implant must not land");

    // --- 3. Spatial rejuvenation dodges grid backdoors. -------------------
    println!("\nrelocating the softcore each epoch (spatial rejuvenation):");
    let mut compromised_epochs = 0;
    for epoch in 0..8 {
        let here = engine.fabric().block_region(1).expect("placed");
        let owned = engine.fabric().region_backdoored(here);
        if owned {
            compromised_epochs += 1;
        }
        println!(
            "  epoch {epoch}: frames {:>2}..{:<2} backdoored={owned}",
            here.start,
            here.start + here.len,
        );
        let free = engine.fabric().free_regions(4);
        if let Some(dest) = rng.choose(&free).copied() {
            engine.relocate(PrivilegeGate::GATE_PRINCIPAL, 1, dest).expect("relocation");
        }
    }
    println!("  compromised {compromised_epochs}/8 epochs (fixed placement would be 0/8 or 8/8)");

    // --- 4. The APT-horizon view (the E6 simulator, 40 campaigns each). ---
    println!("\nAPT campaigns (4 replicas, f=1, horizon 50k, mean of 40 runs):");
    let config = AptConfig { horizon: 50_000, ..Default::default() };
    let root = SimRng::new(1);
    for (name, policy) in [
        ("no rejuvenation   ", Policy::None),
        ("periodic same     ", Policy::PeriodicSame { interval: 2_000 }),
        ("periodic diverse  ", Policy::PeriodicDiverse { interval: 2_000 }),
    ] {
        let trials = 40;
        let mut ttf = 0.0;
        let mut avail = 0.0;
        for t in 0..trials {
            let report = simulate(&config, policy, &mut root.fork(t));
            ttf += report.time_to_failure as f64 / trials as f64;
            avail += report.availability / trials as f64;
        }
        println!("  {name}: mean time-to-failure {ttf:>8.0}  availability {avail:.3}");
    }
}
