//! Tour of the trusted-trustworthy hybrids (paper §III): USIG, TrInc, A2M,
//! the complexity middle-ground rule, and the hybrid-backed consistent
//! broadcast they enable.
//!
//! ```sh
//! cargo run --example trusted_anchors
//! ```

use manycore_resilience::bft::broadcast::{run_broadcast, SenderBehavior};
use manycore_resilience::crypto::MacKey;
use manycore_resilience::hw::{EccRegister, PlainRegister};
use manycore_resilience::hybrid::{
    recommend_realization, A2m, KeyRing, TrInc, UiWindow, Usig, UsigId,
};

fn main() {
    // --- USIG: unique sequential identifiers. ----------------------------
    println!("== USIG (MinBFT's anti-equivocation anchor) ==");
    let ring = KeyRing::provision(2026, 4);
    let mut usig = Usig::new(UsigId(0), ring.clone(), Box::new(EccRegister::new(64)));
    let verifier = Usig::new(UsigId(1), ring.clone(), Box::new(PlainRegister::new(64)));
    let mut window = UiWindow::new();
    for text in ["prepare #1", "prepare #2", "prepare #3"] {
        let ui = usig.create_ui(text.as_bytes()).expect("healthy counter");
        let ok = verifier.verify_ui(UsigId(0), &ui, text.as_bytes());
        let fresh = window.accept(&ui);
        println!("  {text}: counter={} verified={ok} accepted={fresh}", ui.counter);
    }
    // An SEU strikes the (SEC-DED-protected) counter — business as usual.
    usig.inject_counter_flip(9);
    let ui = usig.create_ui(b"prepare #4").expect("ECC corrected the flip");
    println!("  after SEU: counter={} (sequence intact — E2's point)", ui.counter);
    println!(
        "  gate cost {} GE → realization: {:?} (§III middle ground)\n",
        usig.gate_cost(),
        recommend_realization(usig.gate_cost()),
    );

    // --- TrInc: interval attestations. -----------------------------------
    println!("== TrInc (non-overlapping interval attestations) ==");
    let tkey = MacKey::derive(2026, "trinc");
    let mut trinc = TrInc::new(0, tkey.clone());
    let c = trinc.create_counter();
    let a1 = trinc.attest(c, 10, b"checkpoint A").unwrap();
    let a2 = trinc.attest(c, 25, b"checkpoint B").unwrap();
    println!("  A bound to ({}..={}], B to ({}..={}]", a1.old, a1.new, a2.old, a2.new);
    println!("  rollback attempt: {:?}", trinc.attest(c, 5, b"rewrite history").unwrap_err());
    assert!(TrInc::verify(&tkey, &a1, b"checkpoint A"));

    // --- A2M: attested append-only log. ----------------------------------
    println!("\n== A2M (equivocation-proof log) ==");
    let akey = MacKey::derive(2026, "a2m");
    let mut a2m = A2m::new(0, akey.clone());
    let log = a2m.create_log();
    for entry in ["op: grant", "op: reconfigure", "op: revoke"] {
        a2m.append(log, entry.as_bytes()).unwrap();
    }
    let cert = a2m.end(log).unwrap();
    let honest: Vec<&[u8]> = vec![b"op: grant", b"op: reconfigure", b"op: revoke"];
    let lie: Vec<&[u8]> = vec![b"op: grant", b"op: nothing-happened", b"op: revoke"];
    println!("  end cert seq={}", cert.seq);
    println!("  honest history verifies: {}", A2m::verify_content(&akey, &cert, &honest));
    println!("  rewritten history verifies: {}", A2m::verify_content(&akey, &cert, &lie));

    // --- What the anchors buy: consistent broadcast at 2f+1. --------------
    println!("\n== hybrid-backed consistent broadcast (n=5) ==");
    for (name, behavior) in [
        ("correct sender     ", SenderBehavior::Correct),
        ("omitting sender    ", SenderBehavior::PartialSend(1)),
        ("equivocating sender", SenderBehavior::Equivocate),
    ] {
        let report = run_broadcast(5, b"steering: lane-keep", behavior);
        println!(
            "  {name}: consistent={} complete={} msgs={}",
            report.consistent, report.complete, report.messages,
        );
        assert!(report.consistent, "the hybrid must prevent disagreement");
    }
    println!("\n→ every anchor is a small circuit, every guarantee machine-checked above");
}
