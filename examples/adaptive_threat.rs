//! Threat-adaptive deployment (paper §II-D): a severity detector watching
//! protocol anomaly signals drives protocol/f switching with hysteresis.
//!
//! Demonstrates:
//! 1. the EWMA detector escalating and (slowly, thanks to hysteresis)
//!    de-escalating over a noisy anomaly timeline;
//! 2. the controller's deployment table reacting to each level;
//! 3. the cost/protection ledger vs static configurations.
//!
//! ```sh
//! cargo run --example adaptive_threat
//! ```

use manycore_resilience::adapt::controller::TraceSegment;
use manycore_resilience::adapt::{
    simulate_adaptation, AdaptPolicy, AdaptiveController, AnomalySample, Deployment,
    DetectorConfig, ProtocolChoice, ThreatDetector, ThreatLevel,
};

fn main() {
    // --- 1. Detector timeline. -------------------------------------------
    let mut detector = ThreatDetector::new(DetectorConfig::default());
    let controller = AdaptiveController::default();
    println!("window  signals                          score   level     deployment");
    let timeline: Vec<(&str, AnomalySample)> = vec![
        ("quiet", AnomalySample::default()),
        ("quiet", AnomalySample::default()),
        ("seu weather", AnomalySample { seu_events: 3, ..Default::default() }),
        ("timeouts", AnomalySample { timeouts: 2, seu_events: 1, ..Default::default() }),
        ("mac failures!", AnomalySample { mac_failures: 3, timeouts: 1, ..Default::default() }),
        (
            "equivocation!",
            AnomalySample { equivocations: 2, mac_failures: 4, ..Default::default() },
        ),
        (
            "equivocation!",
            AnomalySample { equivocations: 3, mac_failures: 5, ..Default::default() },
        ),
        ("quiet", AnomalySample::default()),
        ("quiet", AnomalySample::default()),
        ("quiet", AnomalySample::default()),
        ("quiet", AnomalySample::default()),
        ("quiet", AnomalySample::default()),
    ];
    for (i, (label, sample)) in timeline.iter().enumerate() {
        let level = detector.observe(*sample);
        let dep = controller.deployment_for(level);
        println!(
            "{i:>6}  {:<30}  {:>6.2}  {:<8}  {:?} f={} ({} tiles)",
            label,
            detector.score(),
            format!("{level:?}"),
            dep.protocol,
            dep.f,
            dep.replicas(),
        );
    }
    assert!(detector.level() <= ThreatLevel::Elevated, "hysteresis must eventually release");

    // --- 2. Cost/protection ledger over a ground-truth trace. ------------
    println!("\nledger over a 255k-cycle threat trace:");
    let trace = vec![
        TraceSegment { duration: 100_000, byz_faults: 0, detected: ThreatLevel::Low },
        TraceSegment { duration: 5_000, byz_faults: 1, detected: ThreatLevel::Low },
        TraceSegment { duration: 20_000, byz_faults: 1, detected: ThreatLevel::High },
        TraceSegment { duration: 15_000, byz_faults: 2, detected: ThreatLevel::High },
        TraceSegment { duration: 15_000, byz_faults: 3, detected: ThreatLevel::Critical },
        TraceSegment { duration: 100_000, byz_faults: 0, detected: ThreatLevel::Low },
    ];
    for (name, policy) in [
        (
            "static minbft f=1",
            AdaptPolicy::Static(Deployment { protocol: ProtocolChoice::MinBft, f: 1 }),
        ),
        (
            "static pbft   f=3",
            AdaptPolicy::Static(Deployment { protocol: ProtocolChoice::Pbft, f: 3 }),
        ),
        ("adaptive         ", AdaptPolicy::Adaptive(AdaptiveController::default())),
    ] {
        let r = simulate_adaptation(&trace, policy);
        println!(
            "  {name}: under-protected {:>5.1}% of time, mean {:>4.1} tiles, {} switches",
            100.0 * r.underprotected_fraction(),
            r.mean_replicas(),
            r.switches,
        );
    }
    println!(
        "\n→ adaptation buys near-large protection at near-small cost; what\n\
         remains exposed is exactly the detector lag (paper §II-D's call for\n\
         research on severity detectors)."
    );
}
