//! Quickstart: a 4×4 resilient SoC running MinBFT across tiles, masking a
//! Byzantine tile, then rejuvenating it through the voted privilege gate.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use manycore_resilience::adapt::ProtocolChoice;
use manycore_resilience::soc::{
    EpochThreat, ManagerConfig, ResilientSoc, SocConfig, SocManager, TileId,
};

fn main() {
    // --- 1. A bare SoC: tiles on a mesh, MinBFT over NoC latencies. -----
    let mut soc = ResilientSoc::new(SocConfig { mesh_width: 4, mesh_height: 4, seed: 42 });
    println!(
        "SoC: {} tiles on a {}x{} mesh, {} distinct software variants",
        soc.tiles().len(),
        soc.mesh().width(),
        soc.mesh().height(),
        soc.tiles().iter().map(|t| t.variant).collect::<std::collections::BTreeSet<_>>().len(),
    );

    let clean = soc.run_workload(ProtocolChoice::MinBft, 1, 2, 10);
    println!(
        "\nfault-free MinBFT (f=1, {} replicas): {} ops committed, \
         {:.1} msgs/op, median latency {:.0} cycles, safety={}",
        clean.n_replicas,
        clean.committed,
        clean.messages_per_commit(),
        clean.commit_latency.median().unwrap_or(0.0),
        clean.safety_ok,
    );

    // --- 2. Compromise a tile: the protocol masks it. -------------------
    soc.compromise_tile(TileId(1));
    let under_attack = soc.run_workload(ProtocolChoice::MinBft, 1, 2, 10);
    println!(
        "with tile t1 Byzantine: {} ops committed, safety={} (masked by 2f+1 + USIG)",
        under_attack.committed, under_attack.safety_ok,
    );

    // --- 3. The full managed stack: detect, adapt, rejuvenate. ----------
    let mut mgr = SocManager::new(
        SocConfig { mesh_width: 4, mesh_height: 4, seed: 42 },
        ManagerConfig::default(),
    );
    println!("\nmanaged epochs (detector → controller → voted rejuvenation):");
    let epochs = [
        EpochThreat::default(),
        EpochThreat { compromise: vec![TileId(5)], ..Default::default() },
        EpochThreat { compromise: vec![TileId(9)], seu_events: 2, ..Default::default() },
        EpochThreat::default(),
        EpochThreat::default(),
    ];
    for (i, threat) in epochs.iter().enumerate() {
        let report = mgr.run_epoch(threat, 1, 5);
        println!(
            "  epoch {i}: threat={:?} deployment={:?}(f={}) committed={} \
             rejuvenated={:?} relocations={}",
            report.level,
            report.deployment.protocol,
            report.deployment.f,
            report.run.committed,
            report.rejuvenated,
            report.relocations,
        );
        assert!(report.run.safety_ok, "the stack must stay safe");
    }
    println!("\nall epochs safe; compromised tiles were rejuvenated onto fresh variants");
}
