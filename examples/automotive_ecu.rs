//! Automotive scenario (paper §II-A/§II-B: "software-defined vehicles"
//! and the AUTOSAR multi-vendor argument): brake/steering commands
//! arbitrated by replicated, *diverse* ECUs on one SoC.
//!
//! Demonstrates:
//! 1. protocol choice for a safety-critical SCLF service: PBFT vs MinBFT
//!    vs passive footprints on the same chip;
//! 2. deterministic actuator arbitration — identical state digests across
//!    replicas, stale-command rejection;
//! 3. vendor diversity — how many distinct exploits an attacker needs
//!    against a monoculture vs a diverse ECU set.
//!
//! ```sh
//! cargo run --example automotive_ecu
//! ```

use manycore_resilience::adapt::ProtocolChoice;
use manycore_resilience::bft::statemachine::ActuatorArbiter;
use manycore_resilience::bft::StateMachine;
use manycore_resilience::diversity::{
    common_mode_exposure, greedy_exploits_to_defeat, PoolConfig, VariantId, VariantPool,
};
use manycore_resilience::sim::SimRng;
use manycore_resilience::soc::{ResilientSoc, SocConfig, TileId};

fn main() {
    println!("== vehicle SoC: replicated brake-command service ==\n");

    // --- 1. Protocol footprint on the chip. -----------------------------
    for (name, protocol) in [
        ("passive ", ProtocolChoice::Passive),
        ("minbft  ", ProtocolChoice::MinBft),
        ("pbft    ", ProtocolChoice::Pbft),
    ] {
        let mut soc = ResilientSoc::new(SocConfig { mesh_width: 4, mesh_height: 4, seed: 7 });
        let report = soc.run_workload(protocol, 1, 2, 20);
        println!(
            "{name} f=1: {} tiles, {:>5.1} msgs/op, p50 {:>3.0}cy, safety={}",
            report.n_replicas,
            report.messages_per_commit(),
            report.commit_latency.median().unwrap_or(0.0),
            report.safety_ok,
        );
    }
    println!(
        "\n→ MinBFT gives Byzantine tolerance at 3 ECU tiles instead of 4 —\n\
         the paper's hybridization dividend for cost-sensitive vehicles.\n"
    );

    // --- 2. Deterministic arbitration across diverse replicas. ----------
    println!("== actuator arbitration (same committed command stream on 3 replicas) ==\n");
    let commands: &[&[u8]] = &[
        b"CMD brake 100 engage",
        b"CMD steer 101 left3deg",
        b"CMD brake 99 release", // stale timestamp — must be rejected
        b"CMD brake 102 release",
        b"CMD steer 102 hold",
    ];
    let mut replicas = [ActuatorArbiter::new(), ActuatorArbiter::new(), ActuatorArbiter::new()];
    for cmd in commands {
        let results: Vec<String> = replicas
            .iter_mut()
            .map(|r| String::from_utf8_lossy(&r.apply(cmd)).to_string())
            .collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]), "determinism violated");
        println!("  {:<28} -> {}", String::from_utf8_lossy(cmd), results[0]);
    }
    let digests: Vec<_> = replicas.iter().map(|r| r.state_digest()).collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    println!("\n→ all replicas converged: state digest {:02x?}...\n", &digests[0][..4]);

    // --- 3. Vendor diversity for the ECU fleet. --------------------------
    println!("== vendor diversity (AUTOSAR-style multi-vendor ECUs) ==\n");
    let mut rng = SimRng::new(7);
    let pool = VariantPool::generate(
        PoolConfig {
            vuln_universe: 1_000,
            vendor_base_vulns: 3,
            variant_vulns: 5,
            ..Default::default()
        },
        &mut rng,
    );
    let mono = vec![VariantId(0); 3];
    let diverse = vec![VariantId(0), VariantId(1), VariantId(2)];
    for (name, assignment) in [("single-vendor", &mono), ("three-vendor ", &diverse)] {
        println!(
            "  {name}: single-exploit exposure {:.4}, exploits needed (greedy) {}",
            common_mode_exposure(&pool, assignment, 1),
            greedy_exploits_to_defeat(&pool, assignment, 1)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "∞".into()),
        );
    }
    println!(
        "\n→ a single-vendor ECU triple falls to one zero-day; the diverse\n\
         fleet forces the attacker to chain distinct exploits (§II-B)."
    );

    // Keep a realistic tie-in: compromise one ECU tile and show masking.
    let mut soc = ResilientSoc::new(SocConfig { mesh_width: 4, mesh_height: 4, seed: 7 });
    soc.compromise_tile(TileId(0));
    let report = soc.run_workload(ProtocolChoice::MinBft, 1, 1, 10);
    assert!(report.safety_ok);
    println!(
        "\nwith one compromised ECU tile, MinBFT still committed {} commands safely",
        report.committed
    );
}
