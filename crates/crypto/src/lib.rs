//! # rsoc-crypto — from-scratch crypto for on-chip trusted components
//!
//! The paper's hybrids (USIG, TrInc, A2M — §III) and authenticated FPGA
//! bitstreams (§II-E) need message authentication. Real deployments use an
//! HMAC circuit inside the trusted perimeter; we implement SHA-256 and
//! HMAC-SHA-256 from scratch so the workspace has no external crypto
//! dependencies and the hybrid's behaviour (including its failure modes
//! under register bit-flips, experiment E2) is fully under our control.
//!
//! ## Example
//!
//! ```
//! use rsoc_crypto::{hmac_sha256, sha256, MacKey};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(digest[0], 0xba);
//!
//! let key = MacKey::from_bytes([7u8; 32]);
//! let tag = hmac_sha256(key.as_bytes(), b"message");
//! assert!(rsoc_crypto::hmac_verify(key.as_bytes(), b"message", &tag));
//! assert!(!rsoc_crypto::hmac_verify(key.as_bytes(), b"forged", &tag));
//! ```

pub mod hmac;
pub mod sha256;

pub use hmac::{hmac_sha256, hmac_verify, MacKey, Tag};
pub use sha256::{sha256, Sha256};
