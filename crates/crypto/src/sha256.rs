//! SHA-256 (FIPS 180-4), incremental and one-shot.

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use rsoc_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), rsoc_crypto::sha256(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buf: [0; 64], buf_len: 0, total_len: 0 }
    }

    /// Resumes hashing from a precomputed compression state after `blocks`
    /// whole 64-byte blocks have been absorbed.
    ///
    /// This is the building block for amortized keyed hashing: HMAC's
    /// inner/outer pad blocks depend only on the key, so their compression
    /// states can be computed once per key and resumed per message (see
    /// [`crate::MacKey`]).
    pub fn from_midstate(state: [u32; 8], blocks: u64) -> Self {
        Sha256 { state, buf: [0; 64], buf_len: 0, total_len: blocks * 64 }
    }

    /// The compression state after the data absorbed so far.
    ///
    /// # Panics
    /// Panics unless the absorbed length is a whole number of 64-byte
    /// blocks (otherwise the buffered tail would be silently dropped).
    pub fn midstate(&self) -> [u32; 8] {
        assert_eq!(self.buf_len, 0, "midstate requires block-aligned input");
        self.state
    }

    /// Absorbs `data`.
    ///
    /// Whole 64-byte blocks are compressed directly from `data`; only a
    /// sub-block tail is staged through the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding_byte();
        while self.buf_len != 56 {
            self.update_zero_byte();
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bit_len.to_be_bytes());
        self.buf[56..64].copy_from_slice(&len_bytes);
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn update_padding_byte(&mut self) {
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buf[self.buf_len] = 0;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    // The block function dominates MAC cost (2+ compressions per protocol
    // message); `rsoc_lint` keeps both lanes allocation-free.
    // lint: hot-path
    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if accel::available() {
            // SAFETY: the required target features were verified at runtime.
            unsafe { accel::compress(&mut self.state, block) };
            return;
        }
        self.compress_soft(block);
    }

    /// Portable scalar compression (FIPS 180-4 reference shape) — the
    /// fallback when no hardware SHA extension is present, and the
    /// specification the accelerated path is tested against.
    fn compress_soft(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
    // lint: end
}

/// SHA-NI accelerated compression, runtime-detected.
///
/// Every MAC on the consensus hot path is 2+ compressions, so the block
/// function dominates authentication cost; the x86 SHA extension runs a
/// round quartet per instruction. Detection is cached by the stdlib
/// feature-detection macro; non-x86 targets (and CPUs without the
/// extension) use [`Sha256::compress_soft`] unchanged.
#[cfg(target_arch = "x86_64")]
mod accel {
    use super::K;
    use core::arch::x86_64::*;

    /// Whether the SHA extension (and the SSE levels the kernel below
    /// uses) is present on this CPU.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Compresses one 64-byte block into `state`.
    ///
    /// # Safety
    /// Callers must have verified [`available`] returns `true`.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Byte shuffle turning little-endian loads into big-endian words.
        let be_mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

        // Repack [a,b,c,d]/[e,f,g,h] into the ABEF/CDGH lane layout the
        // sha256rnds2 instruction expects.
        let tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let tmp = _mm_shuffle_epi32(tmp, 0xB1);
        let st1 = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let st1 = _mm_shuffle_epi32(st1, 0x1B);
        let mut state0 = _mm_alignr_epi8(tmp, st1, 8);
        let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0);
        let (abef_save, cdgh_save) = (state0, state1);

        // Message schedule ring: msgs[g % 4] holds words w[4g..4g+4].
        let load = |offset: usize| {
            let raw = _mm_loadu_si128(block.as_ptr().add(offset * 16) as *const __m128i);
            _mm_shuffle_epi8(raw, be_mask)
        };
        let mut msgs = [load(0), load(1), load(2), load(3)];

        for g in 0..16 {
            let k = _mm_loadu_si128(K.as_ptr().add(4 * g) as *const __m128i);
            let wk = _mm_add_epi32(msgs[g % 4], k);
            state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
            state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(wk, 0x0E));
            if (3..15).contains(&g) {
                // Produce w[4(g+1)..4(g+1)+4] into the oldest ring slot:
                // w[t] = σ1(w[t-2]) + w[t-7] + σ0(w[t-15]) + w[t-16].
                let newest = msgs[g % 4];
                let w_minus_7 = _mm_alignr_epi8(newest, msgs[(g + 3) % 4], 4);
                let partial = _mm_add_epi32(
                    _mm_sha256msg1_epu32(msgs[(g + 1) % 4], msgs[(g + 2) % 4]),
                    w_minus_7,
                );
                msgs[(g + 1) % 4] = _mm_sha256msg2_epu32(partial, newest);
            }
        }

        let state0 = _mm_add_epi32(state0, abef_save);
        let state1 = _mm_add_epi32(state1, cdgh_save);
        // Repack ABEF/CDGH back to [a,b,c,d]/[e,f,g,h].
        let tmp = _mm_shuffle_epi32(state0, 0x1B);
        let state1 = _mm_shuffle_epi32(state1, 0xB1);
        let out0 = _mm_blend_epi16(tmp, state1, 0xF0);
        let out1 = _mm_alignr_epi8(state1, tmp, 8);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, out0);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, out1);
    }
}

/// One-shot SHA-256.
///
/// ```
/// let d = rsoc_crypto::sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_compress_matches_scalar_reference() {
        if !accel::available() {
            return; // nothing to cross-check on this CPU
        }
        // Pseudo-random blocks and chained states: the SHA-NI kernel must
        // be bit-identical to the scalar specification everywhere.
        let mut block = [0u8; 64];
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut fast = Sha256::new();
        let mut soft = Sha256::new();
        for _ in 0..200 {
            for b in block.iter_mut() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *b = (seed >> 56) as u8;
            }
            // SAFETY: availability checked above.
            unsafe { accel::compress(&mut fast.state, &block) };
            soft.compress_soft(&block);
            assert_eq!(fast.state, soft.state);
        }
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_block() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let reference = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split at {split}");
        }
    }

    #[test]
    fn midstate_roundtrip_resumes_exactly() {
        // Hash 128 bytes, snapshot after the first two blocks, resume.
        let data: Vec<u8> = (0..200u16).map(|i| (i % 241) as u8).collect();
        let mut h = Sha256::new();
        h.update(&data[..128]);
        let mid = h.midstate();
        let mut resumed = Sha256::from_midstate(mid, 2);
        resumed.update(&data[128..]);
        assert_eq!(resumed.finalize(), sha256(&data));
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn midstate_rejects_partial_blocks() {
        let mut h = Sha256::new();
        h.update(b"short");
        let _ = h.midstate();
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Sanity (not a security proof): small perturbations change the digest.
        let base = sha256(b"tile-0 message 1");
        for i in 0..64u8 {
            let mut m = b"tile-0 message 1".to_vec();
            m[(i % 16) as usize] ^= 1 << (i % 8);
            assert_ne!(sha256(&m), base);
        }
    }
}
