//! HMAC-SHA-256 (RFC 2104) and MAC key/tag newtypes.

use crate::sha256::Sha256;
use std::fmt;

/// A 256-bit MAC key held by a hybrid or the reconfiguration controller.
///
/// The key is deliberately *not* `Copy`, offers no `Display`, and redacts
/// its `Debug` output, modelling the paper's requirement that hybrid
/// secrets never leave the trusted perimeter except through explicit
/// sharing at provisioning time.
///
/// Construction precomputes the HMAC key schedule — the SHA-256
/// compression states of the key's inner (`⊕ 0x36`) and outer (`⊕ 0x5c`)
/// pad blocks — so [`MacKey::mac`] / [`MacKey::verify`] pay zero
/// key-dependent compressions per message instead of two. On the consensus
/// hot path (one MAC per protocol message per replica) this is the
/// difference between 4 and 2 compressions for a short message.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MacKey {
    key: [u8; 32],
    /// Compression state after absorbing the inner pad block.
    inner: [u32; 8],
    /// Compression state after absorbing the outer pad block.
    outer: [u32; 8],
}

impl fmt::Debug for MacKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MacKey(..)")
    }
}

impl MacKey {
    /// Wraps raw key bytes and precomputes the pad-block key schedule.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..32 {
            ipad[i] ^= bytes[i];
            opad[i] ^= bytes[i];
        }
        let mut hi = Sha256::new();
        hi.update(&ipad);
        let mut ho = Sha256::new();
        ho.update(&opad);
        MacKey { key: bytes, inner: hi.midstate(), outer: ho.midstate() }
    }

    /// Derives a key from a 64-bit provisioning seed and a role label.
    ///
    /// Deterministic, so simulations can re-derive replica keys from the
    /// experiment seed.
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut h = Sha256::new();
        h.update(&seed.to_le_bytes());
        h.update(b"/rsoc-key/");
        h.update(label.as_bytes());
        Self::from_bytes(h.finalize())
    }

    /// Raw key material (for the HMAC circuit inside the trusted perimeter).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.key
    }

    /// HMAC-SHA-256 over `msg` using the cached key schedule.
    ///
    /// Bit-identical to [`hmac_sha256`] with this key, but resumes from the
    /// precomputed pad midstates instead of re-absorbing both 64-byte pad
    /// blocks per call.
    ///
    /// ```
    /// let key = rsoc_crypto::MacKey::derive(7, "replica-0");
    /// let msg = b"prepare view=0 seq=1";
    /// assert_eq!(key.mac(msg), rsoc_crypto::hmac_sha256(key.as_bytes(), msg));
    /// ```
    pub fn mac(&self, msg: &[u8]) -> Tag {
        let mut h = Sha256::from_midstate(self.inner, 1);
        h.update(msg);
        let inner_digest = h.finalize();
        let mut o = Sha256::from_midstate(self.outer, 1);
        o.update(&inner_digest);
        Tag(o.finalize())
    }

    /// Constant-shape verification against the cached key schedule.
    pub fn verify(&self, msg: &[u8], tag: &Tag) -> bool {
        ct_eq(&self.mac(msg).0, &tag.0)
    }
}

/// A 256-bit authentication tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub [u8; 32]);

impl Tag {
    /// First 8 bytes as `u64` — handy for compact logging in experiments.
    pub fn prefix64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

/// Computes HMAC-SHA-256 over `msg` with `key`.
///
/// ```
/// // RFC 4231 test case 2 (key = "Jefe").
/// let mut key = [0u8; 32];
/// key[..4].copy_from_slice(b"Jefe");
/// // HMAC spec pads short keys with zeros, so a zero-extended key is equivalent.
/// let tag = rsoc_crypto::hmac_sha256(&key, b"what do ya want for nothing?");
/// assert_eq!(tag.0[0], 0x5b);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Tag {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        let d = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; 64];
    let mut opad = [0u8; 64];
    for i in 0..64 {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    Tag(outer.finalize())
}

/// Constant-shape verification of an HMAC tag.
///
/// Uses a branch-free byte comparison; timing side channels are out of scope
/// for the simulation but the discipline costs nothing.
pub fn hmac_verify(key: &[u8], msg: &[u8], tag: &Tag) -> bool {
    ct_eq(&hmac_sha256(key, msg).0, &tag.0)
}

/// Branch-free 32-byte comparison.
fn ct_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag.0), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag.0), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(hex(&tag.0), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key forces the key-hashing path.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag.0), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = MacKey::derive(42, "replica-0");
        let tag = hmac_sha256(key.as_bytes(), b"commit #5");
        assert!(hmac_verify(key.as_bytes(), b"commit #5", &tag));
        assert!(!hmac_verify(key.as_bytes(), b"commit #6", &tag));
        let other = MacKey::derive(42, "replica-1");
        assert!(!hmac_verify(other.as_bytes(), b"commit #5", &tag));
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        assert_eq!(MacKey::derive(7, "a"), MacKey::derive(7, "a"));
        assert_ne!(MacKey::derive(7, "a"), MacKey::derive(7, "b"));
        assert_ne!(MacKey::derive(7, "a"), MacKey::derive(8, "a"));
    }

    #[test]
    fn cached_schedule_matches_reference_at_all_boundary_lengths() {
        // Message lengths straddling every padding/block boundary.
        let key = MacKey::derive(0xC0FFEE, "schedule");
        for len in [0usize, 1, 31, 32, 55, 56, 63, 64, 65, 127, 128, 129, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
            let reference = hmac_sha256(key.as_bytes(), &msg);
            assert_eq!(key.mac(&msg), reference, "len {len}");
            assert!(key.verify(&msg, &reference));
        }
    }

    #[test]
    fn cached_schedule_matches_rfc4231_zero_extended() {
        // RFC 4231 case 2 with the short key zero-extended to 32 bytes
        // (HMAC pads short keys with zeros, so the tags coincide).
        let mut key = [0u8; 32];
        key[..4].copy_from_slice(b"Jefe");
        let k = MacKey::from_bytes(key);
        assert_eq!(
            hex(&k.mac(b"what do ya want for nothing?").0),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn cached_verify_rejects_tampering() {
        let key = MacKey::derive(9, "v");
        let tag = key.mac(b"payload");
        assert!(key.verify(b"payload", &tag));
        assert!(!key.verify(b"payloae", &tag));
        let mut bad = tag;
        bad.0[31] ^= 1;
        assert!(!key.verify(b"payload", &bad));
    }

    #[test]
    fn debug_is_redacted() {
        let key = MacKey::derive(1, "secret");
        assert_eq!(format!("{key:?}"), "MacKey(..)");
    }

    #[test]
    fn tag_prefix() {
        let t = Tag([1u8; 32]);
        assert_eq!(t.prefix64(), u64::from_le_bytes([1; 8]));
    }
}
