//! HMAC-SHA-256 (RFC 2104) and MAC key/tag newtypes.

use crate::sha256::Sha256;

/// A 256-bit MAC key held by a hybrid or the reconfiguration controller.
///
/// The key is deliberately *not* `Copy` and offers no `Display`, modelling
/// the paper's requirement that hybrid secrets never leave the trusted
/// perimeter except through explicit sharing at provisioning time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MacKey([u8; 32]);

impl MacKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        MacKey(bytes)
    }

    /// Derives a key from a 64-bit provisioning seed and a role label.
    ///
    /// Deterministic, so simulations can re-derive replica keys from the
    /// experiment seed.
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut h = Sha256::new();
        h.update(&seed.to_le_bytes());
        h.update(b"/rsoc-key/");
        h.update(label.as_bytes());
        MacKey(h.finalize())
    }

    /// Raw key material (for the HMAC circuit inside the trusted perimeter).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// A 256-bit authentication tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub [u8; 32]);

impl Tag {
    /// First 8 bytes as `u64` — handy for compact logging in experiments.
    pub fn prefix64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

/// Computes HMAC-SHA-256 over `msg` with `key`.
///
/// ```
/// // RFC 4231 test case 2 (key = "Jefe").
/// let mut key = [0u8; 32];
/// key[..4].copy_from_slice(b"Jefe");
/// // HMAC spec pads short keys with zeros, so a zero-extended key is equivalent.
/// let tag = rsoc_crypto::hmac_sha256(&key, b"what do ya want for nothing?");
/// assert_eq!(tag.0[0], 0x5b);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Tag {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        let d = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; 64];
    let mut opad = [0u8; 64];
    for i in 0..64 {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    Tag(outer.finalize())
}

/// Constant-shape verification of an HMAC tag.
///
/// Uses a branch-free byte comparison; timing side channels are out of scope
/// for the simulation but the discipline costs nothing.
pub fn hmac_verify(key: &[u8], msg: &[u8], tag: &Tag) -> bool {
    let expect = hmac_sha256(key, msg);
    let mut diff = 0u8;
    for (a, b) in expect.0.iter().zip(tag.0.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag.0),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag.0),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag.0),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key forces the key-hashing path.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag.0),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = MacKey::derive(42, "replica-0");
        let tag = hmac_sha256(key.as_bytes(), b"commit #5");
        assert!(hmac_verify(key.as_bytes(), b"commit #5", &tag));
        assert!(!hmac_verify(key.as_bytes(), b"commit #6", &tag));
        let other = MacKey::derive(42, "replica-1");
        assert!(!hmac_verify(other.as_bytes(), b"commit #5", &tag));
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        assert_eq!(MacKey::derive(7, "a"), MacKey::derive(7, "a"));
        assert_ne!(MacKey::derive(7, "a"), MacKey::derive(7, "b"));
        assert_ne!(MacKey::derive(7, "a"), MacKey::derive(8, "a"));
    }

    #[test]
    fn tag_prefix() {
        let t = Tag([1u8; 32]);
        assert_eq!(t.prefix64(), u64::from_le_bytes([1; 8]));
    }
}
