//! Gate-equivalent complexity accounting — §III's "exactly right
//! complexity" argument.
//!
//! The paper: "We also see the converse effect when the required complexity
//! of producing a special purpose circuit for a given functionality exceeds
//! the complexity of a simple core that is able to fetch, decode and
//! execute software. Once the inherent complexity of such a functionality
//! exceeds this bound, software implementations become preferable and
//! hybridization amounts to providing such an isolated core."

/// Gate-equivalents of a compact HMAC-SHA-256 core (datapath + control),
/// in the ballpark of published compact implementations (~10–20k GE).
pub const HMAC_CORE_GATES: u64 = 14_000;

/// Gate-equivalents of a minimal in-order scalar core able to fetch,
/// decode and execute software (e.g., a small RV32I), the §III threshold.
pub const SIMPLE_CORE_GATES: u64 = 25_000;

/// Complexity breakdown of a hybrid component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentComplexity {
    /// Storage gate-equivalents (registers, including ECC overhead).
    pub storage: u64,
    /// Combinational/crypto datapath gate-equivalents.
    pub logic: u64,
}

impl ComponentComplexity {
    /// Total gate-equivalents.
    pub fn total(&self) -> u64 {
        self.storage + self.logic
    }
}

/// How a hybrid of a given complexity should be realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Realization {
    /// Small enough to implement and verify as a dedicated circuit.
    HardCircuit,
    /// Beyond the simple-core bound: run it as software on an isolated core.
    IsolatedCore,
}

/// Applies the §III rule: circuits below the simple-core complexity stay in
/// hardware; above it, an isolated core running verified software is the
/// better trust anchor.
///
/// ```
/// use rsoc_hybrid::{recommend_realization, Realization};
/// assert_eq!(recommend_realization(5_000), Realization::HardCircuit);
/// assert_eq!(recommend_realization(80_000), Realization::IsolatedCore);
/// ```
pub fn recommend_realization(gate_equivalents: u64) -> Realization {
    if gate_equivalents <= SIMPLE_CORE_GATES {
        Realization::HardCircuit
    } else {
        Realization::IsolatedCore
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usig::{KeyRing, Usig, UsigId};
    use rsoc_hw::{EccRegister, PlainRegister};

    #[test]
    fn usig_is_a_hard_circuit_even_with_ecc() {
        // The paper's middle-ground claim: USIG + ECC stays well under the
        // simple-core bound, so hardware hybridization is the right call.
        let ring = KeyRing::provision(3, 1);
        let plain = Usig::new(UsigId(0), ring.clone(), Box::new(PlainRegister::new(64)));
        let ecc = Usig::new(UsigId(0), ring, Box::new(EccRegister::new(64)));
        assert_eq!(recommend_realization(plain.gate_cost()), Realization::HardCircuit);
        assert_eq!(recommend_realization(ecc.gate_cost()), Realization::HardCircuit);
        assert!(ecc.gate_cost() > plain.gate_cost());
        assert!(ecc.gate_cost() < SIMPLE_CORE_GATES);
    }

    #[test]
    fn threshold_boundary() {
        assert_eq!(recommend_realization(SIMPLE_CORE_GATES), Realization::HardCircuit);
        assert_eq!(recommend_realization(SIMPLE_CORE_GATES + 1), Realization::IsolatedCore);
    }

    #[test]
    fn complexity_totals() {
        let c = ComponentComplexity { storage: 100, logic: 200 };
        assert_eq!(c.total(), 300);
        assert_eq!(ComponentComplexity::default().total(), 0);
    }
}
