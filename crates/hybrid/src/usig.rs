//! USIG — Unique Sequential Identifier Generator (Veronese et al., MinBFT).
//!
//! The USIG assigns each outgoing message a *unique, monotonic, verifiable*
//! counter value, certified with an HMAC computed inside the trusted
//! perimeter. With it, a Byzantine replica cannot equivocate (send two
//! different messages with the same counter), which is what lets MinBFT run
//! with 2f+1 replicas instead of 3f+1 (§II-A, §III of the paper).
//!
//! The counter lives in a pluggable [`RegisterCell`]: experiment E2 flips
//! its bits to reproduce §III's observation that "any bitflip in the
//! counter will have catastrophic effects on the consensus problem".

use rsoc_crypto::{sha256, MacKey, Tag};
use rsoc_hw::{LoadOutcome, RegisterCell};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identity of a USIG instance (one per replica/tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UsigId(pub u32);

impl fmt::Display for UsigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "usig{}", self.0)
    }
}

/// A certified unique identifier: `(signer, counter, HMAC)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UI {
    /// Which USIG issued this identifier.
    pub id: UsigId,
    /// The (claimed) monotonic counter value.
    pub counter: u64,
    /// HMAC over `(id, counter, message)` — short messages are MACed
    /// directly, long ones through their SHA-256 digest (see
    /// `ui_payload`).
    pub tag: Tag,
}

/// Errors from USIG operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsigError {
    /// The counter register reported uncorrectable corruption; the USIG
    /// fail-stops rather than emit a certificate over garbage.
    CounterCorrupted,
    /// Counter overflow (astronomically unlikely; modeled for totality).
    CounterExhausted,
}

impl fmt::Display for UsigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsigError::CounterCorrupted => write!(f, "counter register corrupted beyond repair"),
            UsigError::CounterExhausted => write!(f, "counter exhausted"),
        }
    }
}

impl std::error::Error for UsigError {}

/// Shared-key registry held *inside* trusted components.
///
/// MinBFT's USIGs verify each other's certificates through symmetric keys
/// provisioned at manufacturing; the registry never leaves the trusted
/// perimeter in the model (no accessor exposes raw keys except to the
/// crypto routines in this module).
#[derive(Debug, Clone, Default)]
pub struct KeyRing {
    keys: BTreeMap<UsigId, MacKey>,
}

impl KeyRing {
    /// Creates an empty ring.
    pub fn new() -> Self {
        KeyRing::default()
    }

    /// Provisions `key` for `id`.
    pub fn register(&mut self, id: UsigId, key: MacKey) {
        self.keys.insert(id, key);
    }

    /// Builds a ring for replicas `0..n` from a provisioning seed.
    ///
    /// Returns the ring behind an [`Arc`]: every replica of a cluster
    /// shares the same immutable ring, so handing it out is a refcount
    /// bump — key derivation (and the HMAC key-schedule precomputation
    /// inside [`MacKey`]) happens once per cluster, not once per replica.
    pub fn provision(seed: u64, n: u32) -> Arc<Self> {
        let mut ring = KeyRing::new();
        for i in 0..n {
            ring.register(UsigId(i), MacKey::derive(seed, &format!("usig-{i}")));
        }
        Arc::new(ring)
    }

    fn key(&self, id: UsigId) -> Option<&MacKey> {
        self.keys.get(&id)
    }
}

/// The USIG trusted component.
#[derive(Debug)]
pub struct Usig {
    id: UsigId,
    ring: Arc<KeyRing>,
    counter: Box<dyn RegisterCell>,
    issued: u64,
    verified: Cell<u64>,
}

impl Usig {
    /// Creates a USIG with the given identity, shared key ring (which must
    /// contain this id's key), and counter register backend.
    ///
    /// # Panics
    /// Panics if the ring has no key for `id`.
    pub fn new(id: UsigId, ring: Arc<KeyRing>, mut counter: Box<dyn RegisterCell>) -> Self {
        assert!(ring.key(id).is_some(), "key ring must contain own key");
        counter.store(0);
        Usig { id, ring, counter, issued: 0, verified: Cell::new(0) }
    }

    /// This USIG's identity.
    pub fn id(&self) -> UsigId {
        self.id
    }

    /// Number of `create_ui` calls that succeeded.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of `verify_ui` calls performed (MAC accounting for the
    /// authentication-cost experiments).
    pub fn verified(&self) -> u64 {
        self.verified.get()
    }

    /// Creates a certified unique identifier for `message`.
    ///
    /// Loads the counter (detecting/correcting upsets per the register's
    /// protection), increments, stores back, and certifies. With a plain
    /// register an undetected flip silently yields a duplicate or skipped
    /// counter — the E2 failure mode.
    ///
    /// # Errors
    /// [`UsigError::CounterCorrupted`] when the register detects
    /// uncorrectable corruption (fail-stop), [`UsigError::CounterExhausted`]
    /// on overflow.
    pub fn create_ui(&mut self, message: &[u8]) -> Result<UI, UsigError> {
        let current = match self.counter.load() {
            LoadOutcome::Value(v) => v,
            LoadOutcome::Detected => return Err(UsigError::CounterCorrupted),
        };
        let next = current.checked_add(1).ok_or(UsigError::CounterExhausted)?;
        self.counter.store(next);
        self.issued += 1;
        let tag = certify(self.ring.key(self.id).expect("own key present"), self.id, next, message);
        Ok(UI { id: self.id, counter: next, tag })
    }

    /// Verifies a UI allegedly issued by `sender` over `message`.
    ///
    /// Returns `false` for unknown senders or bad tags. Monotonicity /
    /// contiguity across UIs is the receiver's job — see [`UiWindow`].
    pub fn verify_ui(&self, sender: UsigId, ui: &UI, message: &[u8]) -> bool {
        if ui.id != sender {
            return false;
        }
        let Some(key) = self.ring.key(sender) else { return false };
        self.verified.set(self.verified.get() + 1);
        let (payload, len) = ui_payload(sender, ui.counter, message);
        key.verify(&payload[..len], &ui.tag)
    }

    /// Resumes the counter at or above `counter` after a process restart.
    ///
    /// The USIG models a *hardware-monotonic* counter that outlives the
    /// software stack; a restarted replica hands back the highest counter
    /// value it persisted before the crash so the trusted component never
    /// certifies two statements under one value (the exact equivocation
    /// the hybrid exists to prevent). Resuming never moves the counter
    /// backwards, and a corrupted register stays fail-stopped.
    pub fn resume(&mut self, counter: u64) {
        let current = match self.counter.load() {
            LoadOutcome::Value(v) => v,
            LoadOutcome::Detected => return, // fail-stopped: stay that way
        };
        if counter > current {
            self.counter.store(counter);
        }
    }

    /// Flips a bit of the counter register (SEU injection for E2).
    pub fn inject_counter_flip(&mut self, bit: u32) {
        self.counter.inject_flip(bit);
    }

    /// The protection scheme of the backing register.
    pub fn protection_name(&self) -> &'static str {
        self.counter.protection_name()
    }

    /// Gate-equivalent complexity: register + HMAC core + control.
    pub fn gate_cost(&self) -> u64 {
        self.counter.gate_cost() + crate::complexity::HMAC_CORE_GATES + 400
    }
}

fn ui_payload(id: UsigId, counter: u64, message: &[u8]) -> ([u8; 85], usize) {
    // Fixed-size stack buffer: this runs once per MAC operation on the
    // consensus hot path, so it must not allocate. Short messages (every
    // PREPARE/COMMIT statement the protocols certify) are MACed directly
    // — pre-hashing them cost two extra SHA-256 compressions per
    // certificate for nothing; long messages still compress to a digest.
    // The leading form byte (0x01 raw / 0x02 hashed) plus the explicit
    // length keep the two encodings unambiguous.
    let mut payload = [0u8; 85];
    payload[1..5].copy_from_slice(&id.0.to_le_bytes());
    payload[5..13].copy_from_slice(&counter.to_le_bytes());
    if message.len() <= 64 {
        payload[0] = 0x01;
        payload[13..21].copy_from_slice(&(message.len() as u64).to_le_bytes());
        payload[21..21 + message.len()].copy_from_slice(message);
        (payload, 21 + message.len())
    } else {
        payload[0] = 0x02;
        payload[13..45].copy_from_slice(&sha256(message));
        (payload, 45)
    }
}

fn certify(key: &MacKey, id: UsigId, counter: u64, message: &[u8]) -> Tag {
    // Cached key schedule: no per-call pad-block compressions.
    let (payload, len) = ui_payload(id, counter, message);
    key.mac(&payload[..len])
}

/// Receiver-side monotonicity window: accepts each sender's UIs only in
/// strict counter order (`last + 1`), which MinBFT requires so a faulty
/// primary can neither replay nor skip certified messages.
#[derive(Debug, Clone, Default)]
pub struct UiWindow {
    last: BTreeMap<UsigId, u64>,
}

impl UiWindow {
    /// Creates an empty window (all senders start before counter 1).
    pub fn new() -> Self {
        UiWindow::default()
    }

    /// Checks-and-advances: returns `true` iff `ui.counter` is exactly the
    /// successor of the last accepted counter from this sender.
    pub fn accept(&mut self, ui: &UI) -> bool {
        let last = self.last.entry(ui.id).or_insert(0);
        if ui.counter == *last + 1 {
            *last = ui.counter;
            true
        } else {
            false
        }
    }

    /// Last accepted counter for `sender` (0 = none yet).
    pub fn last_accepted(&self, sender: UsigId) -> u64 {
        self.last.get(&sender).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsoc_hw::{EccRegister, ParityRegister, PlainRegister};

    fn usig_with(reg: Box<dyn RegisterCell>) -> Usig {
        Usig::new(UsigId(0), KeyRing::provision(7, 4), reg)
    }

    #[test]
    fn uis_are_sequential_and_verifiable() {
        let mut u = usig_with(Box::new(PlainRegister::new(64)));
        let mut prev = 0;
        for i in 0..10 {
            let msg = format!("msg {i}");
            let ui = u.create_ui(msg.as_bytes()).unwrap();
            assert_eq!(ui.counter, prev + 1, "strictly sequential");
            prev = ui.counter;
            assert!(u.verify_ui(UsigId(0), &ui, msg.as_bytes()));
        }
        assert_eq!(u.issued(), 10);
    }

    #[test]
    fn verification_rejects_wrong_message_sender_or_counter() {
        let ring = KeyRing::provision(7, 4);
        let mut u0 = Usig::new(UsigId(0), ring.clone(), Box::new(PlainRegister::new(64)));
        let u1 = Usig::new(UsigId(1), ring, Box::new(PlainRegister::new(64)));
        let ui = u0.create_ui(b"hello").unwrap();
        // Any replica can verify through its own USIG.
        assert!(u1.verify_ui(UsigId(0), &ui, b"hello"));
        assert!(!u1.verify_ui(UsigId(0), &ui, b"evil"));
        assert!(!u1.verify_ui(UsigId(1), &ui, b"hello"), "sender mismatch");
        let mut forged = ui;
        forged.counter += 1;
        assert!(!u1.verify_ui(UsigId(0), &forged, b"hello"), "counter not covered by tag");
    }

    #[test]
    fn forgery_without_key_fails() {
        let ring = KeyRing::provision(7, 2);
        let u0 = Usig::new(UsigId(0), ring, Box::new(PlainRegister::new(64)));
        // Attacker fabricates a tag with a guessed key.
        let fake_tag = MacKey::derive(999, "attacker").mac(b"whatever");
        let forged = UI { id: UsigId(0), counter: 1, tag: fake_tag };
        assert!(!u0.verify_ui(UsigId(0), &forged, b"whatever"));
    }

    #[test]
    fn plain_register_flip_causes_duplicate_or_gap() {
        let mut u = usig_with(Box::new(PlainRegister::new(64)));
        let ui1 = u.create_ui(b"a").unwrap(); // counter = 1
        u.inject_counter_flip(0); // 1 -> 0
        let ui2 = u.create_ui(b"b").unwrap(); // counter = 1 again!
        assert_eq!(ui1.counter, ui2.counter, "silent duplicate — equivocation now possible");
        // Both certify fine: the hybrid's guarantee is broken undetectably.
        assert!(u.verify_ui(UsigId(0), &ui1, b"a"));
        assert!(u.verify_ui(UsigId(0), &ui2, b"b"));
    }

    #[test]
    fn parity_register_fail_stops_on_flip() {
        let mut u = usig_with(Box::new(ParityRegister::new(64)));
        u.create_ui(b"a").unwrap();
        u.inject_counter_flip(5);
        assert_eq!(u.create_ui(b"b"), Err(UsigError::CounterCorrupted));
    }

    #[test]
    fn ecc_register_rides_through_flip() {
        let mut u = usig_with(Box::new(EccRegister::new(64)));
        let ui1 = u.create_ui(b"a").unwrap();
        u.inject_counter_flip(13);
        let ui2 = u.create_ui(b"b").unwrap();
        assert_eq!(ui2.counter, ui1.counter + 1, "ECC corrects, sequence intact");
    }

    #[test]
    fn window_enforces_contiguity() {
        let mut u = usig_with(Box::new(PlainRegister::new(64)));
        let ui1 = u.create_ui(b"a").unwrap();
        let ui2 = u.create_ui(b"b").unwrap();
        let ui3 = u.create_ui(b"c").unwrap();
        let mut w = UiWindow::new();
        assert!(w.accept(&ui1));
        assert!(!w.accept(&ui3), "gap rejected");
        assert!(w.accept(&ui2));
        assert!(w.accept(&ui3));
        assert!(!w.accept(&ui2), "replay rejected");
        assert_eq!(w.last_accepted(UsigId(0)), 3);
    }

    #[test]
    fn verify_calls_are_counted() {
        let mut u = usig_with(Box::new(PlainRegister::new(64)));
        let ui = u.create_ui(b"m").unwrap();
        assert_eq!(u.verified(), 0);
        assert!(u.verify_ui(UsigId(0), &ui, b"m"));
        assert!(!u.verify_ui(UsigId(0), &ui, b"x"));
        assert_eq!(u.verified(), 2, "both MAC checks hit the counter");
    }

    #[test]
    fn resume_never_regresses_the_counter() {
        let mut u = usig_with(Box::new(PlainRegister::new(64)));
        u.create_ui(b"a").unwrap(); // counter = 1
        u.create_ui(b"b").unwrap(); // counter = 2
        u.resume(7); // restart persisted watermark 7
        assert_eq!(u.create_ui(b"c").unwrap().counter, 8);
        u.resume(3); // stale watermark: must not move backwards
        assert_eq!(u.create_ui(b"d").unwrap().counter, 9);
    }

    #[test]
    fn gate_cost_tracks_register_protection() {
        let plain = usig_with(Box::new(PlainRegister::new(64)));
        let ecc = usig_with(Box::new(EccRegister::new(64)));
        assert!(ecc.gate_cost() > plain.gate_cost());
        assert_eq!(plain.protection_name(), "plain");
        assert_eq!(ecc.protection_name(), "secded");
    }

    #[test]
    #[should_panic(expected = "own key")]
    fn requires_own_key() {
        Usig::new(UsigId(9), KeyRing::provision(7, 2), Box::new(PlainRegister::new(64)));
    }
}
