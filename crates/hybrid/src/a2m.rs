//! A2M — Attested Append-Only Memory (Chun et al.).
//!
//! A trusted log that can only grow. Certificates bind each appended entry
//! to its sequence number and the running hash chain, so a malicious host
//! cannot show different log prefixes to different observers.

use rsoc_crypto::{MacKey, Tag};
use std::fmt;

/// A certificate over log entry `seq` of log `log_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct A2mCert {
    /// Device identity.
    pub device: u32,
    /// Which log within the device.
    pub log_id: u32,
    /// Sequence number of the certified entry (1-based).
    pub seq: u64,
    /// Hash chain value after this entry.
    pub chain: [u8; 32],
    /// HMAC over `(device, log_id, seq, chain)`.
    pub tag: Tag,
}

/// Errors from A2M operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum A2mError {
    /// No such log.
    UnknownLog,
    /// Sequence number out of range.
    NoSuchEntry,
}

impl fmt::Display for A2mError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            A2mError::UnknownLog => write!(f, "unknown log id"),
            A2mError::NoSuchEntry => write!(f, "no such log entry"),
        }
    }
}

impl std::error::Error for A2mError {}

#[derive(Debug, Clone)]
struct LogState {
    chain: [u8; 32],
    entries: Vec<[u8; 32]>, // chain value after each entry
}

/// The A2M trusted component.
#[derive(Debug)]
pub struct A2m {
    device: u32,
    key: MacKey,
    logs: Vec<LogState>,
}

impl A2m {
    /// Creates a device with an attestation key.
    pub fn new(device: u32, key: MacKey) -> Self {
        A2m { device, key, logs: Vec::new() }
    }

    /// Allocates a fresh log; returns its id.
    pub fn create_log(&mut self) -> u32 {
        let id = self.logs.len() as u32;
        self.logs.push(LogState { chain: [0; 32], entries: Vec::new() });
        id
    }

    /// Appends `value` to `log_id`, returning the certificate for the new
    /// entry. Appending is the *only* mutation — entries can never be
    /// replaced or truncated.
    ///
    /// # Errors
    /// [`A2mError::UnknownLog`] for unallocated logs.
    pub fn append(&mut self, log_id: u32, value: &[u8]) -> Result<A2mCert, A2mError> {
        let log = self.logs.get_mut(log_id as usize).ok_or(A2mError::UnknownLog)?;
        log.chain = chain_link(&log.chain, value);
        log.entries.push(log.chain);
        let seq = log.entries.len() as u64;
        let chain = log.chain;
        Ok(self.cert(log_id, seq, chain))
    }

    /// Certificate for an existing entry (the `lookup` primitive).
    ///
    /// # Errors
    /// [`A2mError::UnknownLog`] / [`A2mError::NoSuchEntry`].
    pub fn lookup(&self, log_id: u32, seq: u64) -> Result<A2mCert, A2mError> {
        let log = self.logs.get(log_id as usize).ok_or(A2mError::UnknownLog)?;
        if seq == 0 || seq as usize > log.entries.len() {
            return Err(A2mError::NoSuchEntry);
        }
        Ok(self.cert(log_id, seq, log.entries[seq as usize - 1]))
    }

    /// Certificate for the current end of the log (the `end` primitive).
    /// `seq == 0` with a zero chain for an empty log.
    ///
    /// # Errors
    /// [`A2mError::UnknownLog`].
    pub fn end(&self, log_id: u32) -> Result<A2mCert, A2mError> {
        let log = self.logs.get(log_id as usize).ok_or(A2mError::UnknownLog)?;
        let seq = log.entries.len() as u64;
        Ok(self.cert(log_id, seq, log.chain))
    }

    fn cert(&self, log_id: u32, seq: u64, chain: [u8; 32]) -> A2mCert {
        let tag = self.key.mac(&payload(self.device, log_id, seq, &chain));
        A2mCert { device: self.device, log_id, seq, chain, tag }
    }

    /// Verifies a certificate with the device key.
    pub fn verify(key: &MacKey, cert: &A2mCert) -> bool {
        key.verify(&payload(cert.device, cert.log_id, cert.seq, &cert.chain), &cert.tag)
    }

    /// Recomputes the expected chain for a claimed sequence of values and
    /// checks it against `cert` — detects a host lying about log *content*.
    pub fn verify_content(key: &MacKey, cert: &A2mCert, values: &[&[u8]]) -> bool {
        if values.len() as u64 != cert.seq {
            return false;
        }
        let mut chain = [0u8; 32];
        for v in values {
            chain = chain_link(&chain, v);
        }
        chain == cert.chain && Self::verify(key, cert)
    }
}

/// Advances the hash chain by one entry in a single incremental pass:
/// `chain' = H(chain || value)`. The previous link is a fixed 32-byte
/// prefix, so the encoding is unambiguous without an inner `H(value)` —
/// which the old implementation computed and then re-hashed, doubling the
/// compression count per append.
fn chain_link(chain: &[u8; 32], value: &[u8]) -> [u8; 32] {
    let mut h = rsoc_crypto::Sha256::new();
    h.update(chain);
    h.update(value);
    h.finalize()
}

fn payload(device: u32, log_id: u32, seq: u64, chain: &[u8; 32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + 4 + 8 + 32);
    p.extend_from_slice(&device.to_le_bytes());
    p.extend_from_slice(&log_id.to_le_bytes());
    p.extend_from_slice(&seq.to_le_bytes());
    p.extend_from_slice(chain);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> (A2m, MacKey) {
        let key = MacKey::derive(13, "a2m-0");
        (A2m::new(0, key.clone()), key)
    }

    #[test]
    fn append_lookup_end() {
        let (mut a, key) = device();
        let log = a.create_log();
        let c1 = a.append(log, b"op1").unwrap();
        let c2 = a.append(log, b"op2").unwrap();
        assert_eq!(c1.seq, 1);
        assert_eq!(c2.seq, 2);
        assert_ne!(c1.chain, c2.chain);
        assert_eq!(a.lookup(log, 1).unwrap(), c1);
        assert_eq!(a.end(log).unwrap(), c2);
        assert!(A2m::verify(&key, &c1));
        assert!(A2m::verify(&key, &c2));
    }

    #[test]
    fn empty_log_end() {
        let (mut a, key) = device();
        let log = a.create_log();
        let c = a.end(log).unwrap();
        assert_eq!(c.seq, 0);
        assert_eq!(c.chain, [0; 32]);
        assert!(A2m::verify(&key, &c));
    }

    #[test]
    fn content_verification_detects_lies() {
        let (mut a, key) = device();
        let log = a.create_log();
        a.append(log, b"op1").unwrap();
        let c2 = a.append(log, b"op2").unwrap();
        assert!(A2m::verify_content(&key, &c2, &[b"op1", b"op2"]));
        assert!(!A2m::verify_content(&key, &c2, &[b"op1", b"evil"]));
        assert!(!A2m::verify_content(&key, &c2, &[b"op1"]));
    }

    #[test]
    fn chains_depend_on_order() {
        let (mut a, _) = device();
        let l1 = a.create_log();
        let l2 = a.create_log();
        let x = a.append(l1, b"x").unwrap();
        let _ = a.append(l1, b"y").unwrap();
        let y = a.append(l2, b"y").unwrap();
        let x2 = a.append(l2, b"x").unwrap();
        // Same multiset of values, different order → different chains.
        assert_ne!(a.end(l1).unwrap().chain, a.end(l2).unwrap().chain);
        let _ = (x, y, x2);
    }

    #[test]
    fn tampered_cert_rejected() {
        let (mut a, key) = device();
        let log = a.create_log();
        let mut c = a.append(log, b"op").unwrap();
        c.seq = 7;
        assert!(!A2m::verify(&key, &c));
    }

    #[test]
    fn errors_for_unknown_ids() {
        let (mut a, _) = device();
        assert_eq!(a.append(3, b"x"), Err(A2mError::UnknownLog));
        assert_eq!(a.lookup(3, 1), Err(A2mError::UnknownLog));
        let log = a.create_log();
        assert_eq!(a.lookup(log, 1), Err(A2mError::NoSuchEntry));
        assert_eq!(a.lookup(log, 0), Err(A2mError::NoSuchEntry));
    }
}
