//! TrInc — trusted incremental counters (Levin et al.).
//!
//! A TrInc hybrid holds a set of non-decreasing counters; an attestation
//! binds a message hash to the *interval* `(old, new]` of a counter's
//! advance. Because counters never go back, a malicious host cannot produce
//! two attestations claiming the same interval for different messages —
//! the primitive behind equivocation-free logs and cheap BFT.

use rsoc_crypto::{sha256, MacKey, Tag};
use std::collections::BTreeMap;
use std::fmt;

/// An attestation that counter `counter_id` advanced from `old` to `new`
/// bound to `message` (by hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrIncAttestation {
    /// Issuing TrInc identity.
    pub device: u32,
    /// Which counter inside the device.
    pub counter_id: u32,
    /// Previous counter value.
    pub old: u64,
    /// New counter value (`new >= old`; `new == old` attests state without
    /// advancing).
    pub new: u64,
    /// HMAC over `(device, counter_id, old, new, H(message))`.
    pub tag: Tag,
}

/// Errors from TrInc operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrIncError {
    /// Requested `new` is smaller than the current counter value.
    Rollback,
    /// No such counter was created.
    UnknownCounter,
}

impl fmt::Display for TrIncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrIncError::Rollback => write!(f, "attempted counter rollback"),
            TrIncError::UnknownCounter => write!(f, "unknown counter id"),
        }
    }
}

impl std::error::Error for TrIncError {}

/// The TrInc trusted component.
#[derive(Debug)]
pub struct TrInc {
    device: u32,
    key: MacKey,
    counters: BTreeMap<u32, u64>,
    next_counter: u32,
}

impl TrInc {
    /// Creates a TrInc with a device id and attestation key.
    pub fn new(device: u32, key: MacKey) -> Self {
        TrInc { device, key, counters: BTreeMap::new(), next_counter: 0 }
    }

    /// Allocates a fresh counter starting at 0; returns its id.
    pub fn create_counter(&mut self) -> u32 {
        let id = self.next_counter;
        self.next_counter += 1;
        self.counters.insert(id, 0);
        id
    }

    /// Current value of a counter.
    pub fn value(&self, counter_id: u32) -> Option<u64> {
        self.counters.get(&counter_id).copied()
    }

    /// Advances `counter_id` to `new` and attests the advance bound to
    /// `message`.
    ///
    /// # Errors
    /// [`TrIncError::Rollback`] if `new` is below the current value;
    /// [`TrIncError::UnknownCounter`] for unallocated ids.
    pub fn attest(
        &mut self,
        counter_id: u32,
        new: u64,
        message: &[u8],
    ) -> Result<TrIncAttestation, TrIncError> {
        let current = self.counters.get_mut(&counter_id).ok_or(TrIncError::UnknownCounter)?;
        if new < *current {
            return Err(TrIncError::Rollback);
        }
        let old = *current;
        *current = new;
        // Cached key schedule: the device key's pad states are precomputed.
        let tag = self.key.mac(&payload(self.device, counter_id, old, new, message));
        Ok(TrIncAttestation { device: self.device, counter_id, old, new, tag })
    }

    /// Verifies an attestation with the device key (shared among trusted
    /// verifiers, as with [`crate::KeyRing`]).
    pub fn verify(key: &MacKey, att: &TrIncAttestation, message: &[u8]) -> bool {
        att.new >= att.old
            && key.verify(&payload(att.device, att.counter_id, att.old, att.new, message), &att.tag)
    }
}

fn payload(device: u32, counter_id: u32, old: u64, new: u64, message: &[u8]) -> Vec<u8> {
    let digest = sha256(message);
    let mut p = Vec::with_capacity(4 + 4 + 8 + 8 + 32);
    p.extend_from_slice(&device.to_le_bytes());
    p.extend_from_slice(&counter_id.to_le_bytes());
    p.extend_from_slice(&old.to_le_bytes());
    p.extend_from_slice(&new.to_le_bytes());
    p.extend_from_slice(&digest);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> (TrInc, MacKey) {
        let key = MacKey::derive(11, "trinc-0");
        (TrInc::new(0, key.clone()), key)
    }

    #[test]
    fn attest_and_verify() {
        let (mut t, key) = device();
        let c = t.create_counter();
        let att = t.attest(c, 5, b"block A").unwrap();
        assert_eq!(att.old, 0);
        assert_eq!(att.new, 5);
        assert!(TrInc::verify(&key, &att, b"block A"));
        assert!(!TrInc::verify(&key, &att, b"block B"));
    }

    #[test]
    fn rollback_rejected() {
        let (mut t, _) = device();
        let c = t.create_counter();
        t.attest(c, 10, b"x").unwrap();
        assert_eq!(t.attest(c, 9, b"y"), Err(TrIncError::Rollback));
        assert_eq!(t.value(c), Some(10));
    }

    #[test]
    fn equal_value_attests_without_advance() {
        let (mut t, key) = device();
        let c = t.create_counter();
        t.attest(c, 3, b"x").unwrap();
        let att = t.attest(c, 3, b"status").unwrap();
        assert_eq!(att.old, 3);
        assert_eq!(att.new, 3);
        assert!(TrInc::verify(&key, &att, b"status"));
    }

    #[test]
    fn intervals_never_overlap_for_different_messages() {
        // The anti-equivocation core: successive attests have disjoint
        // (old, new] intervals.
        let (mut t, _) = device();
        let c = t.create_counter();
        let a1 = t.attest(c, 5, b"m1").unwrap();
        let a2 = t.attest(c, 8, b"m2").unwrap();
        assert!(a1.new <= a2.old, "intervals must not overlap");
    }

    #[test]
    fn unknown_counter_rejected() {
        let (mut t, _) = device();
        assert_eq!(t.attest(42, 1, b"x"), Err(TrIncError::UnknownCounter));
        assert_eq!(t.value(42), None);
    }

    #[test]
    fn independent_counters() {
        let (mut t, _) = device();
        let c1 = t.create_counter();
        let c2 = t.create_counter();
        t.attest(c1, 100, b"x").unwrap();
        assert_eq!(t.value(c2), Some(0), "counters are independent");
    }

    #[test]
    fn forged_interval_fails_verification() {
        let (mut t, key) = device();
        let c = t.create_counter();
        let mut att = t.attest(c, 5, b"m").unwrap();
        att.new = 50; // widen the claimed interval
        assert!(!TrInc::verify(&key, &att, b"m"));
    }
}
