//! # rsoc-hybrid — trusted-trustworthy hardware components
//!
//! §III of the paper: architectural hybridization "aims at benefiting from
//! small easy-to-verify and therefore more trustworthy components, called
//! hybrids ... components (registers, memory, trusted execution
//! environments or networks) such as USIG, A2M, TrInc, SGX and others, used
//! in hybrid BFT-SMR protocols."
//!
//! This crate implements the three classic hybrids as *circuits with
//! state*, not oracles:
//!
//! * [`Usig`] — MinBFT's Unique Sequential Identifier Generator: a
//!   monotonic counter + HMAC. Its counter register is a pluggable
//!   [`rsoc_hw::RegisterCell`], so experiment E2 can flip its bits and
//!   watch plain registers break consensus while SEC-DED survives.
//! * [`TrInc`] — trusted incremental counters with interval attestations.
//! * [`A2m`] — attested append-only memory with hash-chained certificates.
//!
//! [`complexity`] carries the paper's "exactly right complexity" argument:
//! gate-equivalent accounting and the hard-circuit vs isolated-core
//! recommendation rule.
//!
//! ## Example
//!
//! ```
//! use rsoc_crypto::MacKey;
//! use rsoc_hw::PlainRegister;
//! use rsoc_hybrid::{KeyRing, Usig, UsigId};
//!
//! let mut ring = KeyRing::new();
//! ring.register(UsigId(0), MacKey::derive(1, "usig-0"));
//! // Clusters share one immutable ring; cloning the Arc is a refcount bump.
//! let ring = std::sync::Arc::new(ring);
//! let mut usig = Usig::new(UsigId(0), ring.clone(), Box::new(PlainRegister::new(64)));
//! let ui1 = usig.create_ui(b"prepare #1").unwrap();
//! let ui2 = usig.create_ui(b"prepare #2").unwrap();
//! assert_eq!(ui1.counter + 1, ui2.counter); // unique, sequential
//! assert!(usig.verify_ui(UsigId(0), &ui1, b"prepare #1"));
//! assert!(!usig.verify_ui(UsigId(0), &ui1, b"prepare #X"));
//! ```

pub mod a2m;
pub mod complexity;
pub mod trinc;
pub mod usig;

pub use a2m::{A2m, A2mCert};
pub use complexity::{recommend_realization, ComponentComplexity, Realization};
pub use trinc::{TrInc, TrIncAttestation};
pub use usig::{KeyRing, UiWindow, Usig, UsigError, UsigId, UI};
