//! Wall-clock implementation of the protocol core's [`Clock`] boundary.

use rsoc_bft::plane::Clock;
use std::time::{Duration, Instant};

/// Maps wall time onto the protocol core's virtual-cycle timeline.
///
/// The protocols express every timeout in *cycles* (the simulator's
/// virtual unit); the real plane needs a wall-time interpretation. One
/// cycle maps to [`WallClock::DEFAULT_CYCLE_NS`] nanoseconds by default,
/// which puts the default 1 500-cycle request patience at ~375 ms — slow
/// enough to ride out CI scheduling jitter on localhost, fast enough
/// that a genuinely dead primary is replaced promptly.
#[derive(Debug, Clone)]
pub struct WallClock {
    t0: Instant,
    cycle_ns: u64,
}

impl WallClock {
    /// Default wall-time width of one virtual cycle: 250 µs.
    pub const DEFAULT_CYCLE_NS: u64 = 250_000;

    /// Starts a clock at cycle 0 (now) with the given cycle width.
    pub fn new(cycle_ns: u64) -> Self {
        WallClock { t0: Instant::now(), cycle_ns: cycle_ns.max(1) }
    }

    /// Converts a cycle delta to wall time (for `recv_timeout` waits).
    pub fn cycles_to_duration(&self, cycles: u64) -> Duration {
        Duration::from_nanos(cycles.saturating_mul(self.cycle_ns))
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new(Self::DEFAULT_CYCLE_NS)
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        (self.t0.elapsed().as_nanos() / u128::from(self.cycle_ns)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically_in_cycle_units() {
        let c = WallClock::new(1_000); // 1 µs cycles so the test is quick
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "2 ms must advance a 1 µs-cycle clock");
        assert!(b - a >= 1_000, "at least ~1 000 cycles elapsed, got {}", b - a);
    }

    #[test]
    fn zero_cycle_width_is_clamped() {
        let c = WallClock::new(0);
        let _ = c.now(); // must not divide by zero
        assert_eq!(c.cycles_to_duration(3).as_nanos(), 3);
    }
}
