//! Length-framed byte transport over any `Read`/`Write` pair.
//!
//! The socket layer owns exactly one concern: cutting a TCP byte stream
//! into discrete frames. A frame on the wire is a `u32` little-endian
//! body length followed by the body; everything inside the body (version
//! byte, message discriminants, fields) belongs to the versioned codec in
//! [`rsoc_bft::codec`]. Keeping the two layers separate means the
//! deterministic simulator — which never frames anything — shares the
//! body encoding with the socket path byte for byte.
//!
//! Reads are *total*: a malformed prefix (oversized length, truncated
//! body) surfaces as an [`io::Error`], never a panic, because the bytes
//! come from the network and the peer may be Byzantine.

use std::io::{self, Read, Write};

/// Hard cap on a frame body. State transfers carry whole snapshots plus a
/// committed log suffix, so the cap is generous; anything larger is a
/// corrupt or hostile length prefix and is rejected before allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame: `u32` LE body length, then the body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame body exceeds MAX_FRAME"));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

// Frames arrive from the network; every decode path below must reject
// malformed input without panicking.
// lint: ingress

/// Reads one frame body.
///
/// Returns `Ok(None)` on a clean EOF *at a frame boundary* (the peer
/// closed between frames — the normal end of a connection). EOF inside a
/// length prefix or body is an error: the stream was cut mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    // Fill the prefix manually: EOF before the *first* byte is a clean
    // close, EOF after it means the stream was cut inside a header.
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        // In bounds: the loop condition keeps filled < len_bytes.len().
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a length prefix",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}
// lint: end

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_and_preserves_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![0xAB; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF at a frame boundary");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"whatever");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 10]); // 90 bytes short
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_length_prefix_is_an_error() {
        // 1..=3 bytes of a length prefix: the stream died mid-header.
        for n in 1..4usize {
            let err = read_frame(&mut Cursor::new(vec![7u8; n])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "prefix of {n} bytes");
        }
    }

    #[test]
    fn oversized_write_is_refused() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
        assert!(sink.is_empty(), "nothing partial reaches the wire");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any byte soup either yields frames or a clean error — never a
        /// panic, and every returned frame obeys the size cap.
        #[test]
        fn garbage_streams_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let mut r = Cursor::new(&bytes);
            while let Ok(Some(frame)) = read_frame(&mut r) {
                prop_assert!(frame.len() <= MAX_FRAME);
            }
        }

        /// Frames round-trip through an honest stream.
        #[test]
        fn round_trip(bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 0..8)) {
            let mut buf = Vec::new();
            for b in &bodies {
                write_frame(&mut buf, b).unwrap();
            }
            let mut r = Cursor::new(buf);
            for b in &bodies {
                prop_assert_eq!(&read_frame(&mut r).unwrap().unwrap(), b);
            }
            prop_assert!(read_frame(&mut r).unwrap().is_none());
        }
    }
}
