//! The external cluster client: issues the deterministic request log
//! over TCP, tallies reply quorums, and checks cross-replica digest
//! convergence.
//!
//! The workload is *the same request log the simulator issues*:
//! [`client_payload`] is shared with the deterministic harness, so a
//! cluster run over real sockets and a simulator run with the same
//! `(seed, clients, requests, payload_size)` execute identical
//! operations — which is what makes the final state digests comparable
//! across planes.

use crate::frame::{read_frame, write_frame};
use crate::wire::{decode_envelope, encode_envelope, Envelope};
use rsoc_bft::api::{ClientId, Endpoint, OpId, ReplicaNode, Request};
use rsoc_bft::codec::Wire;
use rsoc_bft::runner::client_payload;
use rsoc_sim::LogHistogram;
use std::io;
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long the client keeps redialing a replica that is not up yet.
const DIAL_BUDGET: Duration = Duration::from_secs(30);
/// Delay between dial attempts.
const DIAL_RETRY: Duration = Duration::from_millis(100);
/// Poll interval while waiting for digest convergence.
const SETTLE_POLL: Duration = Duration::from_millis(200);

/// Client-side run parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Replica listen addresses, index = replica id.
    pub addrs: Vec<String>,
    /// Number of logical clients this process issues for.
    pub clients: u32,
    /// Operations per logical client.
    pub requests_per_client: u64,
    /// Request payload size in bytes (see [`client_payload`]).
    pub payload_size: usize,
    /// Workload seed shared with the simulator run being mirrored.
    pub seed: u64,
    /// Matching replies required to accept a result (f+1).
    pub quorum: usize,
    /// Retransmit interval for an unanswered operation.
    pub op_timeout: Duration,
    /// Retransmissions per operation before the run fails.
    pub max_retries: u32,
    /// Budget for all replicas to converge on one digest at the end.
    pub settle_timeout: Duration,
}

/// What a completed cluster run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// Operations committed (always `clients * requests_per_client` on
    /// success — the run fails rather than under-commit).
    pub committed: u64,
    /// The digest every replica converged to.
    pub digest: [u8; 32],
    /// Total retransmissions across the run (observability).
    pub retransmits: u64,
    /// Wall-clock per-operation latency percentiles.
    pub latency: LatencySummary,
    /// The full log-bucketed wall-clock latency distribution, in
    /// microseconds — the same mergeable structure the simulator's
    /// open-loop plane records in virtual cycles, so multi-process
    /// client fleets can merge their distributions before taking
    /// percentiles (percentiles themselves do not merge).
    pub latency_hist: LogHistogram,
}

/// Wall-clock latency percentiles over every completed operation
/// (broadcast to reply quorum, retransmissions included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Median, in microseconds.
    pub p50_us: u64,
    /// 99th percentile, in microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, in microseconds.
    pub p999_us: u64,
    /// Largest observed latency, in microseconds (bucket-quantized).
    pub max_us: u64,
}

impl LatencySummary {
    /// Reads the percentiles out of a log-bucketed distribution (empty
    /// → all zeros). Quantiles are nearest-rank over buckets, so a
    /// summary is reproducible from a merged histogram — unlike sorting
    /// raw samples, which a multi-process fleet no longer has.
    fn from_histogram(hist: &LogHistogram) -> Self {
        LatencySummary {
            p50_us: hist.quantile(0.5).unwrap_or(0),
            p99_us: hist.quantile(0.99).unwrap_or(0),
            p999_us: hist.quantile(0.999).unwrap_or(0),
            max_us: hist.max().unwrap_or(0),
        }
    }
}

/// Runs the full closed-loop workload against a live cluster.
///
/// Generic over the protocol node type only for its message wrapping
/// ([`ReplicaNode::make_request`] / [`ReplicaNode::as_reply`]); no node
/// state exists client-side.
pub fn run_cluster_client<N>(config: &ClientConfig) -> io::Result<ClientReport>
where
    N: ReplicaNode,
    N::Msg: Wire + Send + 'static,
{
    let n = config.addrs.len();
    let mut conns = Vec::with_capacity(n);
    let (tx, rx) = channel::<Envelope<N::Msg>>();
    let hello = Arc::new(encode_envelope::<N::Msg>(&Envelope::HelloClient {
        ids: (0..config.clients).collect(),
    }));
    for addr in &config.addrs {
        let stream = dial(addr)?;
        let mut conn = ReplicaConn::<N> {
            addr: addr.clone(),
            hello: hello.clone(),
            tx: tx.clone(),
            stream: None,
        };
        conn.adopt(stream)?;
        conns.push(conn);
    }

    // Closed-loop issue: one op at a time, round-robin over clients —
    // requests stay maximally spread across batching windows, and the
    // tally below never has to demux concurrent ops.
    let mut retransmits = 0u64;
    let mut latency_hist = LogHistogram::new();
    for seq in 1..=config.requests_per_client {
        for client in 0..config.clients {
            let payload = client_payload(config.seed, client, seq, config.payload_size);
            let op = OpId { client: ClientId(client), seq };
            let request = Arc::new(Request { op, payload });
            let start = Instant::now();
            retransmits += run_one_op::<N>(config, &mut conns, &rx, &request)?;
            latency_hist.record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
    }

    let (committed, digest) = settle::<N>(config, &mut conns, &rx)?;
    let shutdown = encode_envelope::<N::Msg>(&Envelope::Shutdown);
    for conn in &mut conns {
        conn.send(&shutdown);
    }
    Ok(ClientReport {
        committed,
        digest,
        retransmits,
        latency: LatencySummary::from_histogram(&latency_hist),
        latency_hist,
    })
}

/// One replica connection that survives the replica dying and coming
/// back: a failed write drops the stream, and the next send redials,
/// replays the hello, and spawns a fresh reader thread. While the
/// replica is down, sends shed — every caller path retransmits or
/// re-polls, so a dead replica costs retries, not the run.
struct ReplicaConn<N: ReplicaNode> {
    addr: String,
    hello: Arc<Vec<u8>>,
    tx: Sender<Envelope<N::Msg>>,
    stream: Option<TcpStream>,
}

impl<N> ReplicaConn<N>
where
    N: ReplicaNode,
    N::Msg: Wire + Send + 'static,
{
    /// Takes ownership of a freshly-dialed stream: sends the hello and
    /// attaches a reader thread feeding the shared channel.
    fn adopt(&mut self, mut stream: TcpStream) -> io::Result<()> {
        write_frame(&mut stream, &self.hello)?;
        let reader = stream.try_clone()?;
        let tx = self.tx.clone();
        thread::spawn(move || reader_loop::<N>(reader, &tx));
        self.stream = Some(stream);
        Ok(())
    }

    /// Sends one frame, reconnecting once on failure (a single
    /// non-blocking dial attempt — a dead replica fails fast with
    /// connection-refused and the send is shed).
    fn send(&mut self, body: &[u8]) {
        for _ in 0..2 {
            if self.stream.is_none() {
                let Ok(stream) = TcpStream::connect(&self.addr) else { return };
                stream.set_nodelay(true).ok();
                if self.adopt(stream).is_err() {
                    self.stream = None;
                    return;
                }
            }
            // `adopt` just set the stream; a failed write clears it so
            // the retry (or the next send) redials.
            let Some(stream) = self.stream.as_mut() else { return };
            if write_frame(stream, body).is_ok() {
                return;
            }
            self.stream = None;
        }
    }
}

/// Dials with retry: replicas may still be binding when the client
/// starts.
fn dial(addr: &str) -> io::Result<TcpStream> {
    let deadline = Instant::now() + DIAL_BUDGET;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Ok(s);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                thread::sleep(DIAL_RETRY);
            }
        }
    }
}

/// Broadcasts one request and blocks until `quorum` replicas agree on a
/// result, retransmitting on timeout. Returns the retransmission count.
fn run_one_op<N>(
    config: &ClientConfig,
    conns: &mut [ReplicaConn<N>],
    rx: &Receiver<Envelope<N::Msg>>,
    request: &Arc<Request>,
) -> io::Result<u64>
where
    N: ReplicaNode,
    N::Msg: Wire + Send + 'static,
{
    let op = request.op;
    let mut retries = 0u64;
    broadcast::<N>(conns, request);
    let mut deadline = Instant::now() + config.op_timeout;
    // One tally bucket per distinct result; replicas are deduped by id
    // bit so a resent reply never double-counts.
    let mut tallies: Vec<(Arc<Vec<u8>>, u64)> = Vec::new();
    loop {
        let now = Instant::now();
        if now >= deadline {
            if retries >= u64::from(config.max_retries) {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("op {op:?}: no quorum after {retries} retransmissions"),
                ));
            }
            retries += 1;
            broadcast::<N>(conns, request);
            deadline = now + config.op_timeout;
            continue;
        }
        let envelope = match rx.recv_timeout(deadline - now) {
            Ok(e) => e,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "all replica readers died"));
            }
        };
        let Envelope::Msg { from: _, msg } = envelope else { continue };
        let Some(reply) = N::as_reply(&msg) else { continue };
        if reply.op != op {
            continue; // stale reply from an earlier (already decided) op
        }
        let mask = 1u64 << (reply.replica.0 % 64);
        let entry = match tallies.iter_mut().find(|(r, _)| *r == reply.result) {
            Some(e) => e,
            None => {
                tallies.push((reply.result.clone(), 0));
                let back = tallies.len() - 1;
                &mut tallies[back]
            }
        };
        if entry.1 & mask == 0 {
            entry.1 |= mask;
            if entry.1.count_ones() as usize >= config.quorum {
                return Ok(retries);
            }
        }
    }
}

/// Sends the request to every replica (dead ones shed — quorum covers
/// the rest, and the retransmit loop reaches a restarted replica).
fn broadcast<N>(conns: &mut [ReplicaConn<N>], request: &Arc<Request>)
where
    N: ReplicaNode,
    N::Msg: Wire + Send + 'static,
{
    let body = encode_envelope(&Envelope::Msg {
        from: Endpoint::Client(request.op.client),
        msg: N::make_request(request.clone()),
    });
    for conn in conns.iter_mut() {
        conn.send(&body);
    }
}

/// Polls digests until every replica reports the full committed count
/// and all digests agree.
fn settle<N>(
    config: &ClientConfig,
    conns: &mut [ReplicaConn<N>],
    rx: &Receiver<Envelope<N::Msg>>,
) -> io::Result<(u64, [u8; 32])>
where
    N: ReplicaNode,
    N::Msg: Wire + Send + 'static,
{
    let n = conns.len();
    let expected = u64::from(config.clients) * config.requests_per_client;
    let deadline = Instant::now() + config.settle_timeout;
    let query = encode_envelope::<N::Msg>(&Envelope::DigestQuery);
    let mut latest: Vec<Option<(u64, [u8; 32])>> = vec![None; n];
    loop {
        for conn in conns.iter_mut() {
            conn.send(&query);
        }
        let round_end = Instant::now() + SETTLE_POLL;
        loop {
            let now = Instant::now();
            if now >= round_end {
                break;
            }
            match rx.recv_timeout(round_end - now) {
                Ok(Envelope::DigestReply { replica, committed, digest }) => {
                    if let Some(slot) = latest.get_mut(replica as usize) {
                        *slot = Some((committed, digest));
                    }
                }
                Ok(_) => {} // late replies from the workload phase
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "all replica readers died",
                    ));
                }
            }
        }
        let done = latest.iter().all(|s| matches!(s, Some((c, _)) if *c >= expected));
        if done {
            let first = latest[0].map(|(_, d)| d).unwrap_or_default();
            if latest.iter().all(|s| matches!(s, Some((_, d)) if *d == first)) {
                return Ok((expected, first));
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("digest settle timed out: {latest:?} (expected committed={expected})"),
            ));
        }
    }
}

/// Decodes frames from one replica connection into the shared channel.
fn reader_loop<N>(mut stream: TcpStream, tx: &Sender<Envelope<N::Msg>>)
where
    N: ReplicaNode,
    N::Msg: Wire,
{
    while let Ok(Some(body)) = read_frame(&mut stream) {
        if let Some(env) = decode_envelope::<N::Msg>(&body) {
            if tx.send(env).is_err() {
                return;
            }
        }
    }
}
