//! Listener binding for restartable replicas.
//!
//! A replica that is SIGKILLed and restarted must come back on the
//! address its peers and clients already hold — the rendezvous happened
//! once, at cluster launch. The kernel, however, leaves the old
//! listener's connections in `TIME_WAIT`, and a plain
//! [`TcpListener::bind`] on the same address can fail with
//! `EADDRINUSE` for up to a minute. `SO_REUSEADDR` is the standard
//! server-side answer (safe here: only the restarted process itself
//! rebinds its own advertised address), but `std` exposes no socket
//! options before binding — so this module makes the four raw libc
//! calls itself on Unix. Non-Unix targets fall back to a plain bind.

use std::io;
use std::net::TcpListener;

/// Binds a TCP listener on `addr` (IPv4 `host:port`) with
/// `SO_REUSEADDR`, so a restarted replica can reclaim its advertised
/// address while the previous incarnation's connections drain.
#[cfg(unix)]
pub fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, ToSocketAddrs};
    use std::os::fd::FromRawFd;

    let resolved: SocketAddrV4 = addr
        .to_socket_addrs()?
        .find_map(|a| match a {
            SocketAddr::V4(v4) => Some(v4),
            SocketAddr::V6(_) => None,
        })
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: no IPv4 address"))
        })?;

    // Linux/POSIX constants for the exact calls below (IPv4 + TCP only).
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    /// `struct sockaddr_in` (network byte order for port and address).
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
        fn bind(fd: i32, addr: *const core::ffi::c_void, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    // SAFETY: plain libc syscall; a negative return is checked before the
    // fd is used anywhere.
    let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Everything after this point must close `fd` on failure.
    let fail = |fd: i32| -> io::Error {
        let err = io::Error::last_os_error();
        // SAFETY: fd came from `socket` above and is closed exactly once.
        unsafe { close(fd) };
        err
    };

    let one: i32 = 1;
    // SAFETY: `one` outlives the call; the length matches its type.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            (&one as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc != 0 {
        return Err(fail(fd));
    }

    let ip: Ipv4Addr = *resolved.ip();
    let sa = SockaddrIn {
        sin_family: AF_INET as u16,
        sin_port: resolved.port().to_be(),
        sin_addr: u32::from(ip).to_be(),
        sin_zero: [0; 8],
    };
    // SAFETY: `sa` is a correctly-laid-out sockaddr_in outliving the
    // call; the length is its exact size.
    let rc = unsafe {
        bind(fd, (&sa as *const SockaddrIn).cast(), std::mem::size_of::<SockaddrIn>() as u32)
    };
    if rc != 0 {
        return Err(fail(fd));
    }
    // SAFETY: fd is a bound, unconnected stream socket.
    if unsafe { listen(fd, BACKLOG) } != 0 {
        return Err(fail(fd));
    }
    // SAFETY: fd is a valid listening socket and ownership transfers to
    // the TcpListener exactly once — no further raw use of fd follows.
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

/// Fallback for non-Unix targets: a plain bind (no `SO_REUSEADDR`, so a
/// fast restart may need to wait out `TIME_WAIT`).
#[cfg(not(unix))]
pub fn bind_reuseaddr(addr: &str) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebinds_an_address_immediately() {
        // Bind ephemeral, accept one connection (so the socket has seen
        // traffic), drop, and rebind the same port right away — the
        // TIME_WAIT scenario a restarted replica hits.
        let first = bind_reuseaddr("127.0.0.1:0").expect("first bind");
        let addr = first.local_addr().expect("local addr").to_string();
        let client = std::net::TcpStream::connect(&addr).expect("dial");
        let (accepted, _) = first.accept().expect("accept");
        drop(accepted);
        drop(client);
        drop(first);
        let again = bind_reuseaddr(&addr).expect("rebind after drop");
        assert_eq!(again.local_addr().expect("addr").to_string(), addr);
    }
}
