//! External cluster client: issues the deterministic request log against
//! a live `rsoc-serve` cluster, checks digest convergence, and shuts the
//! cluster down.
//!
//! ```text
//! rsoc-client --protocol pbft --f 1 --seed 42 --clients 4 --requests 60 \
//!     --addrs 127.0.0.1:4000,127.0.0.1:4001,127.0.0.1:4002,127.0.0.1:4003 \
//!     --expect-digest <hex from a simulator run of the same log>
//! ```
//!
//! On success prints a `LATENCY p50_us=<n> p99_us=<n> p999_us=<n>
//! max_us=<n> samples=<n>` line (wall-clock request latency percentiles,
//! read from the same log-bucketed histogram the simulator's open-loop
//! plane records in virtual cycles) followed by `CLIENT_DONE
//! committed=<n> digest=<hex> retransmits=<n>`; any quorum failure,
//! divergence, or digest mismatch exits nonzero.

use rsoc_transport::run::{digest_hex, parse_digest_hex, Protocol};
use rsoc_transport::ClientConfig;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rsoc-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut protocol = Protocol::Pbft;
    let mut f = 1u32;
    let mut seed = 42u64;
    let mut clients = 2u32;
    let mut requests = 10u64;
    let mut payload = 64usize;
    let mut addrs: Vec<String> = Vec::new();
    let mut expect_digest: Option<[u8; 32]> = None;
    let mut op_timeout_ms = 2_000u64;
    let mut settle_timeout_ms = 30_000u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--protocol" => {
                let v = value("--protocol")?;
                protocol = Protocol::parse(v).ok_or_else(|| format!("unknown protocol {v:?}"))?;
            }
            "--f" => f = parse(value("--f")?, "--f")?,
            "--seed" => seed = parse(value("--seed")?, "--seed")?,
            "--clients" => clients = parse(value("--clients")?, "--clients")?,
            "--requests" => requests = parse(value("--requests")?, "--requests")?,
            "--payload" => payload = parse(value("--payload")?, "--payload")?,
            "--addrs" => {
                addrs = value("--addrs")?.split(',').map(str::to_string).collect();
            }
            "--expect-digest" => {
                let v = value("--expect-digest")?;
                expect_digest =
                    Some(parse_digest_hex(v).ok_or_else(|| format!("bad digest hex {v:?}"))?);
            }
            "--op-timeout-ms" => {
                op_timeout_ms = parse(value("--op-timeout-ms")?, "--op-timeout-ms")?
            }
            "--settle-timeout-ms" => {
                settle_timeout_ms = parse(value("--settle-timeout-ms")?, "--settle-timeout-ms")?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let n = protocol.cluster_size(f) as usize;
    if addrs.len() != n {
        return Err(format!(
            "--addrs has {} entries, {} cluster needs {n}",
            addrs.len(),
            protocol.name()
        ));
    }

    let config = ClientConfig {
        addrs,
        clients,
        requests_per_client: requests,
        payload_size: payload,
        seed,
        quorum: protocol.reply_quorum(f),
        op_timeout: Duration::from_millis(op_timeout_ms),
        max_retries: 10,
        settle_timeout: Duration::from_millis(settle_timeout_ms),
    };
    let report = protocol.client(&config).map_err(|e| format!("cluster run: {e}"))?;
    if let Some(expected) = expect_digest {
        if report.digest != expected {
            return Err(format!(
                "digest mismatch: cluster {}, expected {}",
                digest_hex(&report.digest),
                digest_hex(&expected)
            ));
        }
    }
    println!(
        "LATENCY p50_us={} p99_us={} p999_us={} max_us={} samples={}",
        report.latency.p50_us,
        report.latency.p99_us,
        report.latency.p999_us,
        report.latency.max_us,
        report.latency_hist.count()
    );
    println!(
        "CLIENT_DONE committed={} digest={} retransmits={}",
        report.committed,
        digest_hex(&report.digest),
        report.retransmits
    );
    Ok(())
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: cannot parse {v:?}"))
}
