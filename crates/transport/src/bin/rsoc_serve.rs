//! One replica of a real-TCP cluster.
//!
//! Two-phase ephemeral-port rendezvous (no fixed ports, so parallel CI
//! runs never collide):
//!
//! 1. the process binds `127.0.0.1:0`, prints `LISTENING <addr>` on
//!    stdout, and waits;
//! 2. the launcher collects every replica's address and writes one
//!    `PEERS <addr0> <addr1> ...` line to each process's stdin;
//! 3. the serve loop runs until a client sends `Shutdown`, then the
//!    process prints `DONE replica=<id> committed=<n> digest=<hex>`
//!    (preceded by a `RECOVERED installed=<seq> replayed=<n>
//!    committed=<n>` line when `--data-dir` replayed prior state).
//!
//! ```text
//! rsoc-serve --protocol pbft --id 0 --f 1 --seed 42
//! ```
//!
//! `--data-dir DIR` makes the replica durable (WAL + snapshots via
//! `rsoc_store`, persisted before acks). `--listen ADDR` binds a fixed
//! address with `SO_REUSEADDR` instead of an ephemeral port — a
//! restarted replica reclaims the address its peers already hold.

use rsoc_bft::runner::RunConfig;
use rsoc_transport::run::{digest_hex, Protocol};
use rsoc_transport::{bind_reuseaddr, WallClock};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rsoc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut protocol = Protocol::Pbft;
    let mut id = 0u32;
    let mut f = 1u32;
    let mut seed = 42u64;
    let mut cycle_ns = WallClock::DEFAULT_CYCLE_NS;
    let mut checkpoint_interval = 0u64;
    let mut data_dir: Option<PathBuf> = None;
    let mut listen: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--protocol" => {
                let v = value("--protocol")?;
                protocol = Protocol::parse(v).ok_or_else(|| format!("unknown protocol {v:?}"))?;
            }
            "--id" => id = parse(value("--id")?, "--id")?,
            "--f" => f = parse(value("--f")?, "--f")?,
            "--seed" => seed = parse(value("--seed")?, "--seed")?,
            "--cycle-ns" => cycle_ns = parse(value("--cycle-ns")?, "--cycle-ns")?,
            "--checkpoint-interval" => {
                checkpoint_interval =
                    parse(value("--checkpoint-interval")?, "--checkpoint-interval")?;
            }
            "--data-dir" => data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--listen" => listen = Some(value("--listen")?.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let n = protocol.cluster_size(f);
    if id >= n {
        return Err(format!("--id {id} out of range for n={n}"));
    }

    // A restarted replica rebinds its advertised address (through
    // TIME_WAIT, hence SO_REUSEADDR); a fresh one takes an ephemeral
    // port for collision-free parallel runs.
    let listener = match &listen {
        Some(addr) => bind_reuseaddr(addr).map_err(|e| format!("bind {addr}: {e}"))?,
        None => TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind 127.0.0.1:0: {e}"))?,
    };
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    println!("LISTENING {addr}");
    std::io::stdout().flush().ok();

    let peers = read_peers(n as usize)?;

    let config =
        RunConfig::builder().f(f).seed(seed).checkpoint_interval(checkpoint_interval).build();
    let clock = WallClock::new(cycle_ns);
    let (report, recovery) = protocol
        .serve(id, &config, listener, peers, clock, data_dir.as_deref())
        .map_err(|e| format!("serve: {e}"))?;
    if let Some(r) = recovery {
        println!(
            "RECOVERED installed={} replayed={} committed={}",
            r.installed_seq, r.replayed, r.committed
        );
    }
    println!(
        "DONE replica={} committed={} digest={}",
        report.replica,
        report.committed,
        digest_hex(&report.digest)
    );
    Ok(())
}

/// Reads the `PEERS <addr> ...` rendezvous line from stdin.
fn read_peers(n: usize) -> Result<Vec<String>, String> {
    let stdin = std::io::stdin();
    let mut line = String::new();
    stdin.lock().read_line(&mut line).map_err(|e| format!("reading PEERS line from stdin: {e}"))?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some("PEERS") {
        return Err(format!("expected 'PEERS <addr> ...' on stdin, got {line:?}"));
    }
    let peers: Vec<String> = parts.map(str::to_string).collect();
    if peers.len() != n {
        return Err(format!("PEERS line has {} addresses, cluster needs {n}", peers.len()));
    }
    Ok(peers)
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: cannot parse {v:?}"))
}
