//! # rsoc-transport — the real-transport plane for the sans-io core
//!
//! The protocol crates ([`rsoc_bft`]) are sans-io: a node consumes
//! [`Input`](rsoc_bft::api::Input)s and emits into an
//! [`Outbox`](rsoc_bft::api::Outbox); a *plane* owns delivery, timers,
//! and time behind the [`Transport`](rsoc_bft::plane::Transport) /
//! [`Clock`](rsoc_bft::plane::Clock) boundary. The deterministic
//! simulator is the first plane; this crate is the second — the same
//! protocol bytes over real TCP:
//!
//! * [`frame`] — length-framed codec (`u32` LE length + versioned body),
//!   total against malformed input;
//! * [`wire`] — the [`wire::Envelope`] that crosses a
//!   connection: hello handshakes, protocol messages, digest queries;
//! * [`clock`] — [`clock::WallClock`], mapping wall time onto
//!   the protocols' virtual-cycle timeline;
//! * [`pool`] — outbound connections with reconnect and backoff;
//! * [`listen`] — `SO_REUSEADDR` binding so a restarted replica
//!   reclaims its advertised address through `TIME_WAIT`;
//! * [`node`] — the threaded serve loop and [`node::TcpPlane`], the
//!   `Transport` implementation — durable when given an `rsoc_store`
//!   data directory (persist before dispatch);
//! * [`client`] — the external cluster client issuing the simulator's
//!   exact request log and checking digest convergence;
//! * [`run`] — protocol selection shared by the `rsoc-serve` /
//!   `rsoc-client` binaries and the in-process smoke test.
//!
//! Because both planes share one codec ([`rsoc_bft::codec`]) and one
//! workload ([`rsoc_bft::runner::client_payload`]), a TCP cluster run
//! and a simulator run with the same parameters commit the same
//! operations and converge to the same state digest — the smoke driver
//! asserts exactly that.

pub mod client;
pub mod clock;
pub mod frame;
pub mod listen;
pub mod node;
pub mod pool;
pub mod run;
pub mod wire;

pub use client::{run_cluster_client, ClientConfig, ClientReport, LatencySummary};
pub use clock::WallClock;
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use listen::bind_reuseaddr;
pub use node::{serve, ServeReport, TcpPlane};
pub use pool::PeerPool;
pub use run::Protocol;
pub use wire::{decode_envelope, encode_envelope, Envelope};
