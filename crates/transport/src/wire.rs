//! The transport-plane envelope: what actually crosses a TCP connection.
//!
//! Protocol messages are wrapped in an [`Envelope`] that adds the plane's
//! own concerns — who is speaking (hello handshakes), where a protocol
//! message came from, and the out-of-band digest/shutdown channel the
//! cluster client uses to check convergence. The envelope body is encoded
//! with the same versioned [`Wire`] codec as every protocol message, so
//! one `decode_frame` call validates the whole thing.

use rsoc_bft::api::Endpoint;
use rsoc_bft::codec::{decode_frame, encode_frame, Reader, Wire};

/// One transport-plane frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope<M> {
    /// First frame on a replica→replica connection: the dialer's id.
    HelloReplica(u32),
    /// First frame on a client-process connection: every client id the
    /// process will issue requests for. Replies to those ids route back
    /// over this connection.
    HelloClient {
        /// Client ids owned by the connecting process.
        ids: Vec<u32>,
    },
    /// A protocol message, tagged with its sender endpoint.
    Msg {
        /// Sending endpoint (replica or client).
        from: Endpoint,
        /// The protocol message.
        msg: M,
    },
    /// Client → replica: report your committed count and state digest.
    DigestQuery,
    /// Replica → client: the answer to a [`Envelope::DigestQuery`].
    DigestReply {
        /// Responding replica id.
        replica: u32,
        /// Total committed operations.
        committed: u64,
        /// SHA-256 state-machine digest.
        digest: [u8; 32],
    },
    /// Client → replica: the run is over; exit the serve loop.
    Shutdown,
}

/// Encodes an envelope into a versioned frame body (ready for
/// [`crate::frame::write_frame`]).
pub fn encode_envelope<M: Wire>(env: &Envelope<M>) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame(env, &mut buf);
    buf
}

/// Decodes a versioned frame body into an envelope. Total: `None` on any
/// malformed input.
pub fn decode_envelope<M: Wire>(body: &[u8]) -> Option<Envelope<M>> {
    decode_frame(body)
}

// Envelopes are decoded straight off the network; the decode path must
// reject malformed input without panicking.
// lint: ingress
impl<M: Wire> Wire for Envelope<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Envelope::HelloReplica(id) => {
                buf.push(0);
                id.encode(buf);
            }
            Envelope::HelloClient { ids } => {
                buf.push(1);
                ids.encode(buf);
            }
            Envelope::Msg { from, msg } => {
                buf.push(2);
                from.encode(buf);
                msg.encode(buf);
            }
            Envelope::DigestQuery => buf.push(3),
            Envelope::DigestReply { replica, committed, digest } => {
                buf.push(4);
                replica.encode(buf);
                committed.encode(buf);
                digest.encode(buf);
            }
            Envelope::Shutdown => buf.push(5),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => Envelope::HelloReplica(u32::decode(r)?),
            1 => Envelope::HelloClient { ids: Vec::<u32>::decode(r)? },
            2 => Envelope::Msg { from: Endpoint::decode(r)?, msg: M::decode(r)? },
            3 => Envelope::DigestQuery,
            4 => Envelope::DigestReply {
                replica: u32::decode(r)?,
                committed: u64::decode(r)?,
                digest: <[u8; 32]>::decode(r)?,
            },
            5 => Envelope::Shutdown,
            _ => return None,
        })
    }
}
// lint: end

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsoc_bft::api::ReplicaId;
    use rsoc_bft::pbft::PbftMsg;
    use std::sync::Arc;

    fn roundtrip(env: &Envelope<PbftMsg>) {
        let body = encode_envelope(env);
        let back: Envelope<PbftMsg> = decode_envelope(&body).expect("round trip");
        assert_eq!(&back, env);
        // Every strict prefix must be rejected, not mis-decoded.
        for cut in 0..body.len() {
            assert!(decode_envelope::<PbftMsg>(&body[..cut]).is_none(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn envelope_variants_round_trip() {
        roundtrip(&Envelope::HelloReplica(3));
        roundtrip(&Envelope::HelloClient { ids: vec![0, 1, 2, 3] });
        roundtrip(&Envelope::Msg {
            from: Endpoint::Replica(ReplicaId(1)),
            msg: PbftMsg::Request(Arc::new(rsoc_bft::Request {
                op: rsoc_bft::OpId { client: rsoc_bft::ClientId(7), seq: 9 },
                payload: b"SET k v".to_vec(),
            })),
        });
        roundtrip(&Envelope::DigestQuery);
        roundtrip(&Envelope::DigestReply { replica: 2, committed: 240, digest: [0x5A; 32] });
        roundtrip(&Envelope::Shutdown);
    }

    #[test]
    fn unknown_discriminant_is_rejected() {
        let mut body = encode_envelope::<PbftMsg>(&Envelope::DigestQuery);
        *body.last_mut().unwrap() = 6; // past the last variant tag
        assert!(decode_envelope::<PbftMsg>(&body).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Garbage bodies never panic the decoder.
        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_envelope::<PbftMsg>(&bytes);
        }
    }
}
