//! The replica side of the real-transport plane: a threaded TCP serve
//! loop driving one sans-io protocol node.
//!
//! Thread layout per replica process:
//!
//! * an **acceptor** thread takes inbound connections (peers and client
//!   processes) and spawns a **reader** thread per connection;
//! * readers decode length-framed envelopes and funnel them into one
//!   mpsc channel — the node loop's single ingress;
//! * the **node loop** (the caller's thread) owns the protocol node and
//!   a [`TcpPlane`], popping due timers and delivering network events
//!   through `step_durable` — the simulator's clear/deliver/dispatch
//!   choreography (see [`step_node`](rsoc_bft::plane::step_node)) with a
//!   persistence step spliced between deliver and dispatch;
//! * a [`PeerPool`] writer thread per peer owns outbound delivery with
//!   reconnect and backoff; client-facing writers are spawned per
//!   client connection.
//!
//! The node loop never touches a socket: protocol code stays sans-io,
//! and every byte entering it went through the total frame + envelope
//! decoders.

use crate::clock::WallClock;
use crate::frame::{read_frame, write_frame};
use crate::pool::PeerPool;
use crate::wire::{decode_envelope, encode_envelope, Envelope};
use rsoc_bft::api::{Endpoint, Input, Outbox, ReplicaId, ReplicaNode};
use rsoc_bft::codec::Wire;
use rsoc_bft::durable::DurableEvent;
use rsoc_bft::plane::{Clock, Transport};
use rsoc_store::DataDir;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::thread;
use std::time::Duration;

/// Queued reply frames per client connection before sends shed.
const CLIENT_QUEUE_DEPTH: usize = 1024;
/// Idle wait when no timer is armed (keeps the loop responsive to a
/// disconnected channel without spinning).
const IDLE_WAIT: Duration = Duration::from_millis(25);

/// One event entering the node loop from the network threads.
enum NetEvent<M> {
    /// A protocol message (from a peer replica or a client process).
    Deliver { from: Endpoint, msg: M },
    /// A client connection announced the ids it owns; replies to them
    /// route over `tx`.
    RegisterClients { ids: Vec<u32>, tx: SyncSender<Vec<u8>> },
    /// A client connection asked for the replica's digest.
    Query { tx: SyncSender<Vec<u8>> },
    /// A client connection ended the run.
    Shutdown,
}

/// The real-transport implementation of the sans-io [`Transport`]
/// boundary: peers over the [`PeerPool`], clients over their registered
/// connection writers, timers in a local heap the serve loop pops.
pub struct TcpPlane<M> {
    me: ReplicaId,
    pool: PeerPool,
    clients: HashMap<u32, SyncSender<Vec<u8>>>,
    timers: BinaryHeap<Reverse<(u64, u32, u64)>>,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M: Wire> TcpPlane<M> {
    /// Builds the plane over an already-connected pool.
    pub fn new(me: ReplicaId, pool: PeerPool) -> Self {
        TcpPlane {
            me,
            pool,
            clients: HashMap::new(),
            timers: BinaryHeap::new(),
            _msg: std::marker::PhantomData,
        }
    }

    /// Routes replies for `ids` over `tx` (last registration wins — a
    /// reconnecting client process re-announces its ids).
    fn register_clients(&mut self, ids: Vec<u32>, tx: SyncSender<Vec<u8>>) {
        for id in ids {
            self.clients.insert(id, tx.clone());
        }
    }

    /// Earliest armed timer deadline, in cycles.
    fn next_timer(&self) -> Option<u64> {
        self.timers.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pops the earliest timer if it is due at `now`.
    fn pop_due_timer(&mut self, now: u64) -> Option<(u32, u64)> {
        match self.timers.peek() {
            Some(Reverse((at, _, _))) if *at <= now => {
                self.timers.pop().map(|Reverse((_, kind, token))| (kind, token))
            }
            _ => None,
        }
    }
}

impl<M: Wire> Transport<M> for TcpPlane<M> {
    fn dispatch(&mut self, from: ReplicaId, out: &mut Outbox<M>, now: u64) {
        for (to, msg) in out.msgs.drain(..) {
            let body = encode_envelope(&Envelope::Msg { from: Endpoint::Replica(from), msg });
            match to {
                Endpoint::Replica(r) => {
                    if r != self.me {
                        self.pool.send(r.0 as usize, body);
                    }
                }
                Endpoint::Client(c) => {
                    if let Some(tx) = self.clients.get(&c.0) {
                        // Shedding is safe: clients retransmit on timeout.
                        let _ = tx.try_send(body);
                    }
                }
            }
        }
        for (delay, kind, token) in out.timers.drain(..) {
            self.timers.push(Reverse((now.saturating_add(delay), kind, token)));
        }
    }
}

/// What the serve loop reports after a clean shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// The replica that served.
    pub replica: u32,
    /// Total committed operations at shutdown.
    pub committed: u64,
    /// SHA-256 state-machine digest at shutdown.
    pub digest: [u8; 32],
}

/// One serve-loop step under the durability choreography: deliver the
/// input, persist every event the core marked durable, *then* dispatch
/// the outbox — no execution ack leaves the replica before the commit it
/// acknowledges is on disk. With no store this is exactly
/// [`step_node`](rsoc_bft::plane::step_node); a persist failure aborts
/// the serve loop (fail-stop beats acking unpersisted state).
fn step_durable<N>(
    node: &mut N,
    input: Input<N::Msg>,
    now: u64,
    out: &mut Outbox<N::Msg>,
    plane: &mut TcpPlane<N::Msg>,
    store: &mut Option<DataDir>,
    events: &mut Vec<DurableEvent>,
) -> io::Result<()>
where
    N: ReplicaNode,
    N::Msg: Wire,
{
    out.clear();
    node.on_input(input, now, out);
    if let Some(store) = store.as_mut() {
        events.clear();
        node.drain_durable(events);
        if !events.is_empty() {
            store.persist(events)?;
        }
    }
    plane.dispatch(node.id(), out, now);
    Ok(())
}

/// Runs one protocol node against real TCP until a client sends
/// [`Envelope::Shutdown`].
///
/// `listener` must already be bound (the caller advertises its address);
/// `peer_addrs[i]` is replica `i`'s listen address — the entry at the
/// node's own index is ignored. The caller's thread becomes the node
/// loop.
///
/// With a `store`, the node runs durable: the caller has already
/// replayed the store's [`RecoveredState`](rsoc_bft::durable) into the
/// node, and every step persists before it dispatches.
pub fn serve<N>(
    mut node: N,
    listener: TcpListener,
    mut peer_addrs: Vec<String>,
    clock: WallClock,
    mut store: Option<DataDir>,
) -> io::Result<ServeReport>
where
    N: ReplicaNode,
    N::Msg: Wire + Send + 'static,
{
    if store.is_some() {
        node.enable_durability();
    }
    let mut events: Vec<DurableEvent> = Vec::new();
    let me = node.id();
    // Never dial ourselves: inbound handles everything addressed to us,
    // and the protocols never self-send anyway.
    if let Some(own) = peer_addrs.get_mut(me.0 as usize) {
        own.clear();
    }
    let hello = encode_envelope::<N::Msg>(&Envelope::HelloReplica(me.0));
    let pool = PeerPool::connect(peer_addrs, hello);
    let mut plane: TcpPlane<N::Msg> = TcpPlane::new(me, pool);

    let (tx, rx) = channel::<NetEvent<N::Msg>>();
    spawn_acceptor::<N::Msg>(listener, tx);

    let mut out: Outbox<N::Msg> = Outbox::new();
    loop {
        // Fire everything due before blocking again.
        let now = clock.now();
        while let Some((kind, token)) = plane.pop_due_timer(now) {
            step_durable(
                &mut node,
                Input::Timer { kind, token },
                clock.now(),
                &mut out,
                &mut plane,
                &mut store,
                &mut events,
            )?;
        }
        let wait = match plane.next_timer() {
            Some(at) => clock.cycles_to_duration(at.saturating_sub(clock.now())).min(IDLE_WAIT),
            None => IDLE_WAIT,
        };
        match rx.recv_timeout(wait) {
            Ok(NetEvent::Deliver { from, msg }) => {
                step_durable(
                    &mut node,
                    Input::Message { from, msg },
                    clock.now(),
                    &mut out,
                    &mut plane,
                    &mut store,
                    &mut events,
                )?;
            }
            Ok(NetEvent::RegisterClients { ids, tx }) => plane.register_clients(ids, tx),
            Ok(NetEvent::Query { tx }) => {
                let reply = Envelope::<N::Msg>::DigestReply {
                    replica: me.0,
                    committed: node.committed_seq(),
                    digest: node.state_digest(),
                };
                let _ = tx.try_send(encode_envelope(&reply));
            }
            Ok(NetEvent::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    Ok(ServeReport { replica: me.0, committed: node.committed_seq(), digest: node.state_digest() })
}

/// Accepts inbound connections forever, one reader thread each. The
/// thread parks on `accept` and dies with the process (or when the
/// listener is closed by the OS); readers outlive a finished serve loop
/// harmlessly — their sends fail and they exit.
fn spawn_acceptor<M: Wire + Send + 'static>(listener: TcpListener, tx: Sender<NetEvent<M>>) {
    thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let _ = stream.set_nodelay(true);
            let tx = tx.clone();
            thread::spawn(move || reader_loop::<M>(stream, &tx));
        }
    });
}

/// Reads frames off one inbound connection until EOF or error.
///
/// The first frame must be a hello; it decides whether the connection is
/// a peer replica (messages only) or a client process (messages, digest
/// queries, shutdown — with a writer half for replies). Malformed bodies
/// are skipped: framing stays intact, so one bad body never desyncs the
/// stream.
fn reader_loop<M: Wire + Send>(mut stream: TcpStream, tx: &Sender<NetEvent<M>>) {
    let Ok(Some(first)) = read_frame(&mut stream) else { return };
    match decode_envelope::<M>(&first) {
        Some(Envelope::HelloReplica(_)) => {
            while let Ok(Some(body)) = read_frame(&mut stream) {
                if let Some(Envelope::Msg { from, msg }) = decode_envelope::<M>(&body) {
                    if tx.send(NetEvent::Deliver { from, msg }).is_err() {
                        return;
                    }
                }
            }
        }
        Some(Envelope::HelloClient { ids }) => {
            let Ok(write_half) = stream.try_clone() else { return };
            let (wtx, wrx) = sync_channel::<Vec<u8>>(CLIENT_QUEUE_DEPTH);
            thread::spawn(move || client_writer_loop(write_half, &wrx));
            if tx.send(NetEvent::RegisterClients { ids, tx: wtx.clone() }).is_err() {
                return;
            }
            while let Ok(Some(body)) = read_frame(&mut stream) {
                let event = match decode_envelope::<M>(&body) {
                    Some(Envelope::Msg { from, msg }) => NetEvent::Deliver { from, msg },
                    Some(Envelope::DigestQuery) => NetEvent::Query { tx: wtx.clone() },
                    Some(Envelope::Shutdown) => {
                        let _ = tx.send(NetEvent::Shutdown);
                        return;
                    }
                    _ => continue,
                };
                if tx.send(event).is_err() {
                    return;
                }
            }
        }
        _ => {} // not a hello: drop the connection
    }
}

/// Writes queued reply frames to one client connection until it dies or
/// the queue's senders are gone.
fn client_writer_loop(mut stream: TcpStream, rx: &Receiver<Vec<u8>>) {
    while let Ok(body) = rx.recv() {
        if write_frame(&mut stream, &body).is_err() {
            return;
        }
    }
}
