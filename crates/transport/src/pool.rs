//! Outbound connection pool: one writer thread per peer, with
//! dial-retry, reconnect, and exponential backoff.
//!
//! The protocol core assumes fair-lossy links (it retransmits and
//! gap-fills above them), so the pool is allowed to *drop* under
//! pressure: sends go through a bounded queue and a full queue sheds the
//! newest frame rather than blocking the node loop. What the pool must
//! never do is wedge — a dead peer costs its dialer nothing but a
//! background thread in a backoff loop.

use crate::frame::write_frame;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Frames queued per peer before sends shed (the protocols retransmit).
const QUEUE_DEPTH: usize = 1024;
/// First reconnect delay; doubles per failure up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(100);
/// Reconnect delay ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// One peer's outbound half.
struct Peer {
    tx: SyncSender<Vec<u8>>,
    dropped: Arc<AtomicU64>,
}

/// Outbound frames to a fixed set of peers (index = replica id).
pub struct PeerPool {
    peers: Vec<Peer>,
}

impl PeerPool {
    /// Spawns one writer thread per address. `hello` is re-sent first
    /// after every (re)connect so the peer can re-identify the dialer.
    /// Dialing happens in the background: construction never blocks on a
    /// peer that is still starting up.
    pub fn connect(addrs: Vec<String>, hello: Vec<u8>) -> Self {
        let peers = addrs
            .into_iter()
            .map(|addr| {
                let (tx, rx) = sync_channel::<Vec<u8>>(QUEUE_DEPTH);
                let dropped = Arc::new(AtomicU64::new(0));
                let hello = hello.clone();
                thread::spawn(move || writer_loop(&addr, &hello, &rx));
                Peer { tx, dropped }
            })
            .collect();
        PeerPool { peers }
    }

    /// Queues one frame to `peer`. A full or disconnected queue sheds the
    /// frame (counted, not fatal): the protocol layer owns reliability.
    pub fn send(&self, peer: usize, body: Vec<u8>) {
        let Some(p) = self.peers.get(peer) else { return };
        match p.tx.try_send(body) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                p.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Frames shed for `peer` so far (observability for the smoke driver).
    pub fn dropped(&self, peer: usize) -> u64 {
        self.peers.get(peer).map(|p| p.dropped.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Number of peers the pool was built over.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the pool has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }
}

/// Dial → hello → drain queue; on any I/O error, back off and redial.
/// Exits when the pool (all senders) is dropped and the queue is drained.
fn writer_loop(addr: &str, hello: &[u8], rx: &Receiver<Vec<u8>>) {
    let mut backoff = BACKOFF_START;
    loop {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            // The peer may simply not be listening yet (cluster start is
            // unordered); keep frames queued and retry.
            thread::sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_CAP);
            continue;
        };
        let _ = stream.set_nodelay(true);
        backoff = BACKOFF_START;
        if write_frame(&mut stream, hello).is_err() {
            continue; // handshake failed: redial
        }
        loop {
            // Blocking recv: the writer sleeps until the node has output.
            let Ok(body) = rx.recv() else {
                let _ = stream.flush();
                return; // pool dropped: clean exit
            };
            if write_frame(&mut stream, &body).is_err() {
                // The frame is lost (fair-lossy link); reconnect for the
                // next one.
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frame;
    use std::net::TcpListener;

    #[test]
    fn delivers_hello_then_frames_in_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let pool = PeerPool::connect(vec![addr], b"hello".to_vec());
        pool.send(0, b"one".to_vec());
        pool.send(0, b"two".to_vec());
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"two");
        drop(pool);
        assert!(read_frame(&mut conn).unwrap().is_none(), "writer exits cleanly");
    }

    #[test]
    fn connects_after_listener_appears() {
        // Reserve a port, free it, and only re-bind after the pool has
        // started dialing: the backoff loop must pick the listener up.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let pool = PeerPool::connect(vec![addr.clone()], b"hi".to_vec());
        pool.send(0, b"late".to_vec());
        std::thread::sleep(Duration::from_millis(150));
        let listener = TcpListener::bind(&addr).expect("port free for re-bind");
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"hi");
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"late");
    }

    #[test]
    fn out_of_range_and_dead_peers_never_block() {
        let pool = PeerPool::connect(vec!["127.0.0.1:1".to_string()], Vec::new());
        pool.send(5, b"nobody home".to_vec()); // out of range: no-op
        for _ in 0..(QUEUE_DEPTH + 10) {
            pool.send(0, vec![0u8; 8]); // dead peer: queue fills, then sheds
        }
        assert!(pool.dropped(0) >= 10);
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
    }
}
