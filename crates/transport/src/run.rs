//! Protocol selection for the cluster binaries and smoke tests.
//!
//! `rsoc-serve` and `rsoc-client` are protocol-generic; this module
//! folds the concrete cluster types ([`PbftCluster`], [`MinBftCluster`])
//! behind one [`Protocol`] switch so both binaries — and the in-process
//! smoke test — share construction, quorum math, and the
//! serve/client entry points.

use crate::client::{run_cluster_client, ClientConfig, ClientReport};
use crate::clock::WallClock;
use crate::node::{serve, ServeReport};
use rsoc_bft::api::{Cluster, ReplicaNode};
use rsoc_bft::codec::Wire;
use rsoc_bft::durable::RecoveryReport;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::RunConfig;
use rsoc_store::DataDir;
use std::io;
use std::net::TcpListener;
use std::path::Path;

/// Which protocol a cluster speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// PBFT: `3f+1` replicas.
    Pbft,
    /// MinBFT: `2f+1` replicas (USIG-anchored).
    MinBft,
}

impl Protocol {
    /// Parses the `--protocol` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pbft" => Some(Protocol::Pbft),
            "minbft" => Some(Protocol::MinBft),
            _ => None,
        }
    }

    /// Cluster size for fault threshold `f`.
    pub fn cluster_size(self, f: u32) -> u32 {
        match self {
            Protocol::Pbft => 3 * f + 1,
            Protocol::MinBft => 2 * f + 1,
        }
    }

    /// Client reply quorum for fault threshold `f` (both protocols:
    /// `f+1` matching replies).
    pub fn reply_quorum(self, f: u32) -> usize {
        (f + 1) as usize
    }

    /// Flag value for spawning the twin process.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Pbft => "pbft",
            Protocol::MinBft => "minbft",
        }
    }

    /// Runs replica `id`'s serve loop. Every process constructs the same
    /// cluster from the shared deterministic `config` (key provisioning
    /// is a pure function of the seed) and extracts its own node.
    ///
    /// With a `data_dir`, the node first replays whatever the store
    /// recovered from a previous incarnation (the returned
    /// [`RecoveryReport`] says how much), then serves durably: commits
    /// and stable checkpoints hit disk before their acks leave.
    pub fn serve(
        self,
        id: u32,
        config: &RunConfig,
        listener: TcpListener,
        peer_addrs: Vec<String>,
        clock: WallClock,
        data_dir: Option<&Path>,
    ) -> io::Result<(ServeReport, Option<RecoveryReport>)> {
        match self {
            Protocol::Pbft => {
                let nodes = PbftCluster::new(config).into_nodes();
                serve_node(nodes, id, listener, peer_addrs, clock, data_dir)
            }
            Protocol::MinBft => {
                let nodes = MinBftCluster::new(config).into_nodes();
                serve_node(nodes, id, listener, peer_addrs, clock, data_dir)
            }
        }
    }

    /// Runs the external cluster client against a live cluster.
    pub fn client(self, config: &ClientConfig) -> io::Result<ClientReport> {
        match self {
            Protocol::Pbft => run_cluster_client::<<PbftCluster as Cluster>::Node>(config),
            Protocol::MinBft => run_cluster_client::<<MinBftCluster as Cluster>::Node>(config),
        }
    }
}

/// Extracts node `id`, runs recovery against `data_dir` if given, and
/// enters the serve loop.
fn serve_node<N>(
    mut nodes: Vec<N>,
    id: u32,
    listener: TcpListener,
    peer_addrs: Vec<String>,
    clock: WallClock,
    data_dir: Option<&Path>,
) -> io::Result<(ServeReport, Option<RecoveryReport>)>
where
    N: ReplicaNode,
    N::Msg: Wire + Send + 'static,
{
    if (id as usize) >= nodes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("replica id {id} out of range for n={}", nodes.len()),
        ));
    }
    let mut node = nodes.swap_remove(id as usize);
    let (store, recovery) = match data_dir {
        Some(dir) => {
            let (store, state) = DataDir::open(dir)?;
            let report = node.recover(state);
            (Some(store), Some(report))
        }
        None => (None, None),
    };
    let report = serve(node, listener, peer_addrs, clock, store)?;
    Ok((report, recovery))
}

/// Lowercase hex of a digest (for the binaries' line protocol).
pub fn digest_hex(digest: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parses a 64-char lowercase/uppercase hex digest.
pub fn parse_digest_hex(s: &str) -> Option<[u8; 32]> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        out[i] = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_sizes() {
        assert_eq!(Protocol::parse("pbft"), Some(Protocol::Pbft));
        assert_eq!(Protocol::parse("minbft"), Some(Protocol::MinBft));
        assert_eq!(Protocol::parse("raft"), None);
        assert_eq!(Protocol::Pbft.cluster_size(1), 4);
        assert_eq!(Protocol::MinBft.cluster_size(1), 3);
        assert_eq!(Protocol::Pbft.reply_quorum(1), 2);
        assert_eq!(Protocol::Pbft.name(), "pbft");
        assert_eq!(Protocol::MinBft.name(), "minbft");
    }

    #[test]
    fn digest_hex_round_trips() {
        let mut d = [0u8; 32];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let s = digest_hex(&d);
        assert_eq!(s.len(), 64);
        assert_eq!(parse_digest_hex(&s), Some(d));
        assert_eq!(parse_digest_hex("zz"), None);
        assert_eq!(parse_digest_hex(&s[..62]), None);
    }
}
