//! In-process cluster smoke: real sockets, real threads, one process.
//!
//! Each replica's serve loop runs on its own thread against an ephemeral
//! localhost port; the cluster client runs on the test thread. The final
//! digest every replica converges to must equal the digest a
//! *simulator* run of the same request log produces — the two-planes,
//! one-core property the sans-io split exists for.

use rsoc_bft::api::Cluster;
use rsoc_bft::runner::{run, RunConfig};
use rsoc_transport::run::Protocol;
use rsoc_transport::{ClientConfig, WallClock};
use std::net::TcpListener;
use std::thread;
use std::time::Duration;

const SEED: u64 = 42;
const CLIENTS: u32 = 2;
const REQUESTS: u64 = 5;
const PAYLOAD: usize = 48;

/// Digest from a deterministic-simulator run of the identical workload.
fn simulator_digest(protocol: Protocol, f: u32) -> [u8; 32] {
    let config = RunConfig::builder()
        .f(f)
        .clients(CLIENTS)
        .requests_per_client(REQUESTS)
        .payload_size(PAYLOAD)
        .seed(SEED)
        .build();
    match protocol {
        Protocol::Pbft => {
            let mut cluster = rsoc_bft::pbft::PbftCluster::new(&config);
            let r = run(&mut cluster, &config);
            assert!(r.safety_ok);
            assert_eq!(r.committed, u64::from(CLIENTS) * REQUESTS);
            cluster.nodes()[0].state_digest()
        }
        Protocol::MinBft => {
            let mut cluster = rsoc_bft::minbft::MinBftCluster::new(&config);
            let r = run(&mut cluster, &config);
            assert!(r.safety_ok);
            assert_eq!(r.committed, u64::from(CLIENTS) * REQUESTS);
            cluster.nodes()[0].state_digest()
        }
    }
}

fn smoke(protocol: Protocol) {
    let f = 1u32;
    let n = protocol.cluster_size(f) as usize;

    // Bind every listener first so the peer address list is complete
    // before any serve loop starts.
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();

    let config = RunConfig::builder().f(f).seed(SEED).build();
    let mut replicas = Vec::new();
    for (id, listener) in listeners.into_iter().enumerate() {
        let peer_addrs = addrs.clone();
        let config = config.clone();
        replicas.push(thread::spawn(move || {
            // 50 µs cycles: timer patience ~75 ms, snappy for a test.
            let clock = WallClock::new(50_000);
            let (report, _) = protocol
                .serve(id as u32, &config, listener, peer_addrs, clock, None)
                .expect("serve");
            report
        }));
    }

    let client_config = ClientConfig {
        addrs,
        clients: CLIENTS,
        requests_per_client: REQUESTS,
        payload_size: PAYLOAD,
        seed: SEED,
        quorum: protocol.reply_quorum(f),
        op_timeout: Duration::from_millis(1_000),
        max_retries: 10,
        settle_timeout: Duration::from_secs(20),
    };
    let report = protocol.client(&client_config).expect("cluster client");
    assert_eq!(report.committed, u64::from(CLIENTS) * REQUESTS);

    // Every replica exits through Shutdown and reports the same digest
    // the client saw.
    for handle in replicas {
        let serve_report = handle.join().expect("replica thread");
        assert_eq!(serve_report.committed, report.committed, "replica under-committed");
        assert_eq!(serve_report.digest, report.digest, "replica digest diverged");
    }

    // The two-planes property: the TCP cluster's digest equals the
    // simulator's for the same request log.
    assert_eq!(report.digest, simulator_digest(protocol, f), "plane digests diverged");
}

#[test]
fn pbft_cluster_over_tcp_matches_the_simulator() {
    smoke(Protocol::Pbft);
}

#[test]
fn minbft_cluster_over_tcp_matches_the_simulator() {
    smoke(Protocol::MinBft);
}
