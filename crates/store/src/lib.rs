//! Durable replica state: an append-only write-ahead log plus snapshot
//! files, consumed by the `rsoc_transport` serve loop.
//!
//! The protocol cores are sans-io: they emit
//! [`DurableEvent`]s describing what
//! must survive a crash, and this crate is the only code that turns those
//! into bytes on disk. The layout reuses the
//! [`Wire`] encoding — digesting, socket framing,
//! and disk persistence share one byte layout — wrapped in a CRC-framed
//! record so damage is *detected*, never interpreted:
//!
//! ```text
//! wal-<k>.log    record*            (k = segment index, dense)
//! record         = len:u32 LE | crc32(payload):u32 LE | payload
//! payload        = encode_frame(WalRecord)            (versioned)
//! snap-<seq>.bin = one record whose payload is a SnapshotRecord
//! ```
//!
//! **Crash model.** The store is built for *process* crashes (SIGKILL,
//! panic, OOM-kill) — the fault the paper's rejuvenation cycle induces on
//! purpose. Appends reach the kernel page cache before the serve loop
//! acks, which survives process death without per-record `fsync`;
//! snapshot files, which are allowed to be slow, are written
//! tmp-then-rename with `sync_all`. Power loss can tear the WAL tail —
//! and that is recoverable too: [`DataDir::open`] replays the longest
//! valid record prefix and truncates the rest, because a replica that
//! lost its tail is merely *behind* (collaborative state transfer closes
//! the gap), while a replica that trusts a torn record is *wrong*.
//!
//! **Everything read back is ingress.** Lengths are bounded before
//! allocation, every payload must pass CRC and versioned decode, and the
//! first failure ends replay — later bytes, and later segments, are
//! discarded rather than resynchronized (a heuristic resync could splice
//! histories). The protocol core then re-verifies certificates and batch
//! digests on top; the store's CRC is a torn-write detector, not an
//! authenticator.
//!
//! **Garbage collection.** Each stable checkpoint rolls the WAL to a
//! fresh segment and records the segment that was current when the
//! snapshot was taken as its `wal_start`: commits above the watermark
//! that were appended before the certificate stabilised still replay.
//! Segments below `wal_start` and snapshots below the newest valid one
//! are deleted, so steady state holds one snapshot and at most two
//! segments.

use rsoc_bft::api::Batch;
use rsoc_bft::checkpoint::CheckpointCert;
use rsoc_bft::codec::{decode_frame, encode_frame, Reader, Wire};
use rsoc_bft::durable::{DurableEvent, RecoveredState};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Hard cap on one record's payload, mirroring the socket framing cap:
/// a garbage length field must not drive allocation.
const MAX_RECORD: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) lookup table, built at
/// compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes` — the per-record integrity check. Detects
/// any single-burst error shorter than 32 bits, which covers the torn
/// and bit-flipped tails the chaos harness injects.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One WAL record. The `Wire` impl is the disk layout (inside the
/// versioned frame), so a codec version bump invalidates old WALs
/// explicitly instead of misreading them.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Agreement slot `seq` committed `batch`.
    Commit {
        /// Agreement sequence of the slot.
        seq: u64,
        /// The committed batch.
        batch: Arc<Batch>,
    },
    /// Highest USIG counter issued so far (MinBFT only).
    UsigCounter(u64),
}

impl Wire for WalRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Commit { seq, batch } => {
                0u8.encode(buf);
                seq.encode(buf);
                batch.encode(buf);
            }
            WalRecord::UsigCounter(c) => {
                1u8.encode(buf);
                c.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(WalRecord::Commit { seq: r.u64()?, batch: Arc::<Batch>::decode(r)? }),
            1 => Some(WalRecord::UsigCounter(r.u64()?)),
            _ => None,
        }
    }
}

/// The payload of a snapshot file: the stable certificate, the snapshot
/// it certifies, and the WAL segment replay must start from.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// The stable checkpoint certificate (re-verified by the core on
    /// recovery — the store does not hold MAC keys).
    pub cert: CheckpointCert,
    /// Committed-log length at the certificate watermark.
    pub log_len: u64,
    /// The certified snapshot bytes.
    pub bytes: Vec<u8>,
    /// First WAL segment not fully covered by this snapshot.
    pub wal_start: u64,
}

impl Wire for SnapshotRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.cert.encode(buf);
        self.log_len.encode(buf);
        self.bytes.encode(buf);
        self.wal_start.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(SnapshotRecord {
            cert: CheckpointCert::decode(r)?,
            log_len: r.u64()?,
            bytes: Vec::<u8>::decode(r)?,
            wal_start: r.u64()?,
        })
    }
}

/// Frames `value` as one on-disk record: `len | crc | payload`.
fn frame_record<T: Wire>(value: &T, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    encode_frame(value, &mut payload);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Parses the record at `bytes[off..]`. Returns the decoded value and
/// the offset one past it, or `None` on any framing, bounds, CRC, or
/// decode failure — the caller truncates there.
// Disk contents are adversarial ingress: every arithmetic step below is
// bounds-checked before it is used as a length or index.
// lint: ingress
fn parse_record<T: Wire>(bytes: &[u8], off: usize) -> Option<(T, usize)> {
    let header = bytes.get(off..off + 8)?;
    // bounds: `header` is exactly 8 bytes by the `get` range above
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    // bounds: indexes 4..8 of the same 8-byte slice
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_RECORD {
        return None;
    }
    let start = off + 8;
    let payload = bytes.get(start..start + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((decode_frame::<T>(payload)?, start + len as usize))
}
// lint: end

/// Parses `wal-<k>.log` / `snap-<seq>.bin` style names.
fn parse_index(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// A replica's durable state directory: snapshot files plus an
/// append-only segmented WAL.
pub struct DataDir {
    dir: PathBuf,
    /// Open append handle on the current segment.
    wal: File,
    /// Index of the current segment.
    seg: u64,
    /// Frames accumulated by [`persist`](Self::persist) between flushes.
    pending: Vec<u8>,
}

impl DataDir {
    /// Opens (or creates) `dir`, replaying whatever survived into a
    /// [`RecoveredState`]: the newest snapshot that passes CRC + decode,
    /// then the WAL record run up to the first damaged record — the tail
    /// past it is truncated on the spot, and stale files are deleted.
    // Recovery is ingress end to end — see the module docs.
    // lint: ingress
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(Self, RecoveredState)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_index(name, "snap-", ".bin") {
                snaps.push((seq, entry.path()));
            } else if let Some(k) = parse_index(name, "wal-", ".log") {
                segs.push((k, entry.path()));
            }
        }
        snaps.sort_by_key(|s| std::cmp::Reverse(s.0));
        segs.sort_by_key(|s| s.0);

        // Newest snapshot that reads back cleanly wins; everything else
        // (older, or newer-but-damaged) is garbage-collected.
        let mut state = RecoveredState::default();
        let mut wal_start = 0u64;
        let mut chosen = false;
        for (_, path) in &snaps {
            if chosen {
                let _ = fs::remove_file(path);
                continue;
            }
            match fs::read(path).ok().and_then(|b| {
                let (rec, end) = parse_record::<SnapshotRecord>(&b, 0)?;
                (end == b.len()).then_some(rec)
            }) {
                Some(rec) => {
                    wal_start = rec.wal_start;
                    state.snapshot = Some((rec.cert, rec.log_len, rec.bytes));
                    chosen = true;
                }
                None => {
                    let _ = fs::remove_file(path);
                }
            }
        }

        // Replay segments from `wal_start`, dense: a missing segment is a
        // gap, and a damaged record ends replay — in both cases the rest
        // of the WAL is deleted rather than spliced across the hole.
        let mut live = 0u64;
        let mut have_live = false;
        let mut broken = false;
        for (k, path) in &segs {
            if *k < wal_start {
                let _ = fs::remove_file(path);
                continue;
            }
            let expected = if have_live { live + 1 } else { wal_start };
            if broken || *k != expected {
                broken = true;
                let _ = fs::remove_file(path);
                continue;
            }
            let bytes = fs::read(path)?;
            let mut off = 0usize;
            while off < bytes.len() {
                match parse_record::<WalRecord>(&bytes, off) {
                    Some((WalRecord::Commit { seq, batch }, end)) => {
                        state.commits.push((seq, batch));
                        off = end;
                    }
                    Some((WalRecord::UsigCounter(c), end)) => {
                        state.usig_counter = state.usig_counter.max(c);
                        off = end;
                    }
                    None => {
                        // Torn or corrupted tail: keep the valid prefix.
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(off as u64)?;
                        broken = true;
                        break;
                    }
                }
            }
            live = *k;
            have_live = true;
        }

        let seg = if have_live { live } else { wal_start };
        let wal = OpenOptions::new().create(true).append(true).open(segment_path(&dir, seg))?;
        Ok((DataDir { dir, wal, seg, pending: Vec::new() }, state))
    }
    // lint: end

    /// Persists `events` in order. Commits and USIG counters append to
    /// the current WAL segment; a stable checkpoint writes a snapshot
    /// file (tmp-then-rename, synced), rolls to a fresh segment, and
    /// garbage-collects what the snapshot covers. The call returns only
    /// once every byte is handed to the kernel — the serve loop acks
    /// after this, never before.
    pub fn persist(&mut self, events: &[DurableEvent]) -> io::Result<()> {
        for event in events {
            match event {
                DurableEvent::Commit { seq, batch } => {
                    let rec = WalRecord::Commit { seq: *seq, batch: batch.clone() };
                    frame_record(&rec, &mut self.pending);
                }
                DurableEvent::UsigCounter(c) => {
                    frame_record(&WalRecord::UsigCounter(*c), &mut self.pending);
                }
                DurableEvent::Stable { cert, log_len, snapshot } => {
                    self.flush_pending()?;
                    self.take_snapshot(cert, *log_len, snapshot)?;
                }
            }
        }
        self.flush_pending()
    }

    /// Writes the accumulated record frames to the current segment.
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.wal.write_all(&self.pending)?;
        self.pending.clear();
        Ok(())
    }

    /// Writes `snap-<seq>.bin` for a stable certificate, rolls the WAL,
    /// and deletes covered segments and superseded snapshots.
    fn take_snapshot(
        &mut self,
        cert: &CheckpointCert,
        log_len: u64,
        snapshot: &Arc<Vec<u8>>,
    ) -> io::Result<()> {
        // Commits above the watermark may already sit in the current
        // segment (they committed before the certificate stabilised), so
        // the snapshot points replay at the segment being closed, not the
        // fresh one.
        let rec = SnapshotRecord {
            cert: cert.clone(),
            log_len,
            bytes: snapshot.as_ref().clone(),
            wal_start: self.seg,
        };
        let mut framed = Vec::new();
        frame_record(&rec, &mut framed);
        let tmp = self.dir.join("snap.tmp");
        let path = self.dir.join(format!("snap-{}.bin", cert.seq));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&framed)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;

        self.seg += 1;
        self.wal =
            OpenOptions::new().create(true).append(true).open(segment_path(&self.dir, self.seg))?;
        self.gc(cert.seq, self.seg.saturating_sub(1))?;
        Ok(())
    }

    /// Deletes snapshots below `keep_seq` and segments below `keep_seg`.
    fn gc(&self, keep_seq: u64, keep_seg: u64) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale =
                match (parse_index(name, "snap-", ".bin"), parse_index(name, "wal-", ".log")) {
                    (Some(seq), _) => seq < keep_seq,
                    (_, Some(k)) => k < keep_seg,
                    _ => false,
                };
            if stale {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// The directory this store lives in.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

/// Path of WAL segment `k` under `dir`.
pub fn segment_path(dir: &Path, k: u64) -> PathBuf {
    dir.join(format!("wal-{k}.log"))
}

/// The WAL segment paths under `dir`, ascending by index — the chaos
/// harness polls the last one's size and mutates its tail.
pub fn wal_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segs: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(k) = name.to_str().and_then(|n| parse_index(n, "wal-", ".log")) {
            segs.push((k, entry.path()));
        }
    }
    segs.sort_by_key(|s| s.0);
    Ok(segs.into_iter().map(|(_, p)| p).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsoc_bft::api::{ClientId, OpId, Request};
    use rsoc_bft::checkpoint::CheckpointVoucher;
    use rsoc_crypto::{sha256, Tag};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique per-test scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let id = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("rsoc_store_test_{}_{id}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn req(client: u32, seq: u64, payload: Vec<u8>) -> Arc<Request> {
        Arc::new(Request { op: OpId { client: ClientId(client), seq }, payload })
    }

    fn commit(seq: u64, payload: Vec<u8>) -> DurableEvent {
        DurableEvent::Commit { seq, batch: Arc::new(Batch::single(req(1, seq, payload))) }
    }

    fn cert(seq: u64, snapshot: &[u8]) -> CheckpointCert {
        let digest = sha256(snapshot);
        CheckpointCert {
            seq,
            digest,
            vouchers: vec![CheckpointVoucher {
                seq,
                digest,
                from: rsoc_bft::api::ReplicaId(0),
                tag: Tag([9; 32]),
            }],
        }
    }

    fn stable(seq: u64, snapshot: Vec<u8>) -> DurableEvent {
        DurableEvent::Stable {
            cert: cert(seq, &snapshot),
            log_len: seq,
            snapshot: Arc::new(snapshot),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let scratch = Scratch::new();
        let (_store, state) = DataDir::open(&scratch.0).unwrap();
        assert!(state.is_empty());
    }

    #[test]
    fn commits_and_counter_round_trip() {
        let scratch = Scratch::new();
        let events =
            vec![commit(1, b"a".to_vec()), DurableEvent::UsigCounter(4), commit(2, b"b".to_vec())];
        {
            let (mut store, state) = DataDir::open(&scratch.0).unwrap();
            assert!(state.is_empty());
            store.persist(&events).unwrap();
        }
        let (_store, state) = DataDir::open(&scratch.0).unwrap();
        assert_eq!(state.commits.len(), 2);
        assert_eq!(state.commits[0].0, 1);
        assert_eq!(state.commits[1].0, 2);
        assert!(state.commits.iter().all(|(_, b)| b.verify()));
        assert_eq!(state.usig_counter, 4);
        assert!(state.snapshot.is_none());
    }

    #[test]
    fn stable_checkpoint_rolls_segments_and_gcs() {
        let scratch = Scratch::new();
        {
            let (mut store, _) = DataDir::open(&scratch.0).unwrap();
            store.persist(&[commit(1, b"a".to_vec()), commit(2, b"b".to_vec())]).unwrap();
            store.persist(&[stable(2, b"state@2".to_vec())]).unwrap();
            store.persist(&[commit(3, b"c".to_vec())]).unwrap();
            store.persist(&[stable(3, b"state@3".to_vec())]).unwrap();
            store.persist(&[commit(4, b"d".to_vec())]).unwrap();
        }
        // Steady state: one snapshot, at most two segments.
        let snaps: Vec<_> = fs::read_dir(&scratch.0)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().to_str().map(str::to_string))
            .filter(|n| n.starts_with("snap-"))
            .collect();
        assert_eq!(snaps, vec!["snap-3.bin".to_string()]);
        assert!(wal_segments(&scratch.0).unwrap().len() <= 2);

        let (_store, state) = DataDir::open(&scratch.0).unwrap();
        let (c, log_len, bytes) = state.snapshot.expect("snapshot survived");
        assert_eq!((c.seq, log_len, bytes.as_slice()), (3, 3, b"state@3".as_slice()));
        // Segment 1 (closed by the seq-3 snapshot) still replays commit 3;
        // the core skips it as covered. Commit 4 is the live tail.
        assert_eq!(state.commits.last().unwrap().0, 4);
    }

    #[test]
    fn torn_tail_is_truncated_not_trusted() {
        let scratch = Scratch::new();
        {
            let (mut store, _) = DataDir::open(&scratch.0).unwrap();
            store.persist(&[commit(1, b"aa".to_vec()), commit(2, b"bb".to_vec())]).unwrap();
        }
        let seg = segment_path(&scratch.0, 0);
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();

        let (_store, state) = DataDir::open(&scratch.0).unwrap();
        assert_eq!(state.commits.len(), 1);
        assert_eq!(state.commits[0].0, 1);
        // The torn bytes are gone from disk too: a second open sees the
        // same prefix, not a previously-hidden half-record.
        assert!(fs::metadata(&seg).unwrap().len() < len - 3);
    }

    #[test]
    fn corrupt_record_ends_replay() {
        let scratch = Scratch::new();
        {
            let (mut store, _) = DataDir::open(&scratch.0).unwrap();
            store
                .persist(&[
                    commit(1, b"aa".to_vec()),
                    commit(2, b"bb".to_vec()),
                    commit(3, b"cc".to_vec()),
                ])
                .unwrap();
        }
        let seg = segment_path(&scratch.0, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();

        let (_store, state) = DataDir::open(&scratch.0).unwrap();
        // Whatever survived is a clean prefix of what was written.
        assert!(state.commits.len() < 3);
        for (i, (seq, batch)) in state.commits.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert!(batch.verify());
        }
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_wal() {
        let scratch = Scratch::new();
        {
            let (mut store, _) = DataDir::open(&scratch.0).unwrap();
            store.persist(&[commit(1, b"a".to_vec()), stable(1, b"state@1".to_vec())]).unwrap();
            store.persist(&[commit(2, b"b".to_vec())]).unwrap();
        }
        let snap = scratch.0.join("snap-1.bin");
        let mut bytes = fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&snap, &bytes).unwrap();

        let (_store, state) = DataDir::open(&scratch.0).unwrap();
        assert!(state.snapshot.is_none(), "damaged snapshot must not load");
        assert!(!snap.exists(), "damaged snapshot is deleted");
        // The WAL still replays: segment 0 was closed by the snapshot but
        // retained as its wal_start, so commit 1 and 2 both survive.
        assert_eq!(state.commits.iter().map(|c| c.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn missing_segment_stops_replay_at_the_gap() {
        let scratch = Scratch::new();
        {
            let (mut store, _) = DataDir::open(&scratch.0).unwrap();
            store.persist(&[commit(1, b"a".to_vec()), stable(1, b"s1".to_vec())]).unwrap();
            store.persist(&[commit(2, b"b".to_vec()), stable(2, b"s2".to_vec())]).unwrap();
            store.persist(&[commit(3, b"c".to_vec())]).unwrap();
        }
        // Remove the snapshot AND the middle segment: replay must stop at
        // the gap instead of splicing segment 2's commits after segment 0.
        let _ = fs::remove_file(scratch.0.join("snap-2.bin"));
        let _ = fs::remove_file(segment_path(&scratch.0, 1));
        let (_store, state) = DataDir::open(&scratch.0).unwrap();
        let seqs: Vec<u64> = state.commits.iter().map(|c| c.0).collect();
        assert!(!seqs.contains(&3), "commit past the gap must not replay: {seqs:?}");
    }

    /// Builds the WAL the proptests damage: `n` single-request commits
    /// with varied payloads, all in segment 0.
    fn write_commits(dir: &Path, payloads: &[Vec<u8>]) -> Vec<(u64, Arc<Batch>)> {
        let (mut store, _) = DataDir::open(dir).unwrap();
        let events: Vec<DurableEvent> =
            payloads.iter().enumerate().map(|(i, p)| commit(i as u64 + 1, p.clone())).collect();
        store.persist(&events).unwrap();
        events
            .iter()
            .map(|e| match e {
                DurableEvent::Commit { seq, batch } => (*seq, batch.clone()),
                _ => unreachable!(),
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary record streams round-trip byte-exactly.
        #[test]
        fn wal_round_trips(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 1..12),
        ) {
            let scratch = Scratch::new();
            let written = write_commits(&scratch.0, &payloads);
            let (_store, state) = DataDir::open(&scratch.0).unwrap();
            prop_assert_eq!(&state.commits, &written);
        }

        /// Any truncation of the WAL tail recovers the longest valid
        /// record prefix — without panicking, and without inventing
        /// records.
        #[test]
        fn truncation_recovers_longest_valid_prefix(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 1..12),
            cut in 1usize..64,
        ) {
            let scratch = Scratch::new();
            let written = write_commits(&scratch.0, &payloads);
            let seg = segment_path(&scratch.0, 0);
            let len = fs::metadata(&seg).unwrap().len();
            let keep = len.saturating_sub(cut as u64);
            OpenOptions::new().write(true).open(&seg).unwrap().set_len(keep).unwrap();

            let (_store, state) = DataDir::open(&scratch.0).unwrap();
            prop_assert!(state.commits.len() <= written.len());
            prop_assert_eq!(&state.commits[..], &written[..state.commits.len()]);
        }

        /// Any single-byte corruption anywhere in the WAL recovers a
        /// valid record prefix without panicking.
        #[test]
        fn bit_flip_recovers_a_valid_prefix(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 1..12),
            pos in any::<u64>(),
            flip in 1u8..=255,
        ) {
            let scratch = Scratch::new();
            let written = write_commits(&scratch.0, &payloads);
            let seg = segment_path(&scratch.0, 0);
            let mut bytes = fs::read(&seg).unwrap();
            let at = (pos % bytes.len() as u64) as usize;
            bytes[at] ^= flip;
            fs::write(&seg, &bytes).unwrap();

            let (_store, state) = DataDir::open(&scratch.0).unwrap();
            prop_assert!(state.commits.len() < written.len() + 1);
            prop_assert_eq!(&state.commits[..], &written[..state.commits.len()]);
        }
    }
}
