//! Slab arena with an intrusive freelist — the allocation-free backing
//! store for event queues.
//!
//! Discrete-event hot paths (the [`Engine`](crate::Engine), the BFT
//! protocol harness, the NoC flight table) previously paid one heap
//! allocation per queued event (`BTreeMap` nodes keyed by a monotonically
//! growing id). A [`Slab`] keeps every entry in one contiguous `Vec`:
//! freed slots are chained into an intrusive freelist and reused by the
//! next insert, so steady-state event traffic allocates nothing and both
//! insert and remove are O(1).
//!
//! Slot indices are *stable* (an entry never moves while it is live) but
//! *reused* after removal — a slab index identifies a slot, not an event.
//! Callers that need a total order over events (tie-breaking a priority
//! queue) must carry their own monotone sequence number alongside the
//! index; reusing the index as the tiebreak would reorder events.

/// A slot entry: either a live value or a link in the freelist.
#[derive(Debug)]
enum Entry<T> {
    Occupied(T),
    /// Free slot; `next` is the index of the next free slot, or
    /// [`Slab::NIL`] at the end of the freelist.
    Free {
        next: u32,
    },
}

/// A vector-backed arena with O(1) insert and remove and stable indices.
///
/// # Example
/// ```
/// use rsoc_sim::Slab;
/// let mut slab: Slab<&str> = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.remove(a), Some("alpha"));
/// // Freed slots are reused before the vector grows.
/// let c = slab.insert("gamma");
/// assert_eq!(c, a);
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Freelist terminator (also the maximum representable slot count).
    const NIL: u32 = u32::MAX;

    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab { entries: Vec::new(), free_head: Self::NIL, len: 0 }
    }

    /// Creates an empty slab with room for `cap` entries before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Slab { entries: Vec::with_capacity(cap), free_head: Self::NIL, len: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots owned (live + free), i.e. the high-water mark.
    pub fn slot_count(&self) -> usize {
        self.entries.len()
    }

    /// Inserts `value`, returning its slot index. Reuses a freed slot when
    /// one exists; grows the backing vector (amortized O(1)) otherwise.
    ///
    /// # Panics
    /// Panics if the slab would exceed `u32::MAX - 1` slots.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != Self::NIL {
            let slot = self.free_head;
            match self.entries[slot as usize] {
                Entry::Free { next } => self.free_head = next,
                Entry::Occupied(_) => unreachable!("freelist head must be free"),
            }
            self.entries[slot as usize] = Entry::Occupied(value);
            slot
        } else {
            let slot = self.entries.len();
            assert!(slot < Self::NIL as usize, "slab exhausted u32 index space");
            self.entries.push(Entry::Occupied(value));
            slot as u32
        }
    }

    /// Removes and returns the value at `slot`, or `None` if the slot is
    /// vacant (or out of range). The slot becomes reusable immediately.
    pub fn remove(&mut self, slot: u32) -> Option<T> {
        let entry = self.entries.get_mut(slot as usize)?;
        if matches!(entry, Entry::Free { .. }) {
            return None;
        }
        let taken = std::mem::replace(entry, Entry::Free { next: self.free_head });
        self.free_head = slot;
        self.len -= 1;
        match taken {
            Entry::Occupied(v) => Some(v),
            Entry::Free { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Borrows the value at `slot`, if live.
    pub fn get(&self, slot: u32) -> Option<&T> {
        match self.entries.get(slot as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutably borrows the value at `slot`, if live.
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        match self.entries.get_mut(slot as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Drops every entry and resets the freelist, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free_head = Self::NIL;
        self.len = 0;
    }

    /// Iterates over `(slot, &value)` for every live entry, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| match e {
            Entry::Occupied(v) => Some((i as u32, v)),
            Entry::Free { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: Slab<u64> = Slab::new();
        assert!(s.is_empty());
        let a = s.insert(10);
        let b = s.insert(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&10));
        assert_eq!(s.get_mut(b).map(|v| std::mem::replace(v, 21)), Some(20));
        assert_eq!(s.remove(b), Some(21));
        assert_eq!(s.get(b), None, "vacated slot reads as empty");
        assert_eq!(s.remove(b), None, "double remove is refused");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_are_reused_after_free_lifo() {
        let mut s: Slab<&str> = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        let c = s.insert("c");
        assert_eq!(s.slot_count(), 3);
        s.remove(a);
        s.remove(c);
        // LIFO freelist: most recently freed slot comes back first, and no
        // new slots are allocated until the freelist is exhausted.
        assert_eq!(s.insert("c2"), c);
        assert_eq!(s.insert("a2"), a);
        assert_eq!(s.slot_count(), 3, "no growth while free slots exist");
        let d = s.insert("d");
        assert_eq!(d, 3, "freelist empty -> vector grows");
        assert_eq!(s.get(b), Some(&"b"), "live entries survive neighbours' churn");
    }

    #[test]
    fn reuse_does_not_resurrect_old_values() {
        let mut s: Slab<Vec<u8>> = Slab::new();
        let a = s.insert(vec![1, 2, 3]);
        s.remove(a);
        let b = s.insert(vec![9]);
        assert_eq!(a, b);
        assert_eq!(s.get(b), Some(&vec![9]), "slot carries only the new value");
    }

    #[test]
    fn heavy_churn_stays_compact() {
        let mut s: Slab<u64> = Slab::new();
        let mut live: Vec<u32> = Vec::new();
        // Interleave inserts and removes; the arena footprint must track
        // the peak live population, not the total event count.
        for i in 0..10_000u64 {
            live.push(s.insert(i));
            if i % 3 == 0 {
                let idx = live.remove((i as usize * 7) % live.len());
                assert!(s.remove(idx).is_some());
            }
        }
        assert_eq!(s.len(), live.len());
        assert!(s.slot_count() <= live.len() + 1, "footprint tracks peak live set");
    }

    #[test]
    fn out_of_range_access_is_none() {
        let mut s: Slab<u8> = Slab::new();
        assert_eq!(s.get(0), None);
        assert_eq!(s.remove(99), None);
        s.insert(1);
        assert_eq!(s.get(7), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s: Slab<u8> = Slab::new();
        let a = s.insert(1);
        s.insert(2);
        s.remove(a);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.slot_count(), 0);
        assert_eq!(s.insert(9), 0, "indices restart after clear");
    }

    #[test]
    fn iter_visits_live_entries_in_slot_order() {
        let mut s: Slab<u8> = Slab::new();
        let a = s.insert(1);
        s.insert(2);
        let c = s.insert(3);
        s.remove(a);
        s.remove(c);
        s.insert(4); // reuses slot c (LIFO)
        let seen: Vec<(u32, u8)> = s.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(seen, vec![(1, 2), (2, 4)]);
    }
}
