//! A cycle-indexed timing wheel — the O(1) event queue under the BFT
//! protocol harness.
//!
//! PR 3 moved event *bodies* out of `BTreeMap` nodes into a
//! [`Slab`](crate::Slab)
//! arena, but ordering still went through a `BinaryHeap`: every message
//! paid an O(log n) sift over 24-byte keys on both push and pop, which
//! profiling for PR 4 left as one of the largest per-message costs (a
//! mesh-cell op is ~30–40 queue round-trips). This wheel replaces the
//! heap with a bucket array indexed by delivery cycle:
//!
//! * **push** appends to the target cycle's intrusive FIFO list — O(1),
//!   no allocation in steady state (freed arena slots are reused);
//! * **pop** drains the cursor cycle's list, then advances the cursor.
//!   The total cursor scan over a run is bounded by the run's virtual
//!   duration, so the amortized per-event cost is O(1 + Δt/events);
//! * events beyond the wheel horizon (2^16 cycles) go to a small
//!   overflow heap that is consulted when its head cycle arrives.
//!
//! # Ordering contract
//!
//! Pop order is exactly `(delivery_cycle, push_order)` — identical to the
//! `BinaryHeap<Reverse<(time, seq, slot)>>` it replaces, so swapping the
//! queue implementation is invisible to any deterministic simulation
//! (asserted by a randomized equivalence test against a heap model):
//!
//! * within one cycle, wheel entries drain in push order (FIFO append);
//! * overflow entries for a cycle drain *before* that cycle's wheel
//!   entries — correct because an event can only land in overflow while
//!   the cycle is ≥ horizon away, i.e. strictly earlier in push order
//!   than any same-cycle event pushed near enough to use the wheel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel horizon: events scheduled less than this many cycles ahead use
/// the O(1) bucket path. Covers every delay the harness produces (NoC
/// latencies, egress serialization, request patience, client timeouts at
/// deep pipeline windows); anything farther rides the overflow heap.
const HORIZON: u64 = 1 << 16;

/// Arena entry: a queued value threaded into its cycle's FIFO list, or a
/// link in the freelist.
#[derive(Debug)]
enum Entry<T> {
    Occupied { value: T, next: u32 },
    Free { next: u32 },
}

/// A timing wheel holding values of type `T` scheduled at absolute cycle
/// times.
///
/// # Example
/// ```
/// use rsoc_sim::TimingWheel;
/// let mut w: TimingWheel<&str> = TimingWheel::new();
/// w.push(5, "later");
/// w.push(2, "sooner");
/// w.push(5, "later-still");
/// assert_eq!(w.pop(), Some((2, "sooner")));
/// assert_eq!(w.pop(), Some((5, "later")));
/// assert_eq!(w.pop(), Some((5, "later-still")));
/// assert_eq!(w.pop(), None);
/// ```
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Arena of event bodies (slots reused via the freelist).
    entries: Vec<Entry<T>>,
    free_head: u32,
    /// Per-cycle FIFO lists, `(head, tail)` indices into `entries`.
    buckets: Vec<(u32, u32)>,
    /// Events at or beyond the horizon: `(cycle, push_seq, slot)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// The cycle the next pop starts scanning from. Monotone.
    cursor: u64,
    /// Global push counter (the FIFO tiebreak for the overflow heap).
    next_seq: u64,
    /// Live events, total.
    len: usize,
    /// Live events in the bucket array (excluses overflow).
    wheel_len: usize,
}

const NIL: u32 = u32::MAX;

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel with its cursor at cycle 0.
    pub fn new() -> Self {
        TimingWheel {
            entries: Vec::new(),
            free_head: NIL,
            buckets: vec![(NIL, NIL); HORIZON as usize],
            overflow: BinaryHeap::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
            wheel_len: 0,
        }
    }

    /// Live event count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cycle the queue has drained up to (the last popped time).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    // The schedule/fire path runs once per simulated event; `rsoc_lint`
    // keeps it free of per-event heap churn (the arena amortizes growth).
    // lint: hot-path
    fn alloc(&mut self, value: T) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            match self.entries[slot as usize] {
                Entry::Free { next } => self.free_head = next,
                Entry::Occupied { .. } => unreachable!("freelist points at live entry"),
            }
            self.entries[slot as usize] = Entry::Occupied { value, next: NIL };
            slot
        } else {
            let slot = self.entries.len() as u32;
            assert!(slot != NIL, "timing wheel arena exhausted");
            self.entries.push(Entry::Occupied { value, next: NIL });
            slot
        }
    }

    fn release(&mut self, slot: u32) -> T {
        let old = std::mem::replace(
            &mut self.entries[slot as usize],
            Entry::Free { next: self.free_head },
        );
        self.free_head = slot;
        match old {
            Entry::Occupied { value, .. } => value,
            Entry::Free { .. } => unreachable!("released a free slot"),
        }
    }

    /// Schedules `value` at absolute cycle `at`. Times before the cursor
    /// are clamped to it (the past cannot be scheduled).
    pub fn push(&mut self, at: u64, value: T) {
        let at = at.max(self.cursor);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc(value);
        self.len += 1;
        if at - self.cursor < HORIZON {
            let b = (at % HORIZON) as usize;
            let (head, tail) = self.buckets[b];
            if head == NIL {
                self.buckets[b] = (slot, slot);
            } else {
                match &mut self.entries[tail as usize] {
                    Entry::Occupied { next, .. } => *next = slot,
                    Entry::Free { .. } => unreachable!("bucket tail is free"),
                }
                self.buckets[b] = (head, slot);
            }
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse((at, seq, slot)));
        }
    }

    /// Removes and returns the earliest event as `(cycle, value)`; ties
    /// break by push order.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Overflow first: for any given cycle, overflow entries are
            // strictly older pushes than wheel entries (see module docs).
            if let Some(&Reverse((t, _, slot))) = self.overflow.peek() {
                if t <= self.cursor {
                    self.overflow.pop();
                    self.len -= 1;
                    return Some((t, self.release(slot)));
                }
                if self.wheel_len == 0 {
                    // Nothing in the bucket array: jump straight to the
                    // overflow head instead of scanning empty cycles.
                    self.cursor = t;
                    continue;
                }
            }
            let b = (self.cursor % HORIZON) as usize;
            let (head, tail) = self.buckets[b];
            if head != NIL {
                let next = match &self.entries[head as usize] {
                    Entry::Occupied { next, .. } => *next,
                    Entry::Free { .. } => unreachable!("bucket head is free"),
                };
                self.buckets[b] = if next == NIL { (NIL, NIL) } else { (next, tail) };
                self.wheel_len -= 1;
                self.len -= 1;
                return Some((self.cursor, self.release(head)));
            }
            self.cursor += 1;
        }
    }
    // lint: end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.push(10, 1);
        w.push(5, 2);
        w.push(10, 3);
        w.push(5, 4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.pop(), Some((5, 2)));
        assert_eq!(w.pop(), Some((5, 4)));
        assert_eq!(w.pop(), Some((10, 1)));
        assert_eq!(w.pop(), Some((10, 3)));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn same_cycle_pushes_during_drain_stay_fifo() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.push(3, 1);
        assert_eq!(w.pop(), Some((3, 1)));
        // Cursor now at 3; a same-cycle push drains before later cycles.
        w.push(3, 2);
        w.push(4, 3);
        assert_eq!(w.pop(), Some((3, 2)));
        assert_eq!(w.pop(), Some((4, 3)));
    }

    #[test]
    fn past_times_clamp_to_cursor() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.push(100, 1);
        assert_eq!(w.pop(), Some((100, 1)));
        w.push(7, 2); // before the cursor: clamped to 100
        assert_eq!(w.pop(), Some((100, 2)));
    }

    #[test]
    fn far_events_ride_the_overflow_and_return() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.push(HORIZON * 3 + 17, 1); // far: overflow
        w.push(2, 2); // near: wheel
        assert_eq!(w.pop(), Some((2, 2)));
        // Wheel empty: the cursor jumps, no 200k-cycle scan.
        assert_eq!(w.pop(), Some((HORIZON * 3 + 17, 1)));
        assert_eq!(w.cursor(), HORIZON * 3 + 17);
    }

    #[test]
    fn overflow_drains_before_wheel_at_same_cycle() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let t = HORIZON + 5;
        w.push(t, 1); // beyond horizon: overflow (earlier push order)
                      // Advance the cursor so `t` comes within the horizon.
        w.push(6, 0);
        assert_eq!(w.pop(), Some((6, 0)));
        w.push(t, 2); // now within horizon: wheel (later push order)
        assert_eq!(w.pop(), Some((t, 1)), "older overflow entry first");
        assert_eq!(w.pop(), Some((t, 2)));
    }

    #[test]
    fn overflow_horizon_spill_keeps_time_then_push_seq_order() {
        // Events scheduled beyond the 2^16-cycle horizon must spill to the
        // overflow heap and still pop in exact (time, push-seq) order as
        // the cursor crosses the horizon boundary — including events that
        // straddle it (HORIZON - 1 rides the wheel, HORIZON and beyond
        // ride the heap) and same-cycle pairs split across both paths.
        let mut w: TimingWheel<u32> = TimingWheel::new();
        // Interleave near and far pushes so push order and time order
        // disagree everywhere around the boundary.
        w.push(HORIZON + 1, 0); // overflow
        w.push(HORIZON - 1, 1); // wheel (just inside)
        w.push(2 * HORIZON + 3, 2); // overflow, far
        w.push(HORIZON, 3); // overflow (exactly at the boundary)
        w.push(1, 4); // wheel, earliest
        w.push(HORIZON + 1, 5); // overflow, same cycle as id 0: FIFO by seq
        assert_eq!(w.len(), 6);
        assert_eq!(w.pop(), Some((1, 4)));
        assert_eq!(w.pop(), Some((HORIZON - 1, 1)), "inside the horizon: wheel path");
        assert_eq!(w.pop(), Some((HORIZON, 3)), "boundary cycle comes from the heap");
        assert_eq!(w.pop(), Some((HORIZON + 1, 0)), "same-cycle overflow: push order");
        assert_eq!(w.pop(), Some((HORIZON + 1, 5)));
        // After crossing the boundary the cursor has advanced; a formerly
        // far cycle is now near and lands on the wheel, behind the older
        // overflow entry for the same cycle.
        w.push(2 * HORIZON + 3, 6); // now within horizon of the cursor: wheel
        assert_eq!(w.pop(), Some((2 * HORIZON + 3, 2)), "overflow entry is the older push");
        assert_eq!(w.pop(), Some((2 * HORIZON + 3, 6)));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut w: TimingWheel<u64> = TimingWheel::new();
        for round in 0..100u64 {
            for i in 0..8 {
                w.push(round * 10 + i % 3, i);
            }
            for _ in 0..8 {
                w.pop().unwrap();
            }
        }
        assert!(w.entries.len() <= 8, "arena grew past the high-water mark");
    }

    /// The wheel must reproduce a `BinaryHeap<Reverse<(time, seq)>>`
    /// reference model event-for-event under randomized traffic.
    #[test]
    fn equivalent_to_heap_reference_model() {
        let mut rng = SimRng::new(0x57EE_10E1);
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut model: std::collections::BinaryHeap<Reverse<(u64, u64, u64)>> =
            std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut id = 0u64;
        for step in 0..20_000u64 {
            let burst = rng.below(4);
            for _ in 0..burst {
                // Mixed near/far delays, including occasional horizon hops.
                let delay = match rng.below(10) {
                    0 => rng.below(3),
                    1..=7 => rng.below(40),
                    8 => 4_000 + rng.below(30_000),
                    _ => HORIZON + rng.below(HORIZON * 2),
                };
                wheel.push(now + delay, id);
                model.push(Reverse((now + delay, seq, id)));
                seq += 1;
                id += 1;
            }
            if step % 3 != 0 || model.is_empty() {
                continue;
            }
            let (wt, wid) = wheel.pop().expect("wheel has events");
            let Reverse((mt, _, mid)) = model.pop().expect("model has events");
            assert_eq!((wt, wid), (mt, mid), "divergence at step {step}");
            now = wt;
        }
        while let Some(Reverse((mt, _, mid))) = model.pop() {
            assert_eq!(wheel.pop(), Some((mt, mid)));
        }
        assert!(wheel.is_empty());
    }
}
