//! Deterministic pseudo-random number generation.
//!
//! Implements SplitMix64 (for seeding / stream forking) feeding a
//! xoshiro256++ generator. Both algorithms are tiny, fast, and — crucially
//! for reproducible experiments — fully specified here, so results never
//! change under dependency upgrades.

/// Deterministic random number generator used by every simulator.
///
/// ```
/// use rsoc_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let mut c = a.fork(1);
/// let mut d = a.fork(2);
/// assert_ne!(c.next_u64(), d.next_u64()); // forked streams differ
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Forking does not advance this generator, so subsystem streams can be
    /// created in any order without perturbing each other.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm =
            self.s[0] ^ self.s[3].rotate_left(17) ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Next raw 64 bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Next 32 bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection to remove modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean (`mean > 0`).
    ///
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Normally distributed sample (Box–Muller).
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mu + sigma * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Geometric number of Bernoulli failures before the first success
    /// (`p` in `(0,1]`). Returns `u64::MAX` when `p <= 0`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        let u = 1.0 - self.next_f64();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir-free partial
    /// Fisher–Yates). Result order is random.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c1b = root.fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.5, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::new(17);
        for _ in 0..100 {
            let s = rng.sample_indices(20, 7);
            assert_eq!(s.len(), 7);
            let mut t = s.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 7, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn geometric_edges() {
        let mut rng = SimRng::new(23);
        assert_eq!(rng.geometric(1.0), 0);
        assert_eq!(rng.geometric(0.0), u64::MAX);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.geometric(0.25) as f64).sum::<f64>() / n as f64;
        // Mean failures before success = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = SimRng::new(31);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let v = [10, 20, 30];
        for _ in 0..10 {
            assert!(v.contains(rng.choose(&v).unwrap()));
        }
    }
}
