//! Discrete-event engine.
//!
//! The engine owns a priority queue of `(time, sequence)` keys over a
//! [`Slab`] arena of event bodies, and fires them in deterministic order:
//! primarily by time, with ties broken by insertion sequence. Actions
//! receive the world state and the engine itself, so they can schedule
//! follow-up events.
//!
//! The split — `Copy` keys in the heap, closures in the arena — keeps the
//! heap's sift operations moving 24-byte keys instead of whole entries,
//! and the arena's freelist recycles event slots so steady-state
//! scheduling performs no queue-side heap allocation (the boxed closure
//! itself remains the caller's one allocation per event).

use crate::slab::Slab;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event body: a one-shot closure over the world and the engine.
pub type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// Heap key: total order carried by (time, insertion sequence); `slot`
/// addresses the action in the arena. Slots are reused, so `seq` — never
/// `slot` — is the tiebreak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event engine over world state `W`.
///
/// See the [crate-level docs](crate) for an end-to-end example.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    fired: u64,
    queue: BinaryHeap<Key>,
    arena: Slab<Action<W>>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            queue: BinaryHeap::new(),
            arena: Slab::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` (the action fires at the
    /// current instant, after already-queued actions for `now`).
    pub fn schedule(&mut self, at: SimTime, action: Action<W>) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = self.arena.insert(action);
        self.queue.push(Key { at, seq, slot });
    }

    /// Schedules `action` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: u64, action: Action<W>) {
        self.schedule(self.now + delay, action);
    }

    /// Runs until the queue empties. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs until the queue empties or the next event would fire after
    /// `deadline`. Events exactly at `deadline` are fired.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(top) = self.queue.peek() {
            if top.at > deadline {
                self.now = deadline;
                return self.now;
            }
            let key = self.queue.pop().expect("peeked entry must exist");
            debug_assert!(key.at >= self.now, "time must be monotonic");
            self.now = key.at;
            self.fired += 1;
            let action = self.arena.remove(key.slot).expect("queued action present");
            action(world, self);
        }
        self.now
    }

    /// Fires at most one event. Returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        if let Some(key) = self.queue.pop() {
            self.now = key.at;
            self.fired += 1;
            let action = self.arena.remove(key.slot).expect("queued action present");
            action(world, self);
            true
        } else {
            false
        }
    }

    /// Discards all pending events (e.g., on experiment teardown).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.arena.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut trace: Vec<u64> = Vec::new();
        let mut engine: Engine<Vec<u64>> = Engine::new();
        engine.schedule(SimTime::from_cycles(30), Box::new(|w, _| w.push(30)));
        engine.schedule(SimTime::from_cycles(10), Box::new(|w, _| w.push(10)));
        engine.schedule(SimTime::from_cycles(20), Box::new(|w, _| w.push(20)));
        engine.run(&mut trace);
        assert_eq!(trace, vec![10, 20, 30]);
        assert_eq!(engine.now(), SimTime::from_cycles(30));
        assert_eq!(engine.events_fired(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut trace: Vec<u64> = Vec::new();
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for i in 0..5 {
            engine.schedule(SimTime::from_cycles(7), Box::new(move |w, _| w.push(i)));
        }
        engine.run(&mut trace);
        assert_eq!(trace, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cascading_events() {
        let mut count = 0u32;
        let mut engine: Engine<u32> = Engine::new();
        fn tick(w: &mut u32, e: &mut Engine<u32>) {
            *w += 1;
            if *w < 10 {
                e.schedule_in(5, Box::new(tick));
            }
        }
        engine.schedule_in(5, Box::new(tick));
        engine.run(&mut count);
        assert_eq!(count, 10);
        assert_eq!(engine.now(), SimTime::from_cycles(50));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut hits = 0u32;
        let mut engine: Engine<u32> = Engine::new();
        for t in [10u64, 20, 30, 40] {
            engine.schedule(SimTime::from_cycles(t), Box::new(|w, _| *w += 1));
        }
        engine.run_until(&mut hits, SimTime::from_cycles(20));
        assert_eq!(hits, 2, "events at 10 and 20 fire");
        assert_eq!(engine.now(), SimTime::from_cycles(20));
        assert_eq!(engine.pending(), 2);
        engine.run(&mut hits);
        assert_eq!(hits, 4);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut trace: Vec<u64> = Vec::new();
        let mut engine: Engine<Vec<u64>> = Engine::new();
        engine.schedule(
            SimTime::from_cycles(100),
            Box::new(|w, e| {
                w.push(e.now().cycles());
                // "Past" event: clamped to now=100.
                e.schedule(SimTime::from_cycles(1), Box::new(|w, e| w.push(e.now().cycles())));
            }),
        );
        engine.run(&mut trace);
        assert_eq!(trace, vec![100, 100]);
    }

    #[test]
    fn slot_reuse_preserves_event_ordering() {
        // Cascading events recycle arena slots aggressively; ordering must
        // stay (time, insertion-seq) even when a later event reuses the
        // slot index of an earlier one.
        let mut trace: Vec<(u64, u64)> = Vec::new();
        let mut engine: Engine<Vec<(u64, u64)>> = Engine::new();
        for i in 0..4u64 {
            engine.schedule(
                SimTime::from_cycles(10 + i),
                Box::new(move |w, e: &mut Engine<Vec<(u64, u64)>>| {
                    w.push((e.now().cycles(), i));
                    // Two follow-ups: one at a shared tick (tie-break test),
                    // one interleaved between original events.
                    e.schedule(
                        SimTime::from_cycles(50),
                        Box::new(
                            move |w: &mut Vec<(u64, u64)>, e: &mut Engine<Vec<(u64, u64)>>| {
                                w.push((e.now().cycles(), 100 + i))
                            },
                        ),
                    );
                    e.schedule_in(
                        1,
                        Box::new(
                            move |w: &mut Vec<(u64, u64)>, e: &mut Engine<Vec<(u64, u64)>>| {
                                w.push((e.now().cycles(), 200 + i))
                            },
                        ),
                    );
                }),
            );
        }
        engine.run(&mut trace);
        let times: Vec<u64> = trace.iter().map(|(t, _)| *t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "monotone firing times: {trace:?}");
        // Ties at t=50 fire in insertion order (by scheduling parent).
        let at50: Vec<u64> = trace.iter().filter(|(t, _)| *t == 50).map(|(_, k)| *k).collect();
        assert_eq!(at50, vec![100, 101, 102, 103]);
        // Interleaved follow-ups land between their neighbours.
        assert_eq!(trace[0], (10, 0));
        assert_eq!(trace[1], (11, 1), "t=11: original event 1 precedes follow-up 200+0 by seq");
        assert_eq!(trace[2], (11, 200));
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn step_and_clear() {
        let mut n = 0u32;
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_in(1, Box::new(|w, _| *w += 1));
        engine.schedule_in(2, Box::new(|w, _| *w += 1));
        assert!(engine.step(&mut n));
        assert_eq!(n, 1);
        engine.clear();
        assert!(!engine.step(&mut n));
        assert_eq!(engine.pending(), 0);
    }
}
