//! Online statistics collectors used by all experiments.

use std::fmt;

/// A named monotonically increasing event counter.
///
/// ```
/// use rsoc_sim::Counter;
/// let mut c = Counter::new("messages");
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter { name: name.into(), value: 0 }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Counter name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Numerically stable online mean/variance/min/max (Welford's algorithm).
///
/// ```
/// use rsoc_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel Welford combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.std_dev(),
            if self.n == 0 { 0.0 } else { self.min },
            if self.n == 0 { 0.0 } else { self.max },
        )
    }
}

/// Sample reservoir with exact quantiles (stores all samples).
///
/// Suitable for experiment-scale sample counts (≤ millions); quantiles are
/// computed on demand over a sorted copy.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { samples: Vec::new() }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns the `q`-quantile (nearest-rank), `q` in `[0,1]`.
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Median shortcut.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Read-only access to raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Buckets samples into `bins` equal-width bins over `[lo, hi)`,
    /// returning counts. Out-of-range samples clamp to the edge bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn bucketize(&self, lo: f64, hi: f64, bins: usize) -> Vec<u64> {
        assert!(bins > 0 && lo < hi, "invalid bucket spec");
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &s in &self.samples {
            let idx = (((s - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        counts
    }
}

/// Sub-bucket resolution bits of [`LogHistogram`]: 32 sub-buckets per
/// power-of-two magnitude, i.e. ≤ 1/32 (~3.1%) relative quantization error.
const LOG_HIST_SUB_BITS: u32 = 5;
const LOG_HIST_SUB: u64 = 1 << LOG_HIST_SUB_BITS;

/// HDR-style log-bucketed histogram over `u64` samples.
///
/// Values below 32 are recorded exactly; above that, each power-of-two
/// magnitude is split into 32 sub-buckets, bounding relative error at
/// quantile time to 1/32. Everything is integer arithmetic on `u64`
/// counts, so merges and serializations are byte-deterministic — two
/// histograms recording the same multiset of samples (in any order, in
/// any sharding) are identical.
///
/// ```
/// use rsoc_sim::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 { h.record(v); }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((470..=530).contains(&p50));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Total number of buckets (covers the full `u64` range): one block
    /// of exact values below 32 plus one 32-wide block per exponent
    /// 5..=63.
    pub const NUM_BUCKETS: usize = (64 - LOG_HIST_SUB_BITS as usize + 1) * LOG_HIST_SUB as usize;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram { counts: vec![0; Self::NUM_BUCKETS], total: 0 }
    }

    /// Bucket index for a value. Total order preserving: `a <= b` implies
    /// `bucket_index(a) <= bucket_index(b)`.
    pub fn bucket_index(v: u64) -> usize {
        if v < LOG_HIST_SUB {
            return v as usize;
        }
        let e = 63 - v.leading_zeros(); // >= LOG_HIST_SUB_BITS
        let shift = e - LOG_HIST_SUB_BITS;
        let block = (shift + 1) as u64;
        (block * LOG_HIST_SUB + (v >> shift) - LOG_HIST_SUB) as usize
    }

    /// Inclusive `(low, high)` value range of a bucket.
    ///
    /// # Panics
    /// Panics if `index >= NUM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < Self::NUM_BUCKETS, "bucket index out of range");
        let i = index as u64;
        if i < LOG_HIST_SUB {
            return (i, i);
        }
        let block = i / LOG_HIST_SUB; // >= 1
        let offset = i % LOG_HIST_SUB;
        let shift = (block - 1) as u32;
        let low = (LOG_HIST_SUB + offset) << shift;
        (low, low + ((1u64 << shift) - 1))
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of a sample.
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[Self::bucket_index(v)] += n;
        self.total += n;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merges another histogram into this one. Order-independent:
    /// any merge tree over the same shards yields identical state.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Nearest-rank `q`-quantile, reported as the upper bound of the
    /// bucket holding that rank (conservative for tail latencies).
    /// Returns `None` when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(Self::bucket_bounds(i).1);
            }
        }
        None // unreachable: cum == total >= rank by the end
    }

    /// Largest recorded bucket's upper bound (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        self.quantile(1.0)
    }

    /// Sparse serialization: parallel `(bucket_indices, counts)` vectors,
    /// indices strictly ascending, counts non-zero. Byte-deterministic.
    pub fn to_sparse(&self) -> (Vec<u64>, Vec<u64>) {
        let mut idx = Vec::new();
        let mut cnt = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                idx.push(i as u64);
                cnt.push(c);
            }
        }
        (idx, cnt)
    }

    // lint: ingress
    /// Rebuilds a histogram from a sparse encoding, validating shape:
    /// equal lengths, strictly ascending in-range indices, non-zero and
    /// non-overflowing counts. Returns `None` on any violation.
    pub fn from_sparse(indices: &[u64], counts: &[u64]) -> Option<Self> {
        if indices.len() != counts.len() {
            return None;
        }
        let mut h = LogHistogram::new();
        let mut prev: Option<u64> = None;
        for (&i, &c) in indices.iter().zip(counts) {
            if i >= Self::NUM_BUCKETS as u64 || c == 0 {
                return None;
            }
            if prev.is_some_and(|p| p >= i) {
                return None;
            }
            prev = Some(i);
            // bounds: i < NUM_BUCKETS checked above.
            h.counts[i as usize] = c;
            h.total = h.total.checked_add(c)?;
        }
        Some(h)
    }
    // lint: end
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A `(time, value)` series, e.g. threat level or compromised-replica count
/// over an experiment run.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point. Time must be non-decreasing.
    ///
    /// # Panics
    /// Panics in debug builds when time regresses.
    pub fn push(&mut self, time: u64, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= time),
            "time series must be monotonic"
        );
        self.points.push((time, value));
    }

    /// All points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at or before `time` (step interpolation); `None` before first point.
    pub fn value_at(&self, time: u64) -> Option<f64> {
        match self.points.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Time-weighted average over `[start, end)` using step interpolation.
    ///
    /// Returns `None` when the series has no value at `start`.
    pub fn time_weighted_mean(&self, start: u64, end: u64) -> Option<f64> {
        if end <= start {
            return None;
        }
        let mut acc = 0.0;
        let mut cur = self.value_at(start)?;
        let mut cur_t = start;
        for &(t, v) in &self.points {
            if t <= start {
                continue;
            }
            if t >= end {
                break;
            }
            acc += cur * (t - cur_t) as f64;
            cur = v;
            cur_t = t;
        }
        acc += cur * (end - cur_t) as f64;
        Some(acc / (end - start) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.name(), "x");
        assert_eq!(format!("{c}"), "x=5");
    }

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut a = OnlineStats::new();
        a.merge(&s); // merging empty is a no-op
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.median(), Some(50.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.median(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        for x in [0.1, 0.2, 0.5, 0.9, 1.5, -3.0] {
            h.record(x);
        }
        let buckets = h.bucketize(0.0, 1.0, 2);
        // bin 0 = [0.0,0.5): {0.1, 0.2, clamped -3.0}; bin 1 = [0.5,1.0): {0.5, 0.9, clamped 1.5}.
        assert_eq!(buckets, vec![3, 3]);
    }

    #[test]
    fn log_histogram_exact_below_sub() {
        for v in 0..32u64 {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn log_histogram_buckets_are_contiguous_and_ordered() {
        // Bucket bounds tile the u64 range without gaps or overlaps.
        let mut next_low = 0u64;
        for i in 0..LogHistogram::NUM_BUCKETS {
            let (low, high) = LogHistogram::bucket_bounds(i);
            assert_eq!(low, next_low, "bucket {i} leaves a gap");
            assert!(high >= low);
            assert_eq!(LogHistogram::bucket_index(low), i);
            assert_eq!(LogHistogram::bucket_index(high), i);
            if i + 1 == LogHistogram::NUM_BUCKETS {
                assert_eq!(high, u64::MAX);
            } else {
                next_low = high + 1;
            }
        }
    }

    #[test]
    fn log_histogram_relative_error_bounded() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let (low, high) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            assert!(low <= v && v <= high);
            // Quantiles report the bucket upper bound; error <= width/low <= 1/32.
            assert!(high - low <= low.max(1) / 16, "v={v} low={low} high={high}");
            v = v * 3 + 1;
        }
    }

    #[test]
    fn log_histogram_quantiles_nearest_rank() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        // Values <= 31 are exact; above, upper-bound-of-bucket.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.25), Some(25));
        let p99 = h.quantile(0.99).unwrap();
        assert!((99..=103).contains(&p99), "p99={p99}");
        assert!(h.max().unwrap() >= 100);
        assert_eq!(LogHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn log_histogram_merge_equals_sequential() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        let mut x = 7u64;
        for i in 0..5000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x >> (x % 50);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.to_sparse(), whole.to_sparse());
    }

    #[test]
    fn log_histogram_sparse_roundtrip() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 31, 32, 33, 1000, u64::MAX] {
            h.record_n(v, v % 7 + 1);
        }
        let (idx, cnt) = h.to_sparse();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(cnt.iter().all(|&c| c > 0));
        let back = LogHistogram::from_sparse(&idx, &cnt).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn log_histogram_sparse_rejects_malformed() {
        assert!(LogHistogram::from_sparse(&[0, 1], &[1]).is_none(), "length mismatch");
        assert!(LogHistogram::from_sparse(&[2, 1], &[1, 1]).is_none(), "unsorted");
        assert!(LogHistogram::from_sparse(&[1, 1], &[1, 1]).is_none(), "duplicate");
        assert!(LogHistogram::from_sparse(&[0], &[0]).is_none(), "zero count");
        let oob = LogHistogram::NUM_BUCKETS as u64;
        assert!(LogHistogram::from_sparse(&[oob], &[1]).is_none(), "index out of range");
        assert!(LogHistogram::from_sparse(&[0, 1], &[u64::MAX, 1]).is_none(), "total overflow");
        assert!(LogHistogram::from_sparse(&[], &[]).is_some_and(|h| h.is_empty()));
    }

    #[test]
    fn time_series_step_semantics() {
        let mut ts = TimeSeries::new();
        ts.push(0, 1.0);
        ts.push(10, 3.0);
        ts.push(20, 5.0);
        assert_eq!(ts.value_at(0), Some(1.0));
        assert_eq!(ts.value_at(9), Some(1.0));
        assert_eq!(ts.value_at(10), Some(3.0));
        assert_eq!(ts.value_at(25), Some(5.0));
        // Average over [0, 20): 1.0 for 10 cycles, 3.0 for 10 cycles.
        assert_eq!(ts.time_weighted_mean(0, 20), Some(2.0));
        assert_eq!(ts.time_weighted_mean(5, 5), None);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }
}
