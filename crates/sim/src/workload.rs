//! Rate-scheduled workload generators.
//!
//! Generalizes the fixed-period [`crate::PulseTrain`] into open-loop
//! arrival processes: Poisson or bursty inter-arrival draws, modulated by
//! composable rate envelopes (diurnal ramps, flash crowds), plus skewed
//! key pickers for hot-set and Zipf access patterns. Everything draws from
//! a [`SimRng`] stream, so a workload is replayed bit-identically from its
//! seed — the property every byte-compare gate in CI relies on.
//!
//! Rates are expressed in integer per-mille factors and gaps in whole
//! cycles so the arrival *schedule* itself stays integer-exact; only the
//! inter-arrival draws consume floating point, in a fixed draw order.
//!
//! ```
//! use rsoc_sim::{Arrival, ArrivalGen, SimRng};
//! let mut gen = ArrivalGen::new(Arrival::Poisson { mean_gap: 20 }, vec![], SimRng::new(7));
//! let a = gen.next_arrival();
//! let b = gen.next_arrival();
//! assert!(b > a); // strictly increasing virtual-cycle times
//! ```

use crate::rng::SimRng;
use crate::script::Window;

/// Inter-arrival process for an open-loop client plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Fixed gap between arrivals (the old `PulseTrain` shape).
    Periodic {
        /// Cycles between consecutive arrivals (min 1).
        gap: u64,
    },
    /// Exponentially distributed gaps: a Poisson arrival process.
    Poisson {
        /// Mean cycles between arrivals (min 1).
        mean_gap: u64,
    },
    /// Closely spaced bursts separated by exponential quiet gaps.
    Bursty {
        /// Arrivals per burst (min 1).
        burst: u32,
        /// Gap between arrivals inside a burst (min 1).
        gap_in: u64,
        /// Mean quiet gap between bursts (min 1).
        mean_gap_between: u64,
    },
}

/// A multiplicative rate envelope applied on top of an [`Arrival`] spec.
///
/// Factors are integer per-mille (1000 = 1.0×). Multiple modifiers
/// compose by product. A higher rate shrinks the drawn gap; gaps are
/// clamped to ≥ 1 cycle so time always advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMod {
    /// Triangle-wave rate swing with the given period: rate ramps
    /// linearly `low → high` over the first half-period and back down
    /// over the second, repeating forever.
    Diurnal {
        /// Full wave period in cycles (min 2).
        period: u64,
        /// Rate factor at the trough, per-mille.
        low_per_mille: u64,
        /// Rate factor at the peak, per-mille.
        high_per_mille: u64,
    },
    /// A step spike: rate is multiplied by `mult_per_mille` while inside
    /// the window, 1.0× outside.
    FlashCrowd {
        /// Cycles during which the crowd is present.
        window: Window,
        /// Rate multiplier inside the window, per-mille.
        mult_per_mille: u64,
    },
}

impl RateMod {
    /// Per-mille rate factor contributed by this modifier at time `now`.
    fn factor_at(&self, now: u64) -> u64 {
        match *self {
            RateMod::Diurnal { period, low_per_mille, high_per_mille } => {
                let period = period.max(2);
                let half = period / 2;
                let phase = now % period;
                // Distance from the trough, folded into [0, half].
                let up = if phase <= half { phase } else { period - phase };
                let (lo, hi) =
                    (low_per_mille.min(high_per_mille), low_per_mille.max(high_per_mille));
                let base = if low_per_mille <= high_per_mille { lo } else { hi };
                let span = hi - lo;
                if low_per_mille <= high_per_mille {
                    base + span * up / half.max(1)
                } else {
                    // Inverted swing: start at the peak.
                    hi - span * up / half.max(1)
                }
            }
            RateMod::FlashCrowd { window, mult_per_mille } => {
                if window.contains(now) {
                    mult_per_mille
                } else {
                    1000
                }
            }
        }
    }
}

/// Deterministic open-loop arrival generator: an [`Arrival`] process
/// modulated by zero or more [`RateMod`] envelopes, yielding strictly
/// increasing absolute virtual-cycle arrival times.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    spec: Arrival,
    mods: Vec<RateMod>,
    rng: SimRng,
    /// Time of the most recent arrival (0 before the first).
    now: u64,
    /// Remaining arrivals in the current burst (Bursty only).
    burst_left: u32,
}

impl ArrivalGen {
    /// Creates a generator. The first arrival lands one drawn gap after
    /// cycle 0. The RNG should be a dedicated fork so other subsystems'
    /// draws never perturb the schedule.
    pub fn new(spec: Arrival, mods: Vec<RateMod>, rng: SimRng) -> Self {
        let burst_left = match spec {
            Arrival::Bursty { burst, .. } => burst.max(1),
            _ => 0,
        };
        ArrivalGen { spec, mods, rng, now: 0, burst_left }
    }

    /// Composed per-mille rate factor at `now` (1000 with no modifiers).
    fn rate_per_mille(&self, now: u64) -> u64 {
        let mut f = 1000u64;
        for m in &self.mods {
            f = (f * m.factor_at(now) / 1000).max(1);
        }
        f
    }

    /// Draws the next base gap from the arrival spec (before modulation).
    fn base_gap(&mut self) -> u64 {
        match self.spec {
            Arrival::Periodic { gap } => gap.max(1),
            Arrival::Poisson { mean_gap } => {
                let g = self.rng.exponential(mean_gap.max(1) as f64);
                (g.round() as u64).max(1)
            }
            Arrival::Bursty { burst, gap_in, mean_gap_between } => {
                if self.burst_left > 1 {
                    self.burst_left -= 1;
                    gap_in.max(1)
                } else {
                    self.burst_left = burst.max(1);
                    let g = self.rng.exponential(mean_gap_between.max(1) as f64);
                    (g.round() as u64).max(1)
                }
            }
        }
    }

    /// Returns the next absolute arrival time in cycles. Strictly
    /// increasing: consecutive arrivals are at least one cycle apart.
    pub fn next_arrival(&mut self) -> u64 {
        let base = self.base_gap();
        // A rate of 2.0× halves the gap; 0.5× doubles it.
        let rate = self.rate_per_mille(self.now);
        let gap = (base * 1000 / rate).max(1);
        self.now = self.now.saturating_add(gap);
        self.now
    }
}

/// Key-access distribution over a bounded keyspace `[0, n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform {
        /// Keyspace size (min 1).
        n: u32,
    },
    /// `hot_per_mille`/1000 of accesses hit the first `hot` keys
    /// uniformly; the rest spread over the full keyspace.
    HotSet {
        /// Keyspace size (min 1).
        n: u32,
        /// Size of the hot set (clamped to `n`).
        hot: u32,
        /// Fraction of accesses routed to the hot set, per-mille.
        hot_per_mille: u32,
    },
    /// Zipf-like skew: key `k` has weight `1/(k+1)^theta` with
    /// `theta = theta_per_mille / 1000`.
    Zipf {
        /// Keyspace size (min 1, capped practically by CDF memory).
        n: u32,
        /// Skew exponent, per-mille (1000 = classic Zipf θ=1).
        theta_per_mille: u32,
    },
}

/// Precomputed sampler for a [`KeyDist`]. Construction is O(n) for Zipf
/// (one CDF table); picking is O(1) or O(log n).
#[derive(Debug, Clone)]
pub struct KeyPicker {
    dist: KeyDist,
    /// Cumulative distribution for Zipf, empty otherwise.
    cdf: Vec<f64>,
}

impl KeyPicker {
    /// Builds the sampler, precomputing the Zipf CDF when needed.
    pub fn new(dist: KeyDist) -> Self {
        let cdf = match dist {
            KeyDist::Zipf { n, theta_per_mille } => {
                let n = n.max(1);
                let theta = theta_per_mille as f64 / 1000.0;
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(n as usize);
                for k in 0..n {
                    acc += 1.0 / ((k + 1) as f64).powf(theta);
                    cdf.push(acc);
                }
                let total = acc;
                for c in &mut cdf {
                    *c /= total;
                }
                cdf
            }
            _ => Vec::new(),
        };
        KeyPicker { dist, cdf }
    }

    /// Number of distinct keys.
    pub fn keyspace(&self) -> u32 {
        match self.dist {
            KeyDist::Uniform { n } | KeyDist::HotSet { n, .. } | KeyDist::Zipf { n, .. } => {
                n.max(1)
            }
        }
    }

    /// Draws a key in `[0, keyspace)`.
    pub fn pick(&self, rng: &mut SimRng) -> u32 {
        match self.dist {
            KeyDist::Uniform { n } => rng.below(n.max(1) as u64) as u32,
            KeyDist::HotSet { n, hot, hot_per_mille } => {
                let n = n.max(1);
                let hot = hot.clamp(1, n);
                if rng.below(1000) < hot_per_mille.min(1000) as u64 {
                    rng.below(hot as u64) as u32
                } else {
                    rng.below(n as u64) as u32
                }
            }
            KeyDist::Zipf { .. } => {
                let u = rng.next_f64();
                // First CDF entry >= u; the last entry is 1.0 by construction.
                match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("CDF is NaN-free")) {
                    Ok(i) | Err(i) => (i.min(self.cdf.len() - 1)) as u32,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mut g: ArrivalGen, k: usize) -> Vec<u64> {
        (0..k).map(|_| g.next_arrival()).collect()
    }

    #[test]
    fn periodic_matches_pulse_train_shape() {
        let g = ArrivalGen::new(Arrival::Periodic { gap: 10 }, vec![], SimRng::new(1));
        assert_eq!(collect(g, 4), vec![10, 20, 30, 40]);
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_replayable() {
        let specs = [
            Arrival::Periodic { gap: 3 },
            Arrival::Poisson { mean_gap: 7 },
            Arrival::Bursty { burst: 4, gap_in: 1, mean_gap_between: 50 },
        ];
        for spec in specs {
            let a = collect(ArrivalGen::new(spec, vec![], SimRng::new(42)), 500);
            let b = collect(ArrivalGen::new(spec, vec![], SimRng::new(42)), 500);
            assert_eq!(a, b, "same seed must replay identically");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "must strictly increase: {spec:?}");
        }
    }

    #[test]
    fn poisson_mean_gap_close() {
        let arrivals = collect(
            ArrivalGen::new(Arrival::Poisson { mean_gap: 20 }, vec![], SimRng::new(9)),
            20_000,
        );
        let span = *arrivals.last().unwrap() - arrivals[0];
        let mean = span as f64 / (arrivals.len() - 1) as f64;
        assert!((mean - 20.0).abs() < 1.5, "mean gap {mean}");
    }

    #[test]
    fn bursty_produces_tight_bursts() {
        let arrivals = collect(
            ArrivalGen::new(
                Arrival::Bursty { burst: 5, gap_in: 1, mean_gap_between: 200 },
                vec![],
                SimRng::new(3),
            ),
            100,
        );
        let tight = arrivals.windows(2).filter(|w| w[1] - w[0] == 1).count();
        // 4 of every 5 gaps are intra-burst.
        assert!(tight >= 70, "tight gaps: {tight}");
    }

    #[test]
    fn flash_crowd_compresses_gaps_inside_window() {
        let mods =
            vec![RateMod::FlashCrowd { window: Window::new(100, 200), mult_per_mille: 4000 }];
        let arrivals =
            collect(ArrivalGen::new(Arrival::Periodic { gap: 8 }, mods, SimRng::new(1)), 60);
        let inside = arrivals.windows(2).filter(|w| Window::new(100, 200).contains(w[0]));
        for w in inside {
            assert_eq!(w[1] - w[0], 2, "4x crowd quarters the gap");
        }
        let before: Vec<_> = arrivals.iter().take_while(|&&t| t < 100).collect();
        assert!(before.windows(2).all(|w| *w[1] - *w[0] == 8));
    }

    #[test]
    fn diurnal_swings_rate_between_trough_and_peak() {
        let m = RateMod::Diurnal { period: 1000, low_per_mille: 500, high_per_mille: 2000 };
        assert_eq!(m.factor_at(0), 500);
        assert_eq!(m.factor_at(500), 2000);
        assert_eq!(m.factor_at(1000), 500);
        let mid = m.factor_at(250);
        assert!((1200..=1300).contains(&mid), "mid-ramp {mid}");
        // Inverted bounds start at the peak instead.
        let inv = RateMod::Diurnal { period: 1000, low_per_mille: 2000, high_per_mille: 500 };
        assert_eq!(inv.factor_at(0), 2000);
        assert_eq!(inv.factor_at(500), 500);
    }

    #[test]
    fn rate_mods_compose_by_product() {
        let mods = vec![
            RateMod::FlashCrowd { window: Window::ALWAYS, mult_per_mille: 2000 },
            RateMod::FlashCrowd { window: Window::ALWAYS, mult_per_mille: 2000 },
        ];
        let arrivals =
            collect(ArrivalGen::new(Arrival::Periodic { gap: 8 }, mods, SimRng::new(1)), 10);
        assert!(arrivals.windows(2).all(|w| w[1] - w[0] == 2), "4x total -> gap 2");
    }

    #[test]
    fn gap_never_collapses_to_zero() {
        let mods = vec![RateMod::FlashCrowd { window: Window::ALWAYS, mult_per_mille: 1_000_000 }];
        let arrivals =
            collect(ArrivalGen::new(Arrival::Periodic { gap: 1 }, mods, SimRng::new(1)), 50);
        assert!(arrivals.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn uniform_picker_covers_keyspace() {
        let p = KeyPicker::new(KeyDist::Uniform { n: 8 });
        let mut rng = SimRng::new(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[p.pick(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(p.keyspace(), 8);
    }

    #[test]
    fn hot_set_skews_to_front() {
        let p = KeyPicker::new(KeyDist::HotSet { n: 1000, hot: 10, hot_per_mille: 900 });
        let mut rng = SimRng::new(11);
        let hot_hits = (0..10_000).filter(|_| p.pick(&mut rng) < 10).count();
        // ~90% routed to the hot set plus ~1% uniform spillover.
        assert!((8_500..=9_500).contains(&hot_hits), "hot hits {hot_hits}");
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let p = KeyPicker::new(KeyDist::Zipf { n: 100, theta_per_mille: 1000 });
        let mut rng = SimRng::new(13);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[p.pick(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50], "{counts:?}");
        // Classic Zipf: rank 0 draws ~1/H(100) ≈ 19% of traffic.
        assert!((7_000..=12_000).contains(&counts[0]), "head count {}", counts[0]);
    }

    #[test]
    fn pickers_replay_identically() {
        for dist in [
            KeyDist::Uniform { n: 64 },
            KeyDist::HotSet { n: 64, hot: 4, hot_per_mille: 800 },
            KeyDist::Zipf { n: 64, theta_per_mille: 900 },
        ] {
            let p = KeyPicker::new(dist);
            let mut r1 = SimRng::new(77);
            let mut r2 = SimRng::new(77);
            for _ in 0..200 {
                assert_eq!(p.pick(&mut r1), p.pick(&mut r2));
            }
        }
    }
}
