//! Virtual time measured in clock cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in clock cycles since simulation start.
///
/// `SimTime` is a newtype over `u64` so that cycle counts cannot be confused
/// with other integral quantities (sequence numbers, node ids, ...).
///
/// ```
/// use rsoc_sim::SimTime;
/// let t = SimTime::from_cycles(100) + 20;
/// assert_eq!(t.cycles(), 120);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a `SimTime` from a raw cycle count.
    pub const fn from_cycles(cycles: u64) -> Self {
        SimTime(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Saturating difference in cycles (`self - earlier`, or 0 if earlier is later).
    pub const fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Checked addition of a cycle delta.
    pub fn checked_add(self, delta: u64) -> Option<SimTime> {
        self.0.checked_add(delta).map(SimTime)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    /// Difference in cycles.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(v: u64) -> Self {
        SimTime(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::ZERO.cycles(), 0);
        assert_eq!(SimTime::from_cycles(42).cycles(), 42);
        assert_eq!(SimTime::from(7u64), SimTime::from_cycles(7));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_cycles(10);
        assert_eq!((t + 5).cycles(), 15);
        let mut u = t;
        u += 3;
        assert_eq!(u.cycles(), 13);
        assert_eq!(u - t, 3);
        assert_eq!(t.saturating_since(u), 0);
        assert_eq!(u.saturating_since(t), 3);
    }

    #[test]
    fn saturation_at_max() {
        assert_eq!((SimTime::MAX + 10), SimTime::MAX);
        assert_eq!(SimTime::MAX.checked_add(1), None);
        assert_eq!(SimTime::from_cycles(1).checked_add(1), Some(SimTime::from_cycles(2)));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_cycles(1) < SimTime::from_cycles(2));
        assert_eq!(format!("{}", SimTime::from_cycles(9)), "9cy");
    }
}
