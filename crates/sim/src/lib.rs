//! # rsoc-sim — deterministic discrete-event simulation kernel
//!
//! Foundation for every simulator in the workspace: virtual time in cycles,
//! a deterministic discrete-event engine, a seeded pseudo-random number
//! generator with stream forking, and online statistics collectors.
//!
//! All higher layers (NoC, BFT protocols, FPGA fabric, rejuvenation epochs)
//! run on this kernel so that every experiment in the paper reproduction is
//! bit-reproducible from a single seed.
//!
//! ## Example
//!
//! ```
//! use rsoc_sim::{Engine, SimTime};
//!
//! // World state: a counter bumped by scheduled events.
//! let mut world = 0u32;
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_cycles(10), Box::new(|w: &mut u32, e| {
//!     *w += 1;
//!     // Events may schedule follow-up events.
//!     e.schedule_in(5, Box::new(|w: &mut u32, _| *w += 10));
//! }));
//! engine.run(&mut world);
//! assert_eq!(world, 11);
//! assert_eq!(engine.now(), SimTime::from_cycles(15));
//! ```

pub mod engine;
pub mod rng;
pub mod script;
pub mod slab;
pub mod stats;
pub mod time;
pub mod wheel;
pub mod workload;

pub use engine::{Action, Engine};
pub use rng::SimRng;
pub use script::{PulseTrain, Window};
pub use slab::Slab;
pub use stats::{Counter, Histogram, LogHistogram, OnlineStats, TimeSeries};
pub use time::SimTime;
pub use wheel::TimingWheel;
pub use workload::{Arrival, ArrivalGen, KeyDist, KeyPicker, RateMod};
