//! Scripted event sources: deterministic, windowed pulse trains.
//!
//! Fault campaigns need event schedules that are *data*, not code — a DoS
//! flood injecting every `period` cycles over a window, a replay attack
//! firing bursts on a fixed cadence, a rejuvenation policy waking on a
//! schedule. [`PulseTrain`] is the shared primitive: a half-open cycle
//! window `[start, until)` ticked every `period` cycles, queryable both
//! as an iterator of absolute times and point-wise (`first` /
//! `next_after`) for event-driven engines that chain one wakeup at a
//! time. Pure arithmetic, no RNG: the same train always yields the same
//! schedule, which is what lets scenario sweeps run byte-identical under
//! any `--jobs` count.

/// A half-open cycle window `[from, until)` — the shared time-phasing
/// primitive of every fault script (replica scripts, message-plane link
/// faults, and the NoC's `LinkScript` all interpret windows through this
/// one type, so their containment semantics cannot drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First cycle the window is active.
    pub from: u64,
    /// First cycle the window is over (`u64::MAX` = never heals).
    pub until: u64,
}

impl Window {
    /// The always-active window.
    pub const ALWAYS: Window = Window { from: 0, until: u64::MAX };

    /// A window spanning `[from, until)`.
    pub fn new(from: u64, until: u64) -> Self {
        Window { from, until }
    }

    /// A window active from `from` onwards, never healing.
    pub fn from(from: u64) -> Self {
        Window { from, until: u64::MAX }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: u64) -> bool {
        now >= self.from && now < self.until
    }

    /// Whether the window is over by `now` (a `u64::MAX` window never is).
    pub fn healed_by(&self, now: u64) -> bool {
        self.until <= now
    }
}

/// A deterministic pulse schedule: ticks at `start`, `start + period`,
/// `start + 2·period`, … while strictly below `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseTrain {
    /// First tick.
    pub start: u64,
    /// First cycle past the schedule (`u64::MAX` = unbounded).
    pub until: u64,
    /// Cycles between ticks (clamped to ≥ 1 on construction).
    pub period: u64,
}

impl PulseTrain {
    /// A train ticking every `period` cycles in `[start, until)`.
    /// `period` is clamped to at least 1.
    pub fn new(start: u64, until: u64, period: u64) -> Self {
        PulseTrain { start, until, period: period.max(1) }
    }

    /// The first tick, if the window is non-empty.
    pub fn first(&self) -> Option<u64> {
        (self.start < self.until).then_some(self.start)
    }

    /// The earliest tick strictly after `t`, if any.
    pub fn next_after(&self, t: u64) -> Option<u64> {
        let next = if t < self.start {
            self.start
        } else {
            // First multiple of `period` past `t`, anchored at `start`.
            let elapsed = t - self.start;
            self.start + (elapsed / self.period + 1) * self.period
        };
        (next < self.until).then_some(next)
    }

    /// Number of ticks the train fires in total.
    pub fn len(&self) -> u64 {
        if self.start >= self.until {
            return 0;
        }
        (self.until - 1 - self.start) / self.period + 1
    }

    /// True when the train never fires.
    pub fn is_empty(&self) -> bool {
        self.start >= self.until
    }

    /// Iterates all tick times in order.
    pub fn iter(&self) -> PulseIter {
        PulseIter { train: *self, next: self.first() }
    }
}

impl IntoIterator for PulseTrain {
    type Item = u64;
    type IntoIter = PulseIter;

    fn into_iter(self) -> PulseIter {
        self.iter()
    }
}

/// Iterator over a [`PulseTrain`]'s tick times.
#[derive(Debug, Clone)]
pub struct PulseIter {
    train: PulseTrain,
    next: Option<u64>,
}

impl Iterator for PulseIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let cur = self.next?;
        self.next = self.train.next_after(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_contain_and_heal() {
        let w = Window::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!w.healed_by(19));
        assert!(w.healed_by(20));
        assert!(Window::ALWAYS.contains(u64::MAX - 1));
        assert!(!Window::ALWAYS.healed_by(u64::MAX - 1));
        assert!(Window::from(5).contains(5));
        assert!(!Window::from(5).contains(4));
    }

    #[test]
    fn ticks_cover_the_window() {
        let t = PulseTrain::new(10, 50, 15);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![10, 25, 40]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn point_queries_match_iteration() {
        let t = PulseTrain::new(7, 100, 9);
        let all: Vec<u64> = t.iter().collect();
        assert_eq!(t.first(), Some(7));
        for pair in all.windows(2) {
            assert_eq!(t.next_after(pair[0]), Some(pair[1]));
            // Any time strictly inside the gap resolves to the same tick.
            assert_eq!(t.next_after(pair[1] - 1), Some(pair[1]));
        }
        assert_eq!(t.next_after(*all.last().unwrap()), None);
        assert_eq!(t.next_after(0), Some(7), "before the window: first tick");
        assert_eq!(all.len() as u64, t.len());
    }

    #[test]
    fn empty_and_degenerate_windows() {
        assert!(PulseTrain::new(5, 5, 10).is_empty());
        assert_eq!(PulseTrain::new(5, 5, 10).first(), None);
        assert_eq!(PulseTrain::new(9, 2, 1).len(), 0);
        // period 0 clamps to 1 instead of looping forever.
        let t = PulseTrain::new(0, 3, 0);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn single_tick_window() {
        let t = PulseTrain::new(42, 43, 100);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![42]);
        assert_eq!(t.next_after(42), None);
    }
}
