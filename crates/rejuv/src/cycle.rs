//! A full rejuvenation cycle on a *live* replicated cluster — the bridge
//! between this crate's APT-level rejuvenation policies (when to recycle a
//! replica) and the protocol-level machinery that makes recycling safe
//! (certified checkpoints + collaborative state transfer in
//! [`rsoc_bft::checkpoint`]).
//!
//! The cycle the paper's §II-C sketches: a replica **leaves** the group
//! (its volatile state is wiped — the rejuvenation proper, standing in for
//! reload-from-clean-image), then **re-joins** and discovers via peer
//! checkpoint vouchers that certified history exists beyond its empty log,
//! completes a **state transfer** (certificate-checked snapshot + suffix
//! replay), and resumes ordering. The [`ScenarioOracle`] judges the run:
//! safety and digest convergence are unconditional, liveness is expected
//! (the cluster must absorb the rejuvenation without losing the workload).

use rsoc_bft::adversary::{ReplicaScript, Scenario, ScenarioOracle};
use rsoc_bft::api::{Cluster, ReplicaNode};
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run_scenario, RunConfig};

/// Which replication protocol hosts the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleProtocol {
    /// PBFT, 3f+1 replicas.
    Pbft,
    /// MinBFT, 2f+1 replicas (the USIG survives rejuvenation — it is the
    /// trusted component).
    MinBft,
    /// Primary-backup pair.
    Passive,
}

impl CycleProtocol {
    /// Display name (matches the bench campaign's protocol column).
    pub fn name(self) -> &'static str {
        match self {
            CycleProtocol::Pbft => "pbft",
            CycleProtocol::MinBft => "minbft",
            CycleProtocol::Passive => "passive",
        }
    }
}

/// Parameters of one rejuvenation cycle.
#[derive(Debug, Clone)]
pub struct CycleConfig {
    /// Protocol under test.
    pub protocol: CycleProtocol,
    /// Fault threshold (passive ignores this — it is always a pair).
    pub f: u32,
    /// Workload clients.
    pub clients: u32,
    /// Requests per client.
    pub requests_per_client: u64,
    /// Run seed (drives payloads, latencies, and MAC keys).
    pub seed: u64,
    /// Certified-checkpoint interval in executed ops (must be > 0 — a
    /// cycle without checkpoints cannot re-join).
    pub checkpoint_interval: u64,
    /// Which replica rejuvenates.
    pub replica: u32,
    /// Virtual time of the wipe (must land inside the active load phase:
    /// re-join is driven by live traffic).
    pub at: u64,
    /// Simulation budget.
    pub max_cycles: u64,
}

impl Default for CycleConfig {
    fn default() -> Self {
        CycleConfig {
            protocol: CycleProtocol::MinBft,
            f: 1,
            clients: 4,
            requests_per_client: 12,
            seed: 0x000C_1C1E,
            checkpoint_interval: 3,
            replica: 1,
            at: 150,
            max_cycles: 20_000_000,
        }
    }
}

/// What one rejuvenation cycle produced.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// Workload ops committed (quorum replies observed by clients).
    pub committed: u64,
    /// Wipes actually performed by the harness.
    pub rejuvenations: u64,
    /// Completed state-transfer installs across the cluster (≥ 1 means
    /// the wiped replica genuinely re-joined through transfer).
    pub transfers: u64,
    /// Highest stable certified watermark seen by any replica.
    pub stable_seq: u64,
    /// Vouchers/certificates/snapshots rejected by verification.
    pub rejected: u64,
    /// Virtual duration of the run (cycles) — useful for placing the
    /// wipe inside the active load phase.
    pub duration_cycles: u64,
    /// The oracle's overall verdict (safety + digest convergence +
    /// liveness).
    pub oracle_pass: bool,
    /// Digest convergence specifically: equally-advanced correct replicas
    /// hold byte-identical state digests at quiesce.
    pub converged: bool,
}

impl CycleReport {
    /// The cycle succeeded: the oracle passed AND the re-join went
    /// through state transfer (not a trivial replay).
    pub fn rejoined(&self) -> bool {
        self.oracle_pass && self.converged && self.rejuvenations >= 1 && self.transfers >= 1
    }
}

fn run_cycle<C: Cluster>(
    cluster: &mut C,
    run: &RunConfig,
    scenario: &Scenario,
    expected_ops: u64,
) -> CycleReport {
    let outcome = run_scenario(cluster, run, scenario);
    let verdict =
        ScenarioOracle::expecting_liveness().judge(cluster, &outcome.report, expected_ops);
    let mut transfers = 0;
    let mut stable_seq = 0;
    let mut rejected = 0;
    for node in cluster.nodes() {
        let stats = node.checkpoint_stats();
        transfers += stats.transfers;
        stable_seq = stable_seq.max(stats.stable_seq);
        rejected += stats.rejected;
    }
    CycleReport {
        committed: outcome.report.committed,
        rejuvenations: outcome.rejuvenations,
        transfers,
        stable_seq,
        rejected,
        duration_cycles: outcome.report.duration_cycles,
        oracle_pass: verdict.pass(),
        converged: verdict.digests_ok,
    }
}

/// Runs one leave → wipe → re-join → transfer cycle and reports whether
/// the rejuvenated replica re-converged.
pub fn rejuvenation_cycle(cfg: &CycleConfig) -> CycleReport {
    let run = RunConfig::builder()
        .f(cfg.f)
        .clients(cfg.clients)
        .requests_per_client(cfg.requests_per_client)
        .seed(cfg.seed)
        .checkpoint_interval(cfg.checkpoint_interval)
        .max_cycles(cfg.max_cycles)
        .build();
    let scenario =
        Scenario::none().script(cfg.replica, ReplicaScript::correct().rejuvenate_at(cfg.at));
    let expected = cfg.clients as u64 * cfg.requests_per_client;
    match cfg.protocol {
        CycleProtocol::Pbft => run_cycle(&mut PbftCluster::new(&run), &run, &scenario, expected),
        CycleProtocol::MinBft => {
            run_cycle(&mut MinBftCluster::new(&run), &run, &scenario, expected)
        }
        CycleProtocol::Passive => {
            run_cycle(&mut PassiveCluster::new(&run), &run, &scenario, expected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minbft_cycle_rejoins_via_state_transfer() {
        let report = rejuvenation_cycle(&CycleConfig::default());
        assert!(report.oracle_pass, "oracle failed: {report:?}");
        assert!(report.rejoined(), "no genuine re-join: {report:?}");
        assert_eq!(report.committed, 48);
    }

    #[test]
    fn pbft_cycle_rejoins_via_state_transfer() {
        let cfg = CycleConfig { protocol: CycleProtocol::Pbft, ..CycleConfig::default() };
        let report = rejuvenation_cycle(&cfg);
        assert!(report.oracle_pass, "oracle failed: {report:?}");
        assert!(report.rejoined(), "no genuine re-join: {report:?}");
    }

    #[test]
    fn passive_backup_cycle_reconverges() {
        let cfg = CycleConfig { protocol: CycleProtocol::Passive, ..CycleConfig::default() };
        let report = rejuvenation_cycle(&cfg);
        assert!(report.oracle_pass, "oracle failed: {report:?}");
        assert!(report.rejoined(), "no genuine re-join: {report:?}");
        assert_eq!(report.committed, 48);
    }

    #[test]
    fn cycle_without_checkpoints_cannot_transfer() {
        let cfg = CycleConfig { checkpoint_interval: 0, ..CycleConfig::default() };
        let report = rejuvenation_cycle(&cfg);
        assert_eq!(report.transfers, 0, "transfer requires certified checkpoints");
        assert_eq!(report.stable_seq, 0);
    }
}
