//! # rsoc-rejuv — rejuvenation policies under advanced persistent threats
//!
//! §II-C of the paper: "Rejuvenation is the third complementary ingredient
//! to replication and diversity. These latter techniques can only maintain
//! resilience as long as the assumed number of failing replicas f is fixed.
//! ... This would even be more effective when rejuvenation is simultaneous
//! with diversity, which allows the rejuvenation to a different
//! implementation with identical functionality, in consequence, reducing
//! the success rate of APTs."
//!
//! The simulator pits a replicated system (n replicas on tiles, f-threshold)
//! against an APT adversary who develops exploits per *variant*; developed
//! exploits are kept in an inventory, so rejuvenating to the **same**
//! variant invites instant re-compromise while **diverse** rejuvenation
//! forces fresh exploit development — exactly the paper's argument.
//! Experiment **E6** sweeps the policies.
//!
//! ## Example
//!
//! ```
//! use rsoc_rejuv::apt::mean_time_to_failure;
//! use rsoc_rejuv::{AptConfig, Policy};
//! use rsoc_sim::SimRng;
//!
//! let cfg = AptConfig { n_replicas: 4, f: 1, horizon: 50_000, ..Default::default() };
//! let rng = SimRng::new(1);
//! let none = mean_time_to_failure(&cfg, Policy::None, 10, &rng);
//! let diverse =
//!     mean_time_to_failure(&cfg, Policy::PeriodicDiverse { interval: 2_000 }, 10, &rng);
//! assert!(diverse > none);
//! ```

pub mod apt;
pub mod cycle;

pub use apt::{
    analytic_mttf_no_rejuvenation, mean_time_to_failure, simulate, AptConfig, Policy, RejuvReport,
};
pub use cycle::{rejuvenation_cycle, CycleConfig, CycleProtocol, CycleReport};
