//! The APT-vs-rejuvenation epoch simulator.

use rsoc_diversity::{PoolConfig, VariantId, VariantPool};
use rsoc_sim::SimRng;
use std::collections::BTreeSet;

/// Rejuvenation policies (§II-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Never rejuvenate — the paper's doomed baseline.
    None,
    /// Restart each replica every `interval`, keeping its variant
    /// (classic software rejuvenation: clears the compromise, not the
    /// vulnerability).
    PeriodicSame {
        /// Cycles between rejuvenations of the same replica.
        interval: u64,
    },
    /// Restart each replica every `interval` onto a *different* variant
    /// (diverse rejuvenation — the paper's recommended combination).
    PeriodicDiverse {
        /// Cycles between rejuvenations of the same replica.
        interval: u64,
    },
    /// Rejuvenate (diversely) when a compromise is detected; detection of a
    /// compromised replica succeeds per check with the given probability.
    ReactiveDiverse {
        /// Cycles between intrusion-detector sweeps.
        check_interval: u64,
        /// Per-sweep probability that a compromised replica is spotted.
        detection_prob: f64,
    },
}

/// APT scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AptConfig {
    /// Replica count.
    pub n_replicas: usize,
    /// Fault threshold: the system fails when more than `f` replicas are
    /// simultaneously compromised.
    pub f: usize,
    /// Mean exploit-development time per variant (exponential).
    pub mean_exploit_time: f64,
    /// Cycles a replica is offline while rejuvenating.
    pub rejuvenation_downtime: u64,
    /// Simulation horizon.
    pub horizon: u64,
    /// Variant pool parameters.
    pub pool: PoolConfig,
    /// Whether the initial assignment is diverse (distinct variants) or a
    /// monoculture (all replicas run variant 0).
    pub initial_diverse: bool,
}

impl Default for AptConfig {
    fn default() -> Self {
        AptConfig {
            n_replicas: 4,
            f: 1,
            mean_exploit_time: 3_000.0,
            rejuvenation_downtime: 50,
            horizon: 200_000,
            pool: PoolConfig::default(),
            initial_diverse: true,
        }
    }
}

/// Outcome of one APT campaign simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RejuvReport {
    /// First time more than `f` replicas were simultaneously compromised
    /// (== horizon when the system survived).
    pub time_to_failure: u64,
    /// Whether the system survived the horizon.
    pub survived: bool,
    /// Fraction of time the service had at most `f` replicas unavailable
    /// (compromised or rejuvenating).
    pub availability: f64,
    /// Rejuvenations performed.
    pub rejuvenations: u64,
    /// Exploits the adversary finished developing.
    pub exploits_developed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ReplicaState {
    Healthy,
    Compromised,
    Rejuvenating { until: u64 },
}

/// Runs one campaign of the APT against the replicated system under
/// `policy`.
///
/// Adversary model (documented in DESIGN.md §5): the APT is
/// *effort-bounded* — it develops one exploit at a time, greedily targeting
/// the deployed variant that covers the most currently-healthy replicas.
/// Development takes an `Exp(mean_exploit_time)` delay; if the target
/// variant disappears from the fleet mid-campaign (diverse rejuvenation!)
/// the effort is wasted and the adversary re-targets. Finished exploits
/// enter a permanent inventory and instantly compromise every replica
/// running that variant — now or whenever one rejuvenates back onto it.
///
/// # Panics
/// Panics if `f >= n_replicas`.
pub fn simulate(config: &AptConfig, policy: Policy, rng: &mut SimRng) -> RejuvReport {
    assert!(config.f < config.n_replicas, "need n > f");
    let mut pool = VariantPool::generate(config.pool, rng);
    // Initial assignment.
    let mut assignment: Vec<VariantId> = (0..config.n_replicas)
        .map(|i| {
            if config.initial_diverse {
                VariantId((i as u32) % config.pool.initial_variants)
            } else {
                VariantId(0)
            }
        })
        .collect();
    let mut state = vec![ReplicaState::Healthy; config.n_replicas];

    // Adversary: one sequential campaign plus the finished-exploit inventory.
    let mut campaign: Option<(VariantId, u64)> = None;
    let mut inventory: BTreeSet<VariantId> = BTreeSet::new();

    let step: u64 = 10; // simulation tick granularity
    let mut time_to_failure = config.horizon;
    let mut survived = true;
    let mut up_time: u64 = 0;
    let mut rejuvenations: u64 = 0;
    let mut exploits_developed: u64 = 0;
    let mut last_check: u64 = 0;

    let mut now: u64 = 0;
    while now < config.horizon {
        now += step;

        // 1. Adversary (re-)targets and finishes exploits.
        if let Some((target, _)) = campaign {
            // Diverse rejuvenation may have retired the target variant:
            // the campaign's remaining effort is wasted.
            if !assignment.contains(&target) {
                campaign = None;
            }
        }
        if campaign.is_none() {
            // Greedy: deployed variant (not yet exploited) covering the most
            // replicas; deterministic tie-break by id.
            let mut counts: std::collections::BTreeMap<VariantId, usize> =
                std::collections::BTreeMap::new();
            for &v in &assignment {
                if !inventory.contains(&v) {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            if let Some((&best, _)) =
                counts.iter().max_by_key(|(v, c)| (**c, std::cmp::Reverse(v.0)))
            {
                let deadline = now + rng.exponential(config.mean_exploit_time).ceil() as u64 + 1;
                campaign = Some((best, deadline));
            }
        }
        if let Some((target, deadline)) = campaign {
            if deadline <= now {
                inventory.insert(target);
                exploits_developed += 1;
                campaign = None;
            }
        }

        // 2. Rejuvenations finish.
        for s in state.iter_mut() {
            if let ReplicaState::Rejuvenating { until } = *s {
                if until <= now {
                    *s = ReplicaState::Healthy;
                }
            }
        }

        // 3. Inventory exploits strike everything running a broken variant.
        for i in 0..config.n_replicas {
            if state[i] == ReplicaState::Healthy && inventory.contains(&assignment[i]) {
                state[i] = ReplicaState::Compromised;
            }
        }

        // 4. Policy acts.
        match policy {
            Policy::None => {}
            Policy::PeriodicSame { interval } | Policy::PeriodicDiverse { interval } => {
                // Staggered: replica i rejuvenates at phase i*interval/n.
                for i in 0..config.n_replicas {
                    let phase = (interval / config.n_replicas as u64).max(1) * i as u64;
                    let due = now >= phase && (now - phase) % interval < step;
                    if due && !matches!(state[i], ReplicaState::Rejuvenating { .. }) {
                        rejuvenations += 1;
                        state[i] = ReplicaState::Rejuvenating {
                            until: now + config.rejuvenation_downtime,
                        };
                        if matches!(policy, Policy::PeriodicDiverse { .. }) {
                            let avoid: Vec<VariantId> = assignment
                                .iter()
                                .copied()
                                .chain(inventory.iter().copied())
                                .collect();
                            assignment[i] = pool.diverse_replacement(&avoid, rng);
                        }
                    }
                }
            }
            Policy::ReactiveDiverse { check_interval, detection_prob } => {
                if now - last_check >= check_interval {
                    last_check = now;
                    for i in 0..config.n_replicas {
                        if state[i] == ReplicaState::Compromised && rng.chance(detection_prob) {
                            rejuvenations += 1;
                            state[i] = ReplicaState::Rejuvenating {
                                until: now + config.rejuvenation_downtime,
                            };
                            let avoid: Vec<VariantId> = assignment
                                .iter()
                                .copied()
                                .chain(inventory.iter().copied())
                                .collect();
                            assignment[i] = pool.diverse_replacement(&avoid, rng);
                        }
                    }
                }
            }
        }

        // 5. Bookkeeping.
        let compromised = state.iter().filter(|s| **s == ReplicaState::Compromised).count();
        let unavailable = state.iter().filter(|s| !matches!(s, ReplicaState::Healthy)).count();
        if compromised > config.f && survived {
            survived = false;
            time_to_failure = now;
        }
        if unavailable <= config.f {
            up_time += step;
        }
        if !survived {
            // Keep accumulating availability so reports compare fairly, but
            // the campaign's headline number is fixed; stop early to save work.
            break;
        }
    }

    RejuvReport {
        time_to_failure,
        survived,
        availability: up_time as f64 / time_to_failure.max(1) as f64,
        rejuvenations,
        exploits_developed,
    }
}

/// Convenience: mean time-to-failure over `trials` independent campaigns.
pub fn mean_time_to_failure(config: &AptConfig, policy: Policy, trials: u32, rng: &SimRng) -> f64 {
    assert!(trials > 0, "need at least one trial");
    (0..trials)
        .map(|t| {
            let mut stream = rng.fork(t as u64 + 1);
            simulate(config, policy, &mut stream).time_to_failure as f64
        })
        .sum::<f64>()
        / trials as f64
}

/// Closed-form MTTF for the no-rejuvenation baseline, used to
/// cross-validate the simulator.
///
/// With a monoculture, one exploit fells everything: MTTF = mean exploit
/// time. With a fully diverse fleet (every variant on ≤ f replicas and
/// uniform coverage), the sequential adversary needs `ceil((f+1) /
/// replicas_per_variant)` exploits; with one replica per variant that is
/// `f+1` sequential campaigns: MTTF = (f+1) · mean exploit time.
pub fn analytic_mttf_no_rejuvenation(config: &AptConfig) -> f64 {
    if !config.initial_diverse {
        return config.mean_exploit_time;
    }
    let distinct = (config.n_replicas as u32).min(config.pool.initial_variants) as usize;
    let per_variant = config.n_replicas.div_ceil(distinct);
    let exploits_needed = (config.f + 1).div_ceil(per_variant);
    exploits_needed as f64 * config.mean_exploit_time
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> AptConfig {
        AptConfig {
            n_replicas: 4,
            f: 1,
            mean_exploit_time: 2_000.0,
            horizon: 60_000,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = fast_config();
        let a = simulate(&cfg, Policy::None, &mut SimRng::new(3));
        let b = simulate(&cfg, Policy::None, &mut SimRng::new(3));
        assert_eq!(a, b);
    }

    #[test]
    fn no_rejuvenation_eventually_falls() {
        let cfg = AptConfig { horizon: 2_000_000, ..fast_config() };
        let rng = SimRng::new(4);
        let mut failures = 0;
        for t in 0..20 {
            let mut stream = rng.fork(t);
            if !simulate(&cfg, Policy::None, &mut stream).survived {
                failures += 1;
            }
        }
        assert!(failures >= 18, "without rejuvenation the APT should win: {failures}/20");
    }

    #[test]
    fn diverse_rejuvenation_beats_none() {
        let cfg = fast_config();
        let rng = SimRng::new(5);
        let mttf_none = mean_time_to_failure(&cfg, Policy::None, 30, &rng);
        let mttf_div =
            mean_time_to_failure(&cfg, Policy::PeriodicDiverse { interval: 1_500 }, 30, &rng);
        assert!(
            mttf_div > mttf_none * 1.2,
            "diverse rejuvenation must clearly extend survival: {mttf_div} vs {mttf_none}"
        );
    }

    #[test]
    fn diverse_beats_same_variant_rejuvenation() {
        // Same-variant restarts don't clear the vulnerability: the exploit
        // inventory re-compromises instantly.
        let cfg = fast_config();
        let rng = SimRng::new(6);
        let mttf_same =
            mean_time_to_failure(&cfg, Policy::PeriodicSame { interval: 1_500 }, 30, &rng);
        let mttf_div =
            mean_time_to_failure(&cfg, Policy::PeriodicDiverse { interval: 1_500 }, 30, &rng);
        assert!(
            mttf_div > mttf_same,
            "diversity is what defeats the APT: diverse {mttf_div} vs same {mttf_same}"
        );
    }

    #[test]
    fn monoculture_falls_faster_than_diverse_start() {
        let rng = SimRng::new(7);
        let mono = AptConfig { initial_diverse: false, horizon: 2_000_000, ..fast_config() };
        let div = AptConfig { initial_diverse: true, horizon: 2_000_000, ..fast_config() };
        let mttf_mono = mean_time_to_failure(&mono, Policy::None, 30, &rng);
        let mttf_div = mean_time_to_failure(&div, Policy::None, 30, &rng);
        assert!(mttf_div > mttf_mono, "one exploit kills a monoculture: {mttf_div} vs {mttf_mono}");
    }

    #[test]
    fn reactive_policy_rejuvenates_only_on_detection() {
        let cfg = fast_config();
        let mut rng = SimRng::new(8);
        let report = simulate(
            &cfg,
            Policy::ReactiveDiverse { check_interval: 200, detection_prob: 0.9 },
            &mut rng,
        );
        // Rejuvenation count is bounded by compromises, not by elapsed time.
        assert!(report.rejuvenations <= report.exploits_developed * cfg.n_replicas as u64 + 4);
    }

    #[test]
    fn availability_accounts_for_downtime() {
        let cfg = AptConfig {
            mean_exploit_time: 1e12, // adversary effectively absent
            rejuvenation_downtime: 5_000,
            horizon: 50_000,
            ..fast_config()
        };
        let mut rng = SimRng::new(9);
        // Very aggressive rejuvenation with huge downtime hurts availability.
        let report = simulate(&cfg, Policy::PeriodicDiverse { interval: 6_000 }, &mut rng);
        assert!(report.survived);
        assert!(
            report.availability < 1.0,
            "downtime must show up: availability={}",
            report.availability
        );
        // While doing nothing keeps availability at 1.
        let idle = simulate(&cfg, Policy::None, &mut SimRng::new(9));
        assert_eq!(idle.availability, 1.0);
    }

    #[test]
    fn simulation_matches_analytic_mttf() {
        // Cross-validation against closed forms (DESIGN.md §6): the
        // simulator's mean TTF without rejuvenation should sit within 15%
        // of the analytic expectation for both extremes.
        let rng = SimRng::new(42);
        let horizon = 10_000_000; // effectively unbounded
        let mono = AptConfig { initial_diverse: false, horizon, ..fast_config() };
        let sim_mono = mean_time_to_failure(&mono, Policy::None, 300, &rng);
        let ana_mono = analytic_mttf_no_rejuvenation(&mono);
        assert!(
            (sim_mono - ana_mono).abs() / ana_mono < 0.15,
            "monoculture: simulated {sim_mono} vs analytic {ana_mono}"
        );
        let diverse = AptConfig { initial_diverse: true, horizon, ..fast_config() };
        let sim_div = mean_time_to_failure(&diverse, Policy::None, 300, &rng.fork(1));
        let ana_div = analytic_mttf_no_rejuvenation(&diverse);
        assert!(
            (sim_div - ana_div).abs() / ana_div < 0.15,
            "diverse: simulated {sim_div} vs analytic {ana_div}"
        );
        // And the ratio between them is the predicted (f+1)x.
        assert!((sim_div / sim_mono - 2.0).abs() < 0.35, "ratio {}", sim_div / sim_mono);
    }

    #[test]
    #[should_panic(expected = "need n > f")]
    fn rejects_degenerate_threshold() {
        let cfg = AptConfig { n_replicas: 2, f: 2, ..Default::default() };
        simulate(&cfg, Policy::None, &mut SimRng::new(1));
    }
}
