//! The open-loop workload plane: arrivals injected on a rate schedule,
//! users drawn from a skewed population, latencies log-bucketed. These
//! tests pin the plane's contract — every injected op commits exactly
//! once, the histogram accounts for every commit, and the whole report
//! is a pure function of `(config, spec)`.

use rsoc_bft::api::Cluster;
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{run_open_loop, OpenLoopReport, OpenLoopSpec, RunConfig};
use rsoc_sim::{Arrival, KeyDist, RateMod, Window};

fn spec(total_ops: u64) -> OpenLoopSpec {
    OpenLoopSpec {
        arrival: Arrival::Poisson { mean_gap: 40 },
        mods: vec![RateMod::FlashCrowd { window: Window::new(2_000, 6_000), mult_per_mille: 3000 }],
        users: KeyDist::HotSet { n: 5_000, hot: 16, hot_per_mille: 500 },
        total_ops,
    }
}

fn config(seed: u64) -> RunConfig {
    RunConfig {
        f: 1,
        seed,
        checkpoint_interval: 16,
        batch_size: 4,
        max_cycles: 40_000_000,
        ..RunConfig::default()
    }
}

fn run_one<C: Cluster>(mut cluster: C, seed: u64, total: u64) -> OpenLoopReport {
    let cfg = config(seed);
    run_open_loop(&mut cluster, &cfg, &spec(total), &rsoc_bft::adversary::Scenario::none())
}

fn assert_plane_contract(r: &OpenLoopReport, total: u64) {
    assert_eq!(r.issued, total, "{}: the generator must inject every op", r.protocol);
    assert_eq!(r.committed, total, "{}: every op commits exactly once", r.protocol);
    assert!(r.safety_ok, "{}: logs must stay prefix-compatible", r.protocol);
    assert_eq!(
        r.latency.count(),
        r.committed,
        "{}: the histogram accounts for every commit",
        r.protocol
    );
    assert!(r.distinct_users > 100, "{}: {} users", r.protocol, r.distinct_users);
    assert!(r.latency.quantile(0.5) <= r.latency.quantile(0.999), "{}", r.protocol);
}

#[test]
fn pbft_open_loop_commits_all_arrivals() {
    let cfg = config(17);
    let r = run_one(PbftCluster::new(&cfg), 17, 600);
    assert_plane_contract(&r, 600);
}

#[test]
fn minbft_open_loop_commits_all_arrivals() {
    let cfg = config(19);
    let r = run_one(MinBftCluster::new(&cfg), 19, 600);
    assert_plane_contract(&r, 600);
}

#[test]
fn passive_open_loop_commits_all_arrivals() {
    let cfg = config(23);
    let r = run_one(PassiveCluster::new(&cfg), 23, 600);
    assert_plane_contract(&r, 600);
}

/// The whole report — counts, distinct users, and the histogram's sparse
/// serialization — must replay bit-identically from the seed. This is
/// the property the sharded sweep's byte-compare gate rests on.
#[test]
fn open_loop_replays_bit_identically() {
    let cfg = config(29);
    let a = run_one(PbftCluster::new(&cfg), 29, 400);
    let b = run_one(PbftCluster::new(&cfg), 29, 400);
    assert_eq!(a.issued, b.issued);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.distinct_users, b.distinct_users);
    assert_eq!(a.messages_total, b.messages_total);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.duration_cycles, b.duration_cycles);
    assert_eq!(a.latency.to_sparse(), b.latency.to_sparse());
}

/// A population far beyond the closed-loop client count: the paged user
/// table must track distinct identities without per-user allocation, and
/// uniform traffic over a 200k keyspace must touch a large slice of it.
#[test]
fn open_loop_scales_to_large_sparse_populations() {
    let cfg = RunConfig {
        f: 1,
        seed: 31,
        batch_size: 8,
        max_cycles: 200_000_000,
        ..RunConfig::default()
    };
    let s = OpenLoopSpec {
        arrival: Arrival::Periodic { gap: 12 },
        mods: vec![],
        users: KeyDist::Uniform { n: 200_000 },
        total_ops: 5_000,
    };
    let mut cluster = PassiveCluster::new(&cfg);
    let r = run_open_loop(&mut cluster, &cfg, &s, &rsoc_bft::adversary::Scenario::none());
    assert_eq!(r.committed, 5_000);
    // 5k uniform draws over 200k users: collisions are rare, so nearly
    // every draw is a fresh identity.
    assert!(r.distinct_users > 4_800, "distinct users {}", r.distinct_users);
}
