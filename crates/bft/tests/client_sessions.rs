//! Regression: retry dedup must survive a rejuvenation wipe + CST re-join.
//!
//! The executed-reply index is volatile; before client sessions were
//! snapshotted into the checkpoint image, a wiped replica that re-joined
//! through state transfer lost every reply below the certified watermark.
//! A client retrying one of those ops then got *silence* from the
//! re-joined replica (on a backup the request parks in `pending`
//! forever). These tests pin the fix: after the re-join, the retry of a
//! committed op below the installed watermark must draw the
//! byte-identical reply a never-wiped replica serves, without touching
//! the state machine.
//!
//! The re-join is driven white-box — wipe after the workload completes,
//! then pump the replica-to-replica traffic (state request → certified
//! responses → install) by hand — so the retried op is *guaranteed* to
//! sit at or below the installed watermark. Only the session snapshot
//! inside the checkpoint image can know its reply.

use rsoc_bft::adversary::ReplicaScript;
use rsoc_bft::api::{ClientId, Cluster, Endpoint, Input, OpId, Outbox, ReplicaNode, Request};
use rsoc_bft::minbft::MinBftCluster;
use rsoc_bft::passive::PassiveCluster;
use rsoc_bft::pbft::PbftCluster;
use rsoc_bft::runner::{client_payload, run, RunConfig};
use std::sync::Arc;

/// Checkpoint every 3 executed slots so the final watermark certifies
/// (or nearly certifies) the whole run before the wipe.
fn config(seed: u64) -> RunConfig {
    RunConfig {
        f: 1,
        clients: 4,
        requests_per_client: 12,
        seed,
        checkpoint_interval: 3,
        max_cycles: 20_000_000,
        ..RunConfig::default()
    }
}

type Sends<C> = Vec<(Endpoint, Endpoint, <<C as Cluster>::Node as ReplicaNode>::Msg)>;

/// Delivers one message to replica `id`, returning the reply it emits for
/// `op` (if any) and its outgoing messages (timers are dropped — the run
/// is over, this is a hand-driven exchange).
fn deliver<C: Cluster>(
    cluster: &mut C,
    id: usize,
    from: Endpoint,
    msg: <C::Node as ReplicaNode>::Msg,
    op: OpId,
    now: u64,
) -> (Option<Vec<u8>>, Sends<C>) {
    let mut out = Outbox::new();
    cluster.nodes_mut()[id].on_input(Input::Message { from, msg }, now, &mut out);
    let reply = out.msgs.iter().find_map(|(to, m)| {
        let r = <C::Node as ReplicaNode>::as_reply(m)?;
        (*to == Endpoint::Client(op.client) && r.op == op).then(|| r.result.to_vec())
    });
    let me = Endpoint::Replica(rsoc_bft::ReplicaId(id as u32));
    (reply, out.msgs.into_iter().map(|(to, m)| (me, to, m)).collect())
}

/// Sends the retry of `req` to replica `id` and pumps the resulting
/// replica-to-replica traffic to quiescence (bounded rounds). Returns the
/// reply `id` itself emitted for the retried op, at any point.
fn retry_and_pump<C: Cluster>(cluster: &mut C, id: usize, req: &Arc<Request>) -> Option<Vec<u8>> {
    let op = req.op;
    let msg = <C::Node as ReplicaNode>::make_request(req.clone());
    let mut now = 30_000_000u64;
    let (mut reply, mut inflight) = deliver(cluster, id, Endpoint::Client(op.client), msg, op, now);
    for _ in 0..12 {
        if inflight.is_empty() {
            break;
        }
        now += 100;
        let mut next: Sends<C> = Vec::new();
        for (from, to, m) in std::mem::take(&mut inflight) {
            let Endpoint::Replica(r) = to else { continue };
            let (rep, sends) = deliver(cluster, r.0 as usize, from, m, op, now);
            if r.0 as usize == id && rep.is_some() {
                reply = reply.or(rep);
            }
            next.extend(sends);
        }
        inflight = next;
    }
    reply
}

/// Full workload → wipe the last replica → the retry itself is the
/// traffic that makes it chase the kept stable certificate and re-join
/// through state transfer → the retry must then be answered from the
/// snapshotted sessions, byte-identically to a never-wiped peer.
fn assert_retry_survives_rejoin<C: Cluster>(mut cluster: C, cfg: &RunConfig) {
    let report = run(&mut cluster, cfg);
    let total = cfg.clients as u64 * cfg.requests_per_client;
    assert_eq!(report.committed, total);
    assert!(report.safety_ok);
    let wiped = cluster.nodes().len() - 1;
    let stable = cluster.nodes()[wiped].checkpoint_stats().stable_seq;
    assert!(stable > 0, "a certificate must have stabilised during the run");

    // The latest op of client 0 — the one the session snapshot keeps.
    let seq = cfg.requests_per_client;
    let op = OpId { client: ClientId(0), seq };
    let req = Arc::new(Request { op, payload: client_payload(cfg.seed, 0, seq, cfg.payload_size) });
    let expected = retry_and_pump(&mut cluster, 0, &req)
        .expect("a never-wiped replica answers the retry from its dedup index");

    cluster.nodes_mut()[wiped].wipe();
    let digest_wiped = cluster.nodes()[wiped].state_digest();
    // First retransmission finds the replica freshly wiped and doubles as
    // the traffic that makes it chase its kept stable certificate; the
    // client's next retransmission must then be answered from the
    // installed session snapshot.
    let got = retry_and_pump(&mut cluster, wiped, &req)
        .or_else(|| retry_and_pump(&mut cluster, wiped, &req))
        .expect("the re-joined replica must answer the retry (reply lost across wipe + CST)");
    assert_eq!(got, expected, "retry reply must be byte-identical across the re-join");

    let stats = cluster.nodes()[wiped].checkpoint_stats();
    assert!(stats.transfers >= 1, "re-join must install a state transfer, got {stats:?}");
    assert_ne!(
        cluster.nodes()[wiped].state_digest(),
        digest_wiped,
        "the transfer must restore the application state"
    );
    assert_eq!(
        cluster.nodes()[wiped].state_digest(),
        cluster.nodes()[0].state_digest(),
        "re-joined state must match the cluster"
    );
}

#[test]
fn pbft_retry_survives_rejoin() {
    let cfg = config(61);
    assert_retry_survives_rejoin(PbftCluster::new(&cfg), &cfg);
}

#[test]
fn minbft_retry_survives_rejoin() {
    let cfg = config(63);
    assert_retry_survives_rejoin(MinBftCluster::new(&cfg), &cfg);
}

#[test]
fn passive_retry_survives_rejoin() {
    let cfg = config(65);
    assert_retry_survives_rejoin(PassiveCluster::new(&cfg), &cfg);
}

/// The scenario-driven twin (the F6 rejuvenation cell shape): a wipe in
/// the middle of live load, re-join through state transfer under real
/// interleavings, and the workload still finishes exactly once per op.
#[test]
fn rejuvenation_under_load_stays_exactly_once() {
    use rsoc_bft::adversary::Scenario;
    use rsoc_bft::runner::run_scenario;
    for (seed, wipe_at) in [(61u64, 150u64), (67, 350)] {
        let cfg = config(seed);
        let mut cluster = PbftCluster::new(&cfg);
        let n = cluster.nodes().len() as u32;
        let scenario =
            Scenario::none().script(n - 1, ReplicaScript::correct().rejuvenate_at(wipe_at));
        let outcome = run_scenario(&mut cluster, &cfg, &scenario);
        assert_eq!(outcome.rejuvenations, 1);
        assert_eq!(
            outcome.report.committed,
            cfg.clients as u64 * cfg.requests_per_client,
            "every op commits exactly once around the wipe (seed {seed})"
        );
        assert!(outcome.report.safety_ok);
    }
}
