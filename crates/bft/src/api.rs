//! Common SMR types shared by all protocols.
//!
//! The message plane is allocation-free end to end: client requests travel
//! as [`Arc<Request>`] (issuing a request allocates its payload exactly
//! once — every fan-out send, retransmission, batch slot, and pending-map
//! entry afterwards is a refcount bump), batches as [`Arc<Batch>`]
//! (PR 3), and execution results as `Arc<Vec<u8>>` shared between the
//! exactly-once dedup index and every [`Reply`] that carries them.

use rsoc_crypto::{sha256, Sha256};
use std::fmt;
use std::sync::Arc;

pub use crate::codec::{decode_frame, encode_frame, request_fields, Reader, Wire, WIRE_VERSION};

/// Replica identity (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Client identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Globally unique operation identity: (client, client-sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local sequence number (1-based).
    pub seq: u64,
}

/// A client request carrying an opaque state-machine command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Operation identity (used for exactly-once execution).
    pub op: OpId,
    /// Opaque command payload.
    pub payload: Vec<u8>,
}

impl Request {
    /// SHA-256 digest of the request (identity + payload), used in
    /// prepare/commit certificates.
    pub fn digest(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(12 + 8 + self.payload.len());
        bytes.extend_from_slice(&self.op.client.0.to_le_bytes());
        bytes.extend_from_slice(&self.op.seq.to_le_bytes());
        bytes.extend_from_slice(&self.payload);
        sha256(&bytes)
    }
}

/// An ordered batch of client requests agreed on as *one* consensus unit.
///
/// Batching amortizes the per-agreement cost (protocol messages, MAC
/// creation/verification, digest computation) over `len()` requests: a
/// batch of B requests needs one pre-prepare/prepare/commit exchange
/// instead of B, so per-request protocol overhead drops to `1/B`.
///
/// The digest is computed **once** at construction, in a single
/// incremental SHA-256 pass over every request (length-framed, so request
/// boundaries are unambiguous), and cached — replicas hash a batch's
/// payload once, not once per protocol phase. Receivers of a full batch
/// (as opposed to a digest-only vote) call [`Batch::verify`] once to check
/// the cached digest against the content before trusting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    requests: Vec<Arc<Request>>,
    digest: [u8; 32],
}

impl Batch {
    /// Seals `requests` into a batch, computing the cached digest. The
    /// requests are shared, not copied: sealing a batch of B requests
    /// performs zero payload allocations.
    pub fn new(requests: Vec<Arc<Request>>) -> Self {
        let digest = Self::compute_digest(&requests);
        Batch { requests, digest }
    }

    /// A batch of one (the unbatched fast path).
    pub fn single(req: Arc<Request>) -> Self {
        Self::new(vec![req])
    }

    /// The requests, in execution order.
    pub fn requests(&self) -> &[Arc<Request>] {
        &self.requests
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True for an empty batch (never proposed by correct replicas).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The cached batch digest.
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }

    /// Recomputes the digest from content and checks it against the cached
    /// value — a receiver-side integrity check performed once per batch.
    pub fn verify(&self) -> bool {
        Self::compute_digest(&self.requests) == self.digest
    }

    /// Hashes the batch's canonical wire bytes incrementally (no
    /// allocation): `count u64 LE`, then each request's
    /// [`request_fields`](crate::codec::request_fields). The codec's
    /// [`Wire`](crate::codec::Wire) impl for `Batch` emits the *same*
    /// bytes to a frame, so `sha256(encode(batch)) == batch.digest()` —
    /// the simulator's digest path and the socket framing share one
    /// definition.
    fn compute_digest(requests: &[Arc<Request>]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&(requests.len() as u64).to_le_bytes());
        for r in requests {
            crate::codec::request_fields(r, &mut |bytes| h.update(bytes));
        }
        h.finalize()
    }
}

/// What a [`Batcher`] wants done after admitting a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDecision {
    /// The accumulator reached `batch_size`: seal and propose now.
    Seal,
    /// First request of a fresh accumulation: arm the flush timer, passing
    /// the carried epoch token back via [`Batcher::on_flush_timer`].
    ArmTimer(u64),
    /// Waiting for more requests; a flush timer is already armed.
    Wait,
    /// Duplicate of a request already accumulated: drop it.
    Duplicate,
}

/// Primary-side batching front-end shared by every protocol: accumulates
/// incoming requests and decides when to seal them into a [`Batch`] —
/// at `batch_size` requests, or when the protocol's flush timer (armed on
/// [`BatchDecision::ArmTimer`], acknowledged via
/// [`Batcher::on_flush_timer`]) fires, whichever comes first.
///
/// The *protocol* owns what sealing means (propose, certify, execute);
/// this type owns only the accumulate/arm bookkeeping so the three
/// implementations cannot drift.
///
/// # Flush epochs
///
/// Every [`drain`](Self::drain) starts a new *epoch*, and flush timers
/// are tokenized with the epoch they were armed in. A timer that fires
/// after its accumulation was already sealed (by reaching `batch_size`)
/// is recognized as stale and ignored, and the next lone request arms a
/// fresh, full-patience timer of its own. Without this, a request
/// arriving just after a size-seal would ride whatever remained of the
/// *previous* accumulation's timer — its flush deadline would depend on
/// arrival interleaving, which under pipelined clients (many requests in
/// flight per client) made partial-batch flush timing an accident of
/// event order rather than a deterministic function of the accumulation.
#[derive(Debug)]
pub struct Batcher {
    accum: Vec<Arc<Request>>,
    /// Bumped on every drain; tokens from older epochs are stale.
    epoch: u64,
    /// The epoch a flush timer is currently armed for, if any.
    armed_for: Option<u64>,
    batch_size: usize,
    batch_flush: u64,
}

impl Default for Batcher {
    fn default() -> Self {
        Batcher { accum: Vec::new(), epoch: 0, armed_for: None, batch_size: 1, batch_flush: 200 }
    }
}

impl Batcher {
    /// An unbatched front-end (`batch_size` 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconfigures the seal threshold and flush patience (both clamped
    /// to at least 1).
    pub fn configure(&mut self, batch_size: usize, batch_flush: u64) {
        self.batch_size = batch_size.max(1);
        self.batch_flush = batch_flush.max(1);
    }

    /// Cycles the flush timer should be armed for.
    pub fn flush_cycles(&self) -> u64 {
        self.batch_flush
    }

    /// The configured seal threshold (also used to re-chunk pending
    /// requests during a view change).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Admits `req` (a refcount bump, not a payload copy), returning what
    /// the caller must do next.
    pub fn offer(&mut self, req: Arc<Request>) -> BatchDecision {
        if self.accum.iter().any(|r| r.op == req.op) {
            return BatchDecision::Duplicate;
        }
        self.accum.push(req);
        if self.accum.len() >= self.batch_size {
            BatchDecision::Seal
        } else if self.armed_for.is_none() {
            self.armed_for = Some(self.epoch);
            BatchDecision::ArmTimer(self.epoch)
        } else {
            BatchDecision::Wait
        }
    }

    /// Acknowledges a flush timer firing for epoch `token`. Returns `true`
    /// when the timer is current (the caller should seal what has
    /// accumulated); `false` for a stale timer from an accumulation that
    /// was already sealed — ignore it.
    pub fn on_flush_timer(&mut self, token: u64) -> bool {
        if self.armed_for == Some(token) && token == self.epoch {
            self.armed_for = None;
            true
        } else {
            false
        }
    }

    /// Takes the accumulated requests, keeping only those `admit` accepts
    /// (protocols drop requests that went stale across a view change).
    /// Starts a new flush epoch: any armed timer becomes stale.
    pub fn drain(&mut self, mut admit: impl FnMut(&Request) -> bool) -> Vec<Arc<Request>> {
        self.epoch += 1;
        self.armed_for = None;
        std::mem::take(&mut self.accum).into_iter().filter(|r| admit(r)).collect()
    }
}

/// The reserved client id of no-op filler requests (never a real client;
/// the harness drops replies addressed to it).
pub const NOOP_CLIENT: u32 = u32::MAX;

/// A no-op filler batch for sequence `seq`: executing it leaves the state
/// machine untouched (`NOOP` is not a KvStore command) and its reply goes
/// to [`NOOP_CLIENT`], which the harness ignores. New primaries use it to
/// fill sequence holes left by proposals that died unprepared below a
/// prepared neighbour (the checkpoint-less analogue of PBFT's null
/// requests) — shared here so PBFT and MinBFT cannot drift on the
/// sentinel or the payload format.
pub fn noop_batch(seq: u64) -> Arc<Batch> {
    Arc::new(Batch::single(Arc::new(Request {
        op: OpId { client: ClientId(NOOP_CLIENT), seq },
        payload: b"NOOP".to_vec(),
    })))
}

/// Prepared-but-unexecuted `(seq, batch)` entries carried by one
/// view-change vote.
pub(crate) type PreparedEntries = Vec<(u64, Arc<Batch>)>;

/// Votes of one in-progress view change, indexed by voter id — shared by
/// PBFT and MinBFT so the hole-filling floor rule cannot drift between
/// them.
///
/// # Trust boundary
///
/// `executed_upto` claims and prepared sets are **unauthenticated and
/// trusted as honest**: this model measures resilience against replica
/// misbehaviour in the agreement path (equivocation, forgery, crashes,
/// omission, transport faults), not against arbitrarily forged
/// view-change content. Since PR 7 the boundary is partially defended by
/// certified checkpoints (Castro–Liskov): votes carry the sender's stable
/// [`CheckpointCert`](crate::checkpoint::CheckpointCert), the receiver
/// verifies it (f+1 MAC'd vouchers) before it counts, and the verified
/// `cert_floor` caps the round from below — prepared entries and
/// watermark claims **at or below the stable checkpoint are discarded**,
/// so a fabricated prepared set cannot rewrite certified history. Claims
/// *above* the stable checkpoint remain trusted; USIG-signing the
/// view-change messages themselves (Veronese et al.) is the remaining
/// step, recorded in the ROADMAP.
#[derive(Debug)]
pub(crate) struct VcRound {
    /// The view this round votes for.
    pub view: u64,
    /// Per-voter prepared sets (`None` until the voter is heard).
    pub votes: Vec<Option<PreparedEntries>>,
    /// Distinct voters recorded.
    pub count: usize,
    /// Highest execution watermark any recorded voter reported — the
    /// floor above which sequence holes may be no-op-filled, and the
    /// bound fresh proposals must start above.
    pub exec_floor: u64,
    /// Highest **verified** stable-checkpoint watermark carried by any
    /// vote. Unlike `exec_floor` this floor is authenticated: prepared
    /// entries at or below it are certified history and are dropped.
    pub cert_floor: u64,
}

impl VcRound {
    /// An empty round for `view` in a cluster of `n` replicas.
    pub fn new(view: u64, n: usize) -> Self {
        VcRound { view, votes: vec![None; n], count: 0, exec_floor: 0, cert_floor: 0 }
    }

    /// Records one voter's prepared set and watermark claims. `cert_seq`
    /// is the voter's stable-checkpoint watermark, **already verified by
    /// the caller** (0 when the vote carried no certificate).
    pub fn record(
        &mut self,
        from: ReplicaId,
        prepared: PreparedEntries,
        executed_upto: u64,
        cert_seq: u64,
    ) {
        let slot = &mut self.votes[from.0 as usize];
        if slot.is_none() {
            self.count += 1;
        }
        *slot = Some(prepared);
        self.exec_floor = self.exec_floor.max(executed_upto);
        self.cert_floor = self.cert_floor.max(cert_seq);
    }
}

/// A reply from a replica to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Responding replica.
    pub replica: ReplicaId,
    /// Operation being answered.
    pub op: OpId,
    /// State-machine result — shared with the replica's exactly-once
    /// dedup index, so answering a retry clones a refcount, not bytes.
    pub result: Arc<Vec<u8>>,
}

/// One committed slot of a replica's totally-ordered log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Global sequence number (1-based, dense).
    pub seq: u64,
    /// Which operation was committed here.
    pub op: OpId,
    /// Digest of the committed request.
    pub digest: [u8; 32],
}

/// Addressable endpoints in the protocol harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A replica.
    Replica(ReplicaId),
    /// A client.
    Client(ClientId),
}

/// Input delivered to a replica by the harness.
#[derive(Debug, Clone)]
pub enum Input<M> {
    /// A protocol message from another endpoint.
    Message {
        /// Sender.
        from: Endpoint,
        /// Payload.
        msg: M,
    },
    /// A timer the replica had set has fired.
    Timer {
        /// Protocol-defined timer class.
        kind: u32,
        /// Protocol-defined token (e.g., a sequence number).
        token: u64,
    },
}

/// Outgoing effects collected from a replica handler.
#[derive(Debug)]
pub struct Outbox<M> {
    /// Messages to send: (destination, payload).
    pub msgs: Vec<(Endpoint, M)>,
    /// Timers to arm: (delay cycles, kind, token).
    pub timers: Vec<(u64, u32, u64)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { msgs: Vec::new(), timers: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message.
    pub fn send(&mut self, to: Endpoint, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Queues a message to every replica in `0..n` except `me`.
    pub fn broadcast(&mut self, n: u32, me: ReplicaId, msg: M)
    where
        M: Clone,
    {
        for i in 0..n {
            if i != me.0 {
                self.msgs.push((Endpoint::Replica(ReplicaId(i)), msg.clone()));
            }
        }
    }

    /// Arms a timer.
    pub fn arm(&mut self, delay: u64, kind: u32, token: u64) {
        self.timers.push((delay, kind, token));
    }

    /// Empties both queues, keeping their capacity — the harness reuses
    /// one outbox across every delivered event, so the steady state does
    /// not allocate per event.
    pub fn clear(&mut self) {
        self.msgs.clear();
        self.timers.clear();
    }
}

/// The protocol-node interface the harness drives.
///
/// A node is one replica of one protocol. The harness delivers inputs in
/// deterministic virtual-time order and routes the outbox.
pub trait ReplicaNode {
    /// Protocol message type (must embed client requests and replies).
    type Msg: Clone + fmt::Debug;

    /// This node's id.
    fn id(&self) -> ReplicaId;

    /// Handles one input, emitting effects into `out`.
    fn on_input(&mut self, input: Input<Self::Msg>, now: u64, out: &mut Outbox<Self::Msg>);

    /// The committed log so far (dense, in sequence order).
    fn committed_log(&self) -> &[LogEntry];

    /// Wraps a client request into a protocol message. The `Arc` makes
    /// client fan-out (n sends per issue, plus every retransmission)
    /// allocation-free: each wire copy shares the one payload buffer.
    fn make_request(req: Arc<Request>) -> Self::Msg;

    /// Extracts a reply if `msg` is one (used by the client harness).
    fn as_reply(msg: &Self::Msg) -> Option<&Reply>;

    /// SHA-256 digest of the replica's state-machine state. The scenario
    /// oracle compares equally-advanced correct replicas at quiesce.
    fn state_digest(&self) -> [u8; 32];

    /// Monotone view/epoch marker (0 in the initial configuration). Each
    /// increment is one detection-and-recovery round — a PBFT/MinBFT view
    /// change or a passive failover — which the campaign records per cell.
    fn current_view(&self) -> u64;

    /// Total committed operations. With checkpointing enabled the
    /// committed log truncates below the stable watermark, so this is
    /// `truncated prefix + committed_log().len()`, **not** the retained
    /// suffix length. The default covers untruncated logs (entry seqs are
    /// dense and 1-based, so the last seq is the count).
    fn committed_seq(&self) -> u64 {
        self.committed_log().last().map(|e| e.seq).unwrap_or(0)
    }

    /// Rejuvenation: discard all volatile protocol and application state
    /// (log, state machine, agreement slots, dedup indices) while keeping
    /// identity and trusted-component state (keys, USIG counter, stable
    /// checkpoint certificate). A wiped replica re-joins through state
    /// transfer. Default: no-op, for protocols without a recovery path.
    fn wipe(&mut self) {}

    /// Checkpoint/state-transfer counters for campaign rows. Default:
    /// zeros, for protocols without checkpointing.
    fn checkpoint_stats(&self) -> crate::checkpoint::CheckpointStats {
        crate::checkpoint::CheckpointStats::default()
    }

    /// Certificates formed or adopted this run, in order (`(seq, digest)`
    /// pairs — the boundaries the checkpoint-agreement proptest compares
    /// across replicas). Default: empty.
    fn checkpoint_history(&self) -> &[(u64, [u8; 32])] {
        &[]
    }

    /// Turns on [`DurableEvent`](crate::durable::DurableEvent) emission.
    /// Off by default (the simulator never persists), so the hooks are
    /// byte-invisible to every existing plane. Default: no-op, for
    /// protocols without a durability path.
    fn enable_durability(&mut self) {}

    /// Moves the events queued since the last drain into `out` (appended;
    /// the caller owns clearing). The embedding plane persists them
    /// **before** dispatching the same input's outbox — that ordering is
    /// what "committed before acked" means. Default: no-op.
    fn drain_durable(&mut self, _out: &mut Vec<crate::durable::DurableEvent>) {}

    /// Rebuilds core state from a store's replay, **before** the serve
    /// loop starts and before [`enable_durability`](Self::enable_durability)
    /// (recovery must not re-persist what it replays). Disk contents are
    /// ingress: implementations re-verify certificates and snapshot
    /// digests, replay only the contiguous commit prefix, and leave any
    /// remaining gap to collaborative state transfer. Default: no-op.
    fn recover(
        &mut self,
        _state: crate::durable::RecoveredState,
    ) -> crate::durable::RecoveryReport {
        crate::durable::RecoveryReport::default()
    }
}

/// A cluster: the set of nodes plus protocol-level metadata the harness
/// needs (quorum sizes, client targeting).
pub trait Cluster {
    /// Node type.
    type Node: ReplicaNode;

    /// All nodes (index = replica id).
    fn nodes_mut(&mut self) -> &mut [Self::Node];

    /// All nodes, immutable.
    fn nodes(&self) -> &[Self::Node];

    /// Number of matching replies a client needs before accepting a result.
    fn reply_quorum(&self) -> usize;

    /// Human-readable protocol name for reports.
    fn protocol_name(&self) -> &'static str;

    /// Ids of replicas considered *correct* (Byzantine ones — content
    /// attackers — excluded from safety checking; benign crash/omission
    /// faults keep a replica's state honest, so it stays in the set).
    fn correct_replicas(&self) -> Vec<ReplicaId>;

    /// Installs a fault script on one replica (the scenario engine's
    /// uniform entry point; presets go through the same path).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    fn set_script(&mut self, id: ReplicaId, script: crate::adversary::ReplicaScript);

    /// Dissolves the cluster into its nodes (index = replica id).
    ///
    /// The real-transport plane runs one replica per OS process: every
    /// process constructs the *same* cluster from the shared `(seed, f)`
    /// configuration — key provisioning is deterministic in the seed, so
    /// all processes derive identical key material — then extracts and
    /// owns just its own node. The simulator keeps driving the intact
    /// cluster through [`nodes_mut`](Self::nodes_mut).
    fn into_nodes(self) -> Vec<Self::Node>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_digest_is_stable_and_sensitive() {
        let r1 = Request { op: OpId { client: ClientId(1), seq: 5 }, payload: b"set x=1".to_vec() };
        let r2 = r1.clone();
        assert_eq!(r1.digest(), r2.digest());
        let r3 = Request { op: OpId { client: ClientId(1), seq: 6 }, payload: b"set x=1".to_vec() };
        assert_ne!(r1.digest(), r3.digest(), "op id is part of identity");
        let r4 = Request { op: OpId { client: ClientId(1), seq: 5 }, payload: b"set x=2".to_vec() };
        assert_ne!(r1.digest(), r4.digest());
    }

    #[test]
    fn batch_digest_is_cached_order_sensitive_and_framed() {
        let r1 =
            Arc::new(Request { op: OpId { client: ClientId(1), seq: 1 }, payload: b"ab".to_vec() });
        let r2 =
            Arc::new(Request { op: OpId { client: ClientId(1), seq: 2 }, payload: b"c".to_vec() });
        let b12 = Batch::new(vec![r1.clone(), r2.clone()]);
        let b21 = Batch::new(vec![r2.clone(), r1.clone()]);
        assert_ne!(b12.digest(), b21.digest(), "order is part of identity");
        assert!(b12.verify());
        assert_eq!(b12.len(), 2);
        // Length framing: moving a byte across a request boundary changes
        // the digest even though the concatenation is identical.
        let r1b =
            Arc::new(Request { op: OpId { client: ClientId(1), seq: 1 }, payload: b"a".to_vec() });
        let r2b =
            Arc::new(Request { op: OpId { client: ClientId(1), seq: 2 }, payload: b"bc".to_vec() });
        assert_ne!(b12.digest(), Batch::new(vec![r1b, r2b]).digest());
        // Singleton helper shares the request, never copies it.
        let singleton = Batch::single(r1.clone());
        assert!(Arc::ptr_eq(&singleton.requests()[0], &r1));
    }

    #[test]
    fn batcher_seals_arms_and_dedups() {
        let req = |seq| {
            Arc::new(Request { op: OpId { client: ClientId(1), seq }, payload: vec![seq as u8] })
        };
        let mut b = Batcher::new();
        // Unbatched default: every request seals immediately.
        assert_eq!(b.offer(req(1)), BatchDecision::Seal);
        b.configure(3, 50);
        assert_eq!(b.batch_size(), 3);
        assert_eq!(b.flush_cycles(), 50);
        // (req(1) is still accumulated from before the reconfigure.)
        assert_eq!(b.offer(req(2)), BatchDecision::ArmTimer(0));
        assert_eq!(b.offer(req(2)), BatchDecision::Duplicate);
        assert_eq!(b.offer(req(3)), BatchDecision::Seal);
        let drained = b.drain(|r| r.op.seq != 2);
        assert_eq!(drained.len(), 2, "filter drops stale entries");
        // The epoch-0 timer is stale after the drain; a fresh accumulation
        // arms its own epoch-1 timer, which flushes normally.
        assert_eq!(b.offer(req(4)), BatchDecision::ArmTimer(1));
        assert!(!b.on_flush_timer(0), "stale epoch-0 timer is ignored");
        assert!(b.on_flush_timer(1), "current timer triggers the flush");
        assert_eq!(b.drain(|_| true).len(), 1);
        // Degenerate configs clamp instead of wedging.
        b.configure(0, 0);
        assert_eq!(b.batch_size(), 1);
        assert_eq!(b.flush_cycles(), 1);
    }

    #[test]
    fn batcher_flush_timing_is_epoch_deterministic() {
        // Pipelined-client scenario: a size-seal consumes the accumulation
        // while its flush timer is still pending. The straggler that
        // arrives next must get a full-patience timer of its own — its
        // flush deadline is a function of ITS accumulation epoch, not of
        // when the previous accumulation happened to arm a timer.
        let req =
            |seq| Arc::new(Request { op: OpId { client: ClientId(2), seq }, payload: vec![] });
        let mut b = Batcher::new();
        b.configure(2, 100);
        assert_eq!(b.offer(req(1)), BatchDecision::ArmTimer(0));
        assert_eq!(b.offer(req(2)), BatchDecision::Seal);
        assert_eq!(b.drain(|_| true).len(), 2);
        // Straggler after the seal: new epoch, new timer.
        assert_eq!(b.offer(req(3)), BatchDecision::ArmTimer(1));
        // The old epoch-0 timer fires mid-accumulation: no early flush.
        assert!(!b.on_flush_timer(0));
        assert!(b.on_flush_timer(1));
        let flushed = b.drain(|_| true);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].op.seq, 3);
        // A re-fire of an already-acknowledged timer is also stale.
        assert!(!b.on_flush_timer(1));
    }

    #[test]
    fn tampered_batch_fails_verification() {
        let r =
            Arc::new(Request { op: OpId { client: ClientId(2), seq: 9 }, payload: b"x".to_vec() });
        let good = Batch::new(vec![r.clone()]);
        let mut evil = Request::clone(&r);
        evil.payload = b"y".to_vec();
        // Splice a lying digest next to different content.
        let forged = Batch { requests: vec![Arc::new(evil)], digest: good.digest() };
        assert!(!forged.verify());
        assert!(good.verify());
    }

    #[test]
    fn outbox_broadcast_skips_self() {
        let mut out: Outbox<u32> = Outbox::new();
        out.broadcast(4, ReplicaId(2), 7);
        assert_eq!(out.msgs.len(), 3);
        assert!(out.msgs.iter().all(|(to, _)| *to != Endpoint::Replica(ReplicaId(2))));
    }

    #[test]
    fn outbox_timers() {
        let mut out: Outbox<u32> = Outbox::new();
        out.arm(10, 1, 99);
        assert_eq!(out.timers, vec![(10, 1, 99)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", ReplicaId(3)), "r3");
        assert_eq!(format!("{}", ClientId(1)), "c1");
    }
}
