//! Common SMR types shared by all protocols.

use rsoc_crypto::sha256;
use std::fmt;

/// Replica identity (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Client identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Globally unique operation identity: (client, client-sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local sequence number (1-based).
    pub seq: u64,
}

/// A client request carrying an opaque state-machine command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Operation identity (used for exactly-once execution).
    pub op: OpId,
    /// Opaque command payload.
    pub payload: Vec<u8>,
}

impl Request {
    /// SHA-256 digest of the request (identity + payload), used in
    /// prepare/commit certificates.
    pub fn digest(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(12 + 8 + self.payload.len());
        bytes.extend_from_slice(&self.op.client.0.to_le_bytes());
        bytes.extend_from_slice(&self.op.seq.to_le_bytes());
        bytes.extend_from_slice(&self.payload);
        sha256(&bytes)
    }
}

/// A reply from a replica to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Responding replica.
    pub replica: ReplicaId,
    /// Operation being answered.
    pub op: OpId,
    /// State-machine result.
    pub result: Vec<u8>,
}

/// One committed slot of a replica's totally-ordered log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Global sequence number (1-based, dense).
    pub seq: u64,
    /// Which operation was committed here.
    pub op: OpId,
    /// Digest of the committed request.
    pub digest: [u8; 32],
}

/// Addressable endpoints in the protocol harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A replica.
    Replica(ReplicaId),
    /// A client.
    Client(ClientId),
}

/// Input delivered to a replica by the harness.
#[derive(Debug, Clone)]
pub enum Input<M> {
    /// A protocol message from another endpoint.
    Message {
        /// Sender.
        from: Endpoint,
        /// Payload.
        msg: M,
    },
    /// A timer the replica had set has fired.
    Timer {
        /// Protocol-defined timer class.
        kind: u32,
        /// Protocol-defined token (e.g., a sequence number).
        token: u64,
    },
}

/// Outgoing effects collected from a replica handler.
#[derive(Debug)]
pub struct Outbox<M> {
    /// Messages to send: (destination, payload).
    pub msgs: Vec<(Endpoint, M)>,
    /// Timers to arm: (delay cycles, kind, token).
    pub timers: Vec<(u64, u32, u64)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { msgs: Vec::new(), timers: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message.
    pub fn send(&mut self, to: Endpoint, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Queues a message to every replica in `0..n` except `me`.
    pub fn broadcast(&mut self, n: u32, me: ReplicaId, msg: M)
    where
        M: Clone,
    {
        for i in 0..n {
            if i != me.0 {
                self.msgs.push((Endpoint::Replica(ReplicaId(i)), msg.clone()));
            }
        }
    }

    /// Arms a timer.
    pub fn arm(&mut self, delay: u64, kind: u32, token: u64) {
        self.timers.push((delay, kind, token));
    }
}

/// The protocol-node interface the harness drives.
///
/// A node is one replica of one protocol. The harness delivers inputs in
/// deterministic virtual-time order and routes the outbox.
pub trait ReplicaNode {
    /// Protocol message type (must embed client requests and replies).
    type Msg: Clone + fmt::Debug;

    /// This node's id.
    fn id(&self) -> ReplicaId;

    /// Handles one input, emitting effects into `out`.
    fn on_input(&mut self, input: Input<Self::Msg>, now: u64, out: &mut Outbox<Self::Msg>);

    /// The committed log so far (dense, in sequence order).
    fn committed_log(&self) -> &[LogEntry];

    /// Wraps a client request into a protocol message.
    fn make_request(req: Request) -> Self::Msg;

    /// Extracts a reply if `msg` is one (used by the client harness).
    fn as_reply(msg: &Self::Msg) -> Option<&Reply>;
}

/// A cluster: the set of nodes plus protocol-level metadata the harness
/// needs (quorum sizes, client targeting).
pub trait Cluster {
    /// Node type.
    type Node: ReplicaNode;

    /// All nodes (index = replica id).
    fn nodes_mut(&mut self) -> &mut [Self::Node];

    /// All nodes, immutable.
    fn nodes(&self) -> &[Self::Node];

    /// Number of matching replies a client needs before accepting a result.
    fn reply_quorum(&self) -> usize;

    /// Human-readable protocol name for reports.
    fn protocol_name(&self) -> &'static str;

    /// Ids of replicas considered *correct* (crash/Byzantine ones excluded
    /// from safety checking).
    fn correct_replicas(&self) -> Vec<ReplicaId>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_digest_is_stable_and_sensitive() {
        let r1 = Request { op: OpId { client: ClientId(1), seq: 5 }, payload: b"set x=1".to_vec() };
        let r2 = r1.clone();
        assert_eq!(r1.digest(), r2.digest());
        let r3 = Request { op: OpId { client: ClientId(1), seq: 6 }, payload: b"set x=1".to_vec() };
        assert_ne!(r1.digest(), r3.digest(), "op id is part of identity");
        let r4 = Request { op: OpId { client: ClientId(1), seq: 5 }, payload: b"set x=2".to_vec() };
        assert_ne!(r1.digest(), r4.digest());
    }

    #[test]
    fn outbox_broadcast_skips_self() {
        let mut out: Outbox<u32> = Outbox::new();
        out.broadcast(4, ReplicaId(2), 7);
        assert_eq!(out.msgs.len(), 3);
        assert!(out
            .msgs
            .iter()
            .all(|(to, _)| *to != Endpoint::Replica(ReplicaId(2))));
    }

    #[test]
    fn outbox_timers() {
        let mut out: Outbox<u32> = Outbox::new();
        out.arm(10, 1, 99);
        assert_eq!(out.timers, vec![(10, 1, 99)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", ReplicaId(3)), "r3");
        assert_eq!(format!("{}", ClientId(1)), "c1");
    }
}
