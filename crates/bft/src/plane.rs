//! The sans-io plane boundary: protocol cores against pluggable planes.
//!
//! A protocol node ([`ReplicaNode`]) is pure with respect to I/O and time:
//! it consumes [`Input`]s and emits messages and timer requests into an
//! [`Outbox`]. Everything on the other side of that line — message
//! delivery, timer expiry, and the passage of (wall or virtual) time —
//! belongs to a *plane*. This module names the boundary:
//!
//! * [`Clock`] — the plane's time source, in protocol cycles. The
//!   deterministic simulator advances a virtual counter; the TCP plane
//!   (`rsoc_transport`) divides a monotonic wall clock into cycles.
//! * [`Transport`] — the plane's effect sink: after a node handles one
//!   input, the plane takes the outbox and owns delivery of every message
//!   and the scheduling of every armed timer.
//! * [`step_node`] — the one canonical way to drive a node: clear the
//!   (reused) outbox, deliver the input, hand the effects to the plane.
//!
//! Two planes implement [`Transport`]: the deterministic simulator in
//! [`runner`](crate::runner) (virtual time, latency models, fault
//! injection — the first and reference implementation, byte-identical to
//! the pre-carve-out harness) and the threaded TCP plane in the
//! `rsoc_transport` crate (real sockets, real time). The protocol cores
//! cannot tell which one is driving them — that is the point: the same
//! `rsoc_bft` cores that pass the scenario oracle serve real request
//! traffic over sockets unchanged.

use crate::api::{Input, Outbox, ReplicaId, ReplicaNode};

/// A plane's time source, in protocol cycles.
///
/// Cycles are the only unit protocols speak: timeouts, patience windows
/// and flush deadlines are all cycle counts. What a cycle *is* belongs to
/// the plane — the simulator's virtual counter advances event by event,
/// while the TCP plane maps cycles onto a monotonic wall clock at a
/// configurable `ns / cycle` rate.
pub trait Clock {
    /// Current time in cycles (monotone, starts near 0).
    fn now(&self) -> u64;
}

/// The plane side of the sans-io boundary.
///
/// After a node handles one input, the plane receives the node's
/// [`Outbox`] and owns everything in it: each `(endpoint, message)` pair
/// must be delivered (or deliberately dropped — loss is the plane's
/// prerogative, and every protocol here tolerates it), and each
/// `(delay, kind, token)` timer must fire back into the node as an
/// [`Input::Timer`] no earlier than `now + delay`.
///
/// Implementations drain `out` and may keep its allocations: the driver
/// reuses one outbox across every delivered event.
pub trait Transport<M> {
    /// Takes ownership of the effects `from` emitted at cycle `now`.
    fn dispatch(&mut self, from: ReplicaId, out: &mut Outbox<M>, now: u64);
}

/// Drives one node through one input: clears the reused outbox, delivers
/// the input, and hands the collected effects to the plane.
///
/// This is the single choreography both planes share — having it in one
/// place keeps the clear/deliver/dispatch order (and with it the
/// simulator's byte-identity guarantee) from drifting between them.
pub fn step_node<N, P>(
    node: &mut N,
    input: Input<N::Msg>,
    now: u64,
    out: &mut Outbox<N::Msg>,
    plane: &mut P,
) where
    N: ReplicaNode,
    P: Transport<N::Msg> + ?Sized,
{
    out.clear();
    node.on_input(input, now, out);
    plane.dispatch(node.id(), out, now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Endpoint, LogEntry, Request};
    use std::sync::Arc;

    /// A node that echoes every message back to its sender and arms one
    /// timer per input — just enough surface to exercise the choreography.
    struct Echo {
        id: ReplicaId,
        inputs: u64,
    }

    impl ReplicaNode for Echo {
        type Msg = u64;

        fn id(&self) -> ReplicaId {
            self.id
        }

        fn on_input(&mut self, input: Input<u64>, _now: u64, out: &mut Outbox<u64>) {
            self.inputs += 1;
            if let Input::Message { from, msg } = input {
                out.send(from, msg + 1);
            }
            out.arm(10, 1, self.inputs);
        }

        fn committed_log(&self) -> &[LogEntry] {
            &[]
        }

        fn make_request(_req: Arc<Request>) -> u64 {
            0
        }

        fn as_reply(_msg: &u64) -> Option<&crate::api::Reply> {
            None
        }

        fn state_digest(&self) -> [u8; 32] {
            [0; 32]
        }

        fn current_view(&self) -> u64 {
            0
        }
    }

    /// A plane that records what it was handed.
    #[derive(Default)]
    struct Recording {
        msgs: Vec<(ReplicaId, Endpoint, u64)>,
        timers: Vec<(u64, u32, u64)>,
    }

    impl Transport<u64> for Recording {
        fn dispatch(&mut self, from: ReplicaId, out: &mut Outbox<u64>, now: u64) {
            for (to, msg) in out.msgs.drain(..) {
                self.msgs.push((from, to, msg));
            }
            for (delay, kind, token) in out.timers.drain(..) {
                self.timers.push((now + delay, kind, token));
            }
        }
    }

    #[test]
    fn step_node_clears_delivers_and_dispatches() {
        let mut node = Echo { id: ReplicaId(2), inputs: 0 };
        let mut plane = Recording::default();
        let mut out = Outbox::new();
        // Pre-soil the outbox: step_node must clear stale effects first.
        out.send(Endpoint::Replica(ReplicaId(9)), 99);
        let from = Endpoint::Replica(ReplicaId(0));
        step_node(&mut node, Input::Message { from, msg: 5 }, 100, &mut out, &mut plane);
        step_node(&mut node, Input::Timer { kind: 1, token: 1 }, 110, &mut out, &mut plane);
        assert_eq!(plane.msgs, vec![(ReplicaId(2), from, 6)]);
        assert_eq!(plane.timers, vec![(110, 1, 1), (120, 1, 2)]);
        assert!(out.msgs.is_empty() && out.timers.is_empty(), "plane drained the outbox");
    }
}
