//! Passive (primary-backup) replication — §II-A's cheap baseline:
//! "Passive replication allows a failing system to failover into a backup
//! replica. This is a cheap solution that typically requires one passive
//! backup replica. However, recovery is slow, requires reliable detection
//! and is not seamless to the user."
//!
//! The primary executes requests and ships state updates to the backup;
//! a heartbeat failure detector promotes the backup when the primary goes
//! quiet. Experiment E4 measures exactly the paper's trade-off: steady-state
//! cost (2 replicas, 2 messages/op) vs the failover unavailability window.

use crate::adversary::ReplicaScript;
use crate::api::{
    Batch, BatchDecision, Batcher, Cluster, Endpoint, Input, LogEntry, OpId, Outbox, ReplicaId,
    ReplicaNode, Reply, Request,
};
use crate::checkpoint::{
    decode_image, encode_image, snapshot_matches, CheckpointStats, CheckpointStore,
    CheckpointVoucher, CkptKeys, ClientSessions, CommittedLog, CstBuffer, StateTransfer,
};
use crate::dense::{OpIndex, SeqWindow};
use crate::durable::{DurableEvent, RecoveredState, RecoveryReport};
use crate::runner::RunConfig;
use crate::statemachine::{KvStore, StateMachine};
use std::sync::Arc;

/// Timer kind: primary sends its next heartbeat.
const TIMER_HEARTBEAT: u32 = 1;
/// Timer kind: backup checks heartbeat freshness.
const TIMER_DETECT: u32 = 2;
/// Timer kind: the primary's partially filled batch waited long enough.
const TIMER_FLUSH: u32 = 3;

/// Passive-replication wire messages.
///
/// Rare, bulky variants (checkpoint vouchers, state transfers) live behind
/// `Box` so the enum's size — and with it every per-event memcpy through
/// the timing-wheel arena — is pinned by the hot sync-path variants.
#[derive(Debug, Clone, PartialEq)]
pub enum PassiveMsg {
    /// Client request (shared across the fan-out).
    Request(Arc<Request>),
    /// Primary → backup: a contiguous run of executed operations and their
    /// results, shipped as one message (batching amortizes the per-message
    /// cost; `ops.len() == 1` is the unbatched case).
    StateUpdate {
        /// Epoch of the sending primary.
        epoch: u64,
        /// Log sequence of `ops[0]`; `ops[i]` has sequence `first_seq + i`.
        first_seq: u64,
        /// Executed `(request, result)` pairs in log order (results let the
        /// backup answer retries identically) — both shared, not copied.
        ops: Vec<(Arc<Request>, Arc<Vec<u8>>)>,
    },
    /// Primary liveness signal, advertising the primary's log length so a
    /// recovering backup can detect that it missed state updates.
    Heartbeat {
        /// Sender's epoch.
        epoch: u64,
        /// Sender.
        from: ReplicaId,
        /// Sender's committed-log length.
        log_len: u64,
    },
    /// Backup → primary: resend state updates from `from_seq` (the backup
    /// detected a gap — it crashed through, or the network lost, some
    /// updates; without a resync a later failover would promote a stale
    /// log, diverging committed history).
    SyncRequest {
        /// First missing log sequence.
        from_seq: u64,
        /// The requesting replica.
        from: ReplicaId,
    },
    /// Execution result (replica → client).
    Reply(Reply),
    /// A replica's MAC'd vouch for its state digest at a log watermark
    /// (passive checkpoints are per log sequence — the two domains
    /// coincide here). Boxed — vouchers are periodic, not per-request.
    Checkpoint(Box<CheckpointVoucher>),
    /// A laggard asks its peer for the latest certified state (emitted
    /// when a sync gap exceeds the shipped-window retention).
    StateRequest {
        /// The requester's committed-log length.
        have: u64,
        /// The requester.
        from: ReplicaId,
    },
    /// Certificate + certified snapshot + committed suffix (see
    /// [`StateTransfer`]). Boxed — transfers are rare and huge.
    StateResponse(Box<StateTransfer>),
}

/// How many shipped `(request, result)` pairs the primary retains for
/// backup resync (beyond this horizon a gapped backup stays a laggard).
const SHIP_RETENTION: u64 = 512;
/// Cycles between a gapped backup's sync requests (request or response
/// can be lost — re-ask, but do not spam).
const SYNC_REQ_BACKOFF: u64 = 100;
/// Maximum operations resent per sync request.
const SYNC_BURST: u64 = 64;

/// One passive-replication replica (two per cluster).
#[derive(Debug)]
pub struct PassiveReplica {
    id: ReplicaId,
    script: ReplicaScript,
    /// Set while a crash window swallows inputs; the first input after
    /// recovery re-arms the heartbeat/detector chains (self-re-arming
    /// timers die when their firing lands inside the outage).
    in_outage: bool,
    /// Current primary epoch; primary is `epoch % 2`.
    epoch: u64,
    bootstrapped: bool,
    last_heartbeat: u64,
    heartbeat_interval: u64,
    detect_timeout: u64,
    log: CommittedLog,
    /// Exactly-once dedup: op → shared execution result.
    executed: OpIndex<Arc<Vec<u8>>>,
    machine: KvStore,
    next_seq: u64,
    /// Certified checkpoints + state-transfer bookkeeping (disabled at
    /// interval 0 — the byte-identical legacy configuration). Both
    /// replicas must vouch: passive has no spare quorum to outvote a lie.
    ckpt: CheckpointStore,
    /// Requests by log seq, retained above the stable checkpoint — the
    /// replay source for serving state-transfer suffixes (passive's slot
    /// and log domains coincide; suffixes ship as single-request batches).
    replay_ring: SeqWindow<Arc<Request>>,
    /// Buffered state-transfer responses (install quorum 1: with n = 2
    /// there is no spare responder to outvote a lie — the documented
    /// passive residual).
    cst: CstBuffer,
    /// Latest executed `(seq, reply)` per client — snapshotted into the
    /// checkpoint image so retry dedup survives a wipe + state transfer.
    /// Maintained only while checkpointing is enabled (byte-invisible
    /// otherwise).
    sessions: ClientSessions,
    /// True once the embedding plane persists [`DurableEvent`]s.
    durability: bool,
    /// Events awaiting [`ReplicaNode::drain_durable`].
    durable: Vec<DurableEvent>,
    /// Highest stable watermark already emitted as a
    /// [`DurableEvent::Stable`].
    durable_stable_seq: u64,
    /// Out-of-order state updates held back until their predecessors
    /// apply; the window watermark tracks the applied log prefix.
    held_updates: SeqWindow<(Arc<Request>, Arc<Vec<u8>>)>,
    /// Count of failovers this replica performed.
    failovers: u32,
    /// Shipped updates retained for backup resync, keyed by log sequence.
    shipped: SeqWindow<(Arc<Request>, Arc<Vec<u8>>)>,
    /// When this backup last asked for a resync (rate limiter).
    sync_req_at: u64,
    /// Batching front-end (primary only).
    batcher: Batcher,
}

impl PassiveReplica {
    /// Creates a replica; `id.0` must be 0 (initial primary) or 1 (backup).
    ///
    /// # Panics
    /// Panics for ids other than 0 and 1.
    pub fn new(id: ReplicaId, heartbeat_interval: u64, detect_timeout: u64) -> Self {
        assert!(id.0 < 2, "passive replication uses exactly two replicas");
        PassiveReplica {
            id,
            script: ReplicaScript::correct(),
            in_outage: false,
            epoch: 0,
            bootstrapped: false,
            last_heartbeat: 0,
            heartbeat_interval,
            detect_timeout,
            log: CommittedLog::new(),
            executed: OpIndex::new(),
            machine: KvStore::new(),
            next_seq: 1,
            ckpt: CheckpointStore::new(id, 2, 0, CkptKeys::provision(0, 1)),
            replay_ring: SeqWindow::with_base(1),
            cst: CstBuffer::new(),
            sessions: ClientSessions::new(),
            durability: false,
            durable: Vec::new(),
            durable_stable_seq: 0,
            held_updates: SeqWindow::with_base(1),
            failovers: 0,
            shipped: SeqWindow::with_base(1),
            sync_req_at: 0,
            batcher: Batcher::new(),
        }
    }

    /// Configures the batching front-end: execute-and-ship a batch at
    /// `batch_size` requests, or after `batch_flush` cycles.
    pub fn set_batching(&mut self, batch_size: usize, batch_flush: u64) {
        self.batcher.configure(batch_size, batch_flush);
    }

    /// Enables certified checkpoints every `interval` committed log
    /// sequences (0 disables — the default, byte-identical to the legacy
    /// protocol). Both replicas must vouch for a watermark to stabilize.
    pub fn set_checkpointing(&mut self, interval: u64, keys: Arc<CkptKeys>) {
        self.ckpt = CheckpointStore::new(self.id, 2, interval, keys);
    }

    /// Digest of the replica's current state-machine state (for
    /// batched-vs-unbatched equivalence checks).
    pub fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    /// Installs a composable, time-phased fault script. Content-attack
    /// windows (equivocation, UI forgery) are inert here: passive
    /// replication has no votes or certificates to forge — a compromised
    /// tile manifests as silence or crash (see the
    /// [`rsoc_soc`-level mapping](crate::adversary::Behavior)).
    pub fn set_script(&mut self, script: ReplicaScript) {
        self.script = script;
    }

    /// The active fault script.
    pub fn script(&self) -> &ReplicaScript {
        &self.script
    }

    /// Whether this replica currently believes it is the primary.
    pub fn is_primary(&self) -> bool {
        (self.epoch % 2) as u32 == self.id.0
    }

    /// Number of failovers this replica performed.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    fn peer(&self) -> ReplicaId {
        ReplicaId(1 - self.id.0)
    }

    fn bootstrap(&mut self, now: u64, out: &mut Outbox<PassiveMsg>) {
        if self.bootstrapped {
            return;
        }
        self.bootstrapped = true;
        self.last_heartbeat = now;
        if self.is_primary() {
            out.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
        } else {
            out.arm(self.detect_timeout, TIMER_DETECT, 0);
        }
    }

    // Everything below is reachable from adversarial input: the scenario
    // engine can forge clients and replay/reorder replica traffic, so a
    // panic here is a remote crash (`rsoc_lint` enforces the contract).
    // lint: ingress
    fn handle_request(&mut self, req: Arc<Request>, out: &mut Outbox<PassiveMsg>) {
        if let Some(result) = self.executed.get(&req.op) {
            out.send(
                Endpoint::Client(req.op.client),
                PassiveMsg::Reply(Reply { replica: self.id, op: req.op, result: result.clone() }),
            );
            return;
        }
        if !self.is_primary() {
            return; // backups ignore requests — the failover gap E4 measures
        }
        match self.batcher.offer(req) {
            BatchDecision::Seal => self.flush_batch(out),
            BatchDecision::ArmTimer(token) => {
                out.arm(self.batcher.flush_cycles(), TIMER_FLUSH, token)
            }
            BatchDecision::Wait | BatchDecision::Duplicate => {}
        }
    }

    /// Executes the accumulated requests and ships them to the backup as a
    /// single state update.
    fn flush_batch(&mut self, out: &mut Outbox<PassiveMsg>) {
        let executed = &self.executed;
        let reqs = self.batcher.drain(|r| !executed.contains_key(&r.op));
        if reqs.is_empty() {
            return;
        }
        let first_seq = self.next_seq;
        let mut ops = Vec::with_capacity(reqs.len());
        for req in reqs {
            let seq = self.next_seq;
            self.next_seq += 1;
            let result = Arc::new(self.machine.apply(&req.payload));
            self.log.push(LogEntry { seq, op: req.op, digest: req.digest() });
            if self.ckpt.enabled() {
                self.replay_ring.insert(seq, req.clone());
            }
            self.executed.insert(req.op, result.clone());
            if self.ckpt.enabled() {
                self.sessions.note(req.op.client, req.op.seq, result.clone());
            }
            if self.durability {
                self.durable.push(DurableEvent::Commit {
                    seq,
                    batch: Arc::new(Batch::single(req.clone())),
                });
            }
            out.send(
                Endpoint::Client(req.op.client),
                PassiveMsg::Reply(Reply { replica: self.id, op: req.op, result: result.clone() }),
            );
            ops.push((req, result));
            self.maybe_checkpoint(seq, out);
        }
        for (i, op) in ops.iter().enumerate() {
            self.shipped.insert(first_seq + i as u64, op.clone());
        }
        if self.next_seq > SHIP_RETENTION {
            self.shipped.retire_below(self.next_seq - SHIP_RETENTION);
        }
        out.send(
            Endpoint::Replica(self.peer()),
            PassiveMsg::StateUpdate { epoch: self.epoch, first_seq, ops },
        );
    }

    /// Takes a certified checkpoint when the committed log crosses a
    /// watermark boundary (per log sequence — passive's execution and log
    /// domains coincide). Content-attack scripts are inert here (no votes
    /// to forge), so there is no Byzantine voucher path.
    fn maybe_checkpoint(&mut self, seq: u64, out: &mut Outbox<PassiveMsg>) {
        if !self.ckpt.due(seq) {
            return;
        }
        let image = Arc::new(encode_image(&self.machine.snapshot(), &self.sessions));
        let digest = rsoc_crypto::sha256(&image);
        let voucher = self.ckpt.record_local(seq, digest, self.log.committed(), image);
        out.send(Endpoint::Replica(self.peer()), PassiveMsg::Checkpoint(Box::new(voucher.clone())));
        if self.ckpt.record(&voucher).is_some() {
            self.apply_truncation();
        }
    }

    /// Truncates the log, replay ring, and shipped window below the
    /// stable checkpoint — the shipped-window retention is keyed off the
    /// certified watermark, because below it [`PassiveMsg::SyncRequest`]
    /// replay is superseded by state transfer.
    fn apply_truncation(&mut self) {
        if let Some(log_len) = self.ckpt.stable_log_len() {
            self.log.truncate_below(log_len);
            self.replay_ring.retire_below(log_len + 1);
            self.shipped.retire_below(log_len + 1);
        }
        if self.durability && self.ckpt.stable_seq() > self.durable_stable_seq {
            if let Some((cert, log_len, snapshot)) = self.ckpt.serve() {
                self.durable_stable_seq = cert.seq;
                let cert = cert.clone();
                self.durable.push(DurableEvent::Stable { cert, log_len, snapshot });
            }
        }
    }

    /// Ingests the peer's checkpoint voucher (MAC-verified by the store).
    fn handle_checkpoint(&mut self, voucher: CheckpointVoucher) {
        if self.ckpt.record(&voucher).is_some() {
            self.apply_truncation();
        }
    }

    /// Sends a state-transfer request if the stable certificate is ahead
    /// of the committed log (rate-limited by the CST backoff).
    fn maybe_request_transfer(&mut self, now: u64, out: &mut Outbox<PassiveMsg>) {
        if self.ckpt.behind(self.log.committed()) && self.ckpt.may_request(now) {
            out.send(
                Endpoint::Replica(self.peer()),
                PassiveMsg::StateRequest { have: self.log.committed(), from: self.id },
            );
        }
    }

    /// Serves a state-transfer request: stable certificate + certified
    /// snapshot + the committed suffix above it (see the PBFT twin).
    fn handle_state_request(&mut self, have: u64, from: ReplicaId, out: &mut Outbox<PassiveMsg>) {
        let Some((cert, log_base, snapshot)) = self.ckpt.serve() else { return };
        if cert.seq <= have {
            return; // requester is not behind our certificate
        }
        let mut suffix = Vec::new();
        for entry in self.log.entries() {
            if entry.seq <= log_base {
                continue;
            }
            // Passive's slot and log domains coincide: each committed log
            // entry ships as a single-request batch keyed by its log seq.
            match self.replay_ring.get(entry.seq) {
                Some(req) => suffix.push((entry.seq, Arc::new(Batch::single(req.clone())))),
                None => return, // suffix gap (mid-install)
            }
        }
        let transfer = StateTransfer {
            cert: cert.clone(),
            snapshot,
            log_base,
            suffix: Arc::new(suffix),
            view: self.epoch,
            from: self.id,
        };
        out.send(Endpoint::Replica(from), PassiveMsg::StateResponse(Box::new(transfer)));
    }

    /// Installs a transferred state if it checks out — certificate,
    /// snapshot digest, snapshot framing. Promotion is gated on this
    /// completing: a backup behind the certified watermark refuses to
    /// fail over until the transfer lands (see the `TIMER_DETECT` arm).
    fn handle_state_response(&mut self, st: StateTransfer, now: u64) {
        if !self.ckpt.enabled() || st.cert.seq <= self.log.committed() {
            return; // not ahead of us: nothing to install
        }
        if !self.ckpt.verify_cert(&st.cert) {
            self.ckpt.note_rejected();
            return;
        }
        if !snapshot_matches(&st.cert, &st.snapshot) {
            self.ckpt.note_rejected();
            return; // corrupted snapshot: digest does not match the cert
        }
        let parses = decode_image(&st.snapshot)
            .is_some_and(|(kv, _)| KvStore::install_snapshot(kv).is_some());
        if !parses {
            self.ckpt.note_rejected();
            return;
        }
        // With n = 2 there is no second responder to cross-check, so the
        // install quorum is 1 — the shared buffer still enforces batch
        // integrity and density on the suffix (the documented passive
        // residual: a lying primary can feed a recovering backup).
        self.cst.admit(st, self.log.committed());
        let Some(plan) = self.cst.install_plan(1) else { return };
        self.cst.clear();
        let Some((kv, sessions)) = decode_image(&plan.snapshot) else { return };
        let Some(machine) = KvStore::install_snapshot(kv) else { return };
        self.ckpt.adopt_cert(&plan.cert);
        self.machine = machine;
        self.sessions = sessions;
        // Repopulate the dedup index from the snapshotted sessions: a
        // client retrying an op committed below the watermark still gets
        // its byte-identical reply instead of a re-execution.
        for (client, seq, result) in self.sessions.iter() {
            self.executed.insert(OpId { client, seq }, result.clone());
        }
        self.log.reset_to(plan.log_base);
        self.replay_ring = SeqWindow::with_base(plan.log_base + 1);
        if self.durability && plan.cert.seq > self.durable_stable_seq {
            self.durable_stable_seq = plan.cert.seq;
            self.durable.push(DurableEvent::Stable {
                cert: plan.cert.clone(),
                log_len: plan.log_base,
                snapshot: plan.snapshot.clone(),
            });
        }
        for (slot, batch) in &plan.suffix {
            for req in batch.requests() {
                let log_seq = self.log.committed() + 1;
                let result = Arc::new(self.machine.apply(&req.payload));
                self.log.push(LogEntry { seq: log_seq, op: req.op, digest: req.digest() });
                self.replay_ring.insert(log_seq, req.clone());
                self.executed.insert(req.op, result.clone());
                self.sessions.note(req.op.client, req.op.seq, result);
            }
            if self.durability {
                self.durable.push(DurableEvent::Commit { seq: *slot, batch: batch.clone() });
            }
        }
        self.held_updates = SeqWindow::with_base(self.log.committed() + 1);
        self.next_seq = self.next_seq.max(self.log.committed() + 1);
        if plan.view > self.epoch {
            // The peer's epoch moved on while we were down; adopt it so
            // role accounting (primary = epoch % 2) stays coherent.
            self.epoch = plan.view;
        }
        self.last_heartbeat = now;
        self.ckpt.note_transfer();
    }

    /// Emits a rate-limited resync request when this backup's applied log
    /// is behind what the primary has shipped/advertised.
    fn maybe_request_sync(&mut self, now: u64, out: &mut Outbox<PassiveMsg>) {
        if now >= self.sync_req_at.saturating_add(SYNC_REQ_BACKOFF) {
            self.sync_req_at = now;
            out.send(
                Endpoint::Replica(self.peer()),
                PassiveMsg::SyncRequest { from_seq: self.log.committed() + 1, from: self.id },
            );
        }
    }

    fn handle_state_update(
        &mut self,
        epoch: u64,
        first_seq: u64,
        ops: Vec<(Arc<Request>, Arc<Vec<u8>>)>,
        now: u64,
        out: &mut Outbox<PassiveMsg>,
    ) {
        if epoch < self.epoch || self.is_primary() {
            return; // stale update from a deposed primary
        }
        // Updates can be reordered by the interconnect; hold back until the
        // predecessor applied so the backup's log mirrors the primary's.
        // Re-deliveries of already-applied sequences fall below the window
        // watermark and are rejected outright.
        for (i, (req, result)) in ops.into_iter().enumerate() {
            if self.executed.contains_key(&req.op) {
                continue;
            }
            self.held_updates.insert(first_seq + i as u64, (req, result));
        }
        loop {
            let next = self.log.committed() + 1;
            let Some((req, result)) = self.held_updates.remove(next) else { break };
            self.machine.apply(&req.payload);
            self.log.push(LogEntry { seq: next, op: req.op, digest: req.digest() });
            if self.ckpt.enabled() {
                self.replay_ring.insert(next, req.clone());
            }
            if self.durability {
                self.durable.push(DurableEvent::Commit {
                    seq: next,
                    batch: Arc::new(Batch::single(req.clone())),
                });
            }
            self.executed.insert(req.op, result.clone());
            if self.ckpt.enabled() {
                self.sessions.note(req.op.client, req.op.seq, result);
            }
            self.next_seq = self.next_seq.max(next + 1);
            self.maybe_checkpoint(next, out);
        }
        self.held_updates.retire_below(self.log.committed() + 1);
        // A gap below the held-back updates means earlier updates were
        // lost (network drop, or this backup crashed through them): ask
        // the primary to replay from our log head.
        if first_seq > self.log.committed() + 1 {
            self.maybe_request_sync(now, out);
        }
    }
}

impl ReplicaNode for PassiveReplica {
    type Msg = PassiveMsg;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_input(&mut self, input: Input<PassiveMsg>, now: u64, out: &mut Outbox<PassiveMsg>) {
        if self.script.crashed_at(now) {
            self.in_outage = true;
            return;
        }
        if self.in_outage {
            // Fail-recover: timer firings swallowed during the outage
            // killed their chains — restart them (a duplicate chain from a
            // timer that survived the window is harmless: each fire
            // re-arms exactly one successor). `last_heartbeat` is bumped
            // so a recovered backup grants the primary one fresh detection
            // period instead of failing over on pre-outage staleness.
            self.in_outage = false;
            self.last_heartbeat = now;
            if self.is_primary() {
                out.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
            } else {
                out.arm(self.detect_timeout, TIMER_DETECT, 0);
            }
        }
        if self.script.unconstrained() {
            // Fast path: outputs are never gated for a correct replica.
            self.dispatch_input(input, now, out);
            return;
        }
        let mut staged = Outbox::new();
        self.dispatch_input(input, now, &mut staged);
        if self.script.sends_at(now) {
            out.msgs.extend(staged.msgs);
        }
        out.timers.extend(staged.timers);
    }

    fn committed_log(&self) -> &[LogEntry] {
        self.log.entries()
    }

    fn committed_seq(&self) -> u64 {
        self.log.committed()
    }

    fn wipe(&mut self) {
        // Rejuvenation: volatile protocol + application state goes; the
        // replica's identity, keys, detector configuration, fault script,
        // and the stable checkpoint certificate (trusted persistent
        // store) stay. Re-bootstrap re-arms the timer chains, and the
        // first heartbeat re-teaches us the epoch.
        self.in_outage = false;
        self.epoch = 0;
        self.bootstrapped = false;
        self.last_heartbeat = 0;
        self.log = CommittedLog::new();
        self.executed = OpIndex::new();
        self.machine = KvStore::new();
        self.next_seq = 1;
        self.held_updates = SeqWindow::with_base(1);
        self.shipped = SeqWindow::with_base(1);
        self.sync_req_at = 0;
        self.replay_ring = SeqWindow::with_base(1);
        self.cst.clear();
        self.sessions.clear();
        self.durable.clear();
        let (size, flush) = (self.batcher.batch_size(), self.batcher.flush_cycles());
        self.batcher = Batcher::new();
        self.batcher.configure(size, flush);
        self.ckpt.wipe();
    }

    fn checkpoint_stats(&self) -> CheckpointStats {
        self.ckpt.stats()
    }

    fn checkpoint_history(&self) -> &[(u64, [u8; 32])] {
        self.ckpt.history()
    }

    fn make_request(req: Arc<Request>) -> PassiveMsg {
        PassiveMsg::Request(req)
    }

    fn as_reply(msg: &PassiveMsg) -> Option<&Reply> {
        match msg {
            PassiveMsg::Reply(r) => Some(r),
            _ => None,
        }
    }

    fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    fn current_view(&self) -> u64 {
        self.epoch
    }

    fn enable_durability(&mut self) {
        self.durability = true;
    }

    fn drain_durable(&mut self, out: &mut Vec<DurableEvent>) {
        out.append(&mut self.durable);
    }

    /// Rebuilds volatile state from the persisted record before the first
    /// input. Everything read back from disk is ingress: the certificate
    /// and snapshot digest are re-verified, the commit run must be dense
    /// and integrity-checked, and the first gap or garbage record stops
    /// the replay (state transfer closes the rest). (Already inside the
    /// crate-wide ingress lint region that opens above `handle_request`.)
    fn recover(&mut self, state: RecoveredState) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        if let Some((cert, log_len, snapshot)) = state.snapshot {
            if self.ckpt.verify_cert(&cert) && snapshot_matches(&cert, &snapshot) {
                if let Some((kv, sessions)) = decode_image(&snapshot) {
                    if let Some(machine) = KvStore::install_snapshot(kv) {
                        self.ckpt.adopt_cert(&cert);
                        self.machine = machine;
                        self.sessions = sessions;
                        for (client, seq, result) in self.sessions.iter() {
                            self.executed.insert(OpId { client, seq }, result.clone());
                        }
                        self.log.reset_to(log_len);
                        self.replay_ring = SeqWindow::with_base(log_len + 1);
                        report.installed_seq = cert.seq;
                    }
                }
            }
        }
        for (seq, batch) in &state.commits {
            if *seq <= self.log.committed() {
                continue; // covered by the snapshot
            }
            if *seq != self.log.committed() + 1 || batch.is_empty() || !batch.verify() {
                break; // gap or garbage: the rest comes via state transfer
            }
            for req in batch.requests() {
                let log_seq = self.log.committed() + 1;
                let result = Arc::new(self.machine.apply(&req.payload));
                self.log.push(LogEntry { seq: log_seq, op: req.op, digest: req.digest() });
                if self.ckpt.enabled() {
                    self.replay_ring.insert(log_seq, req.clone());
                }
                self.executed.insert(req.op, result.clone());
                if self.ckpt.enabled() {
                    self.sessions.note(req.op.client, req.op.seq, result);
                }
            }
            report.replayed += 1;
        }
        self.held_updates = SeqWindow::with_base(self.log.committed() + 1);
        self.next_seq = self.next_seq.max(self.log.committed() + 1);
        report.committed = self.log.committed();
        report
    }
}

impl PassiveReplica {
    /// Routes one input to its handler, emitting effects into `staged`.
    fn dispatch_input(
        &mut self,
        input: Input<PassiveMsg>,
        now: u64,
        staged: &mut Outbox<PassiveMsg>,
    ) {
        self.bootstrap(now, staged);
        match input {
            Input::Message { from: _, msg } => match msg {
                PassiveMsg::Request(req) => self.handle_request(req, staged),
                PassiveMsg::StateUpdate { epoch, first_seq, ops } => {
                    self.handle_state_update(epoch, first_seq, ops, now, staged)
                }
                PassiveMsg::Heartbeat { epoch, from: _, log_len } => {
                    if epoch >= self.epoch {
                        self.epoch = epoch;
                        self.last_heartbeat = now;
                        // The advertised log length exposes updates this
                        // backup never saw (e.g. lost during its own crash
                        // window) — resync before any failover promotes a
                        // stale log into committed history.
                        if !self.is_primary() && log_len > self.log.committed() {
                            self.maybe_request_sync(now, staged);
                        }
                    }
                }
                PassiveMsg::SyncRequest { from_seq, from: requester } => {
                    if self.is_primary() && requester != self.id {
                        if from_seq < self.shipped.base() {
                            // The gap starts below the shipped-window
                            // retention: those updates are gone, and a
                            // partial replay from `shipped.base()` would
                            // leave the backup with a hole it can never
                            // fill (it would silently stay promotable with
                            // a shorter log). Serve a full state transfer
                            // instead — the certificate-checked path.
                            self.handle_state_request(
                                from_seq.saturating_sub(1),
                                requester,
                                staged,
                            );
                            return;
                        }
                        // Replay the retained contiguous run from the
                        // requested sequence (bounded burst).
                        let mut ops = Vec::new();
                        for seq in from_seq..from_seq.saturating_add(SYNC_BURST) {
                            match self.shipped.get(seq) {
                                Some(op) => ops.push(op.clone()),
                                None => break,
                            }
                        }
                        if !ops.is_empty() {
                            staged.send(
                                Endpoint::Replica(requester),
                                PassiveMsg::StateUpdate {
                                    epoch: self.epoch,
                                    first_seq: from_seq,
                                    ops,
                                },
                            );
                        }
                    }
                }
                PassiveMsg::Checkpoint(voucher) => self.handle_checkpoint(*voucher),
                PassiveMsg::StateRequest { have, from: requester } => {
                    self.handle_state_request(have, requester, staged)
                }
                PassiveMsg::StateResponse(st) => self.handle_state_response(*st, now),
                PassiveMsg::Reply(_) => {}
            },
            Input::Timer { kind: TIMER_FLUSH, token } => {
                if self.batcher.on_flush_timer(token) && self.is_primary() {
                    self.flush_batch(staged);
                }
            }
            Input::Timer { kind: TIMER_HEARTBEAT, .. } => {
                if self.is_primary() {
                    staged.send(
                        Endpoint::Replica(self.peer()),
                        PassiveMsg::Heartbeat {
                            epoch: self.epoch,
                            from: self.id,
                            log_len: self.log.committed(),
                        },
                    );
                    staged.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
                }
            }
            Input::Timer { kind: TIMER_DETECT, .. } => {
                if !self.is_primary() {
                    if now.saturating_sub(self.last_heartbeat) > self.detect_timeout {
                        if self.ckpt.stable_seq() > self.log.committed() {
                            // Promotion gate: a certified checkpoint ahead
                            // of our log proves committed history we do
                            // not hold — promoting now would install a
                            // shorter log as the new committed prefix.
                            // Chase the transfer and keep detecting. (If
                            // the only snapshot holder is dead, the pair
                            // stays safely unavailable — the documented
                            // 2-replica residual.)
                            self.maybe_request_transfer(now, staged);
                            staged.arm(self.detect_timeout, TIMER_DETECT, 0);
                            return;
                        }
                        // Failure detected: promote self.
                        self.epoch += 1;
                        self.failovers += 1;
                        debug_assert!(self.is_primary());
                        staged.send(
                            Endpoint::Replica(self.peer()),
                            PassiveMsg::Heartbeat {
                                epoch: self.epoch,
                                from: self.id,
                                log_len: self.log.committed(),
                            },
                        );
                        staged.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
                    } else {
                        staged.arm(self.detect_timeout, TIMER_DETECT, 0);
                    }
                }
            }
            Input::Timer { .. } => {}
        }
        if self.ckpt.enabled() {
            // Any input may have revealed a stable certificate ahead of us
            // (post-wipe, or gapped past the shipped window): chase it,
            // rate-limited by the CST backoff.
            self.maybe_request_transfer(now, staged);
        }
    }
}
// lint: end

/// A primary-backup pair.
#[derive(Debug)]
pub struct PassiveCluster {
    nodes: Vec<PassiveReplica>,
}

impl PassiveCluster {
    /// Builds the pair with default detector settings (heartbeat every 200
    /// cycles, suspect after 800).
    pub fn new(config: &RunConfig) -> Self {
        let mut cluster = Self::with_detector(200, 800);
        let keys = CkptKeys::provision(config.seed, 2);
        for node in &mut cluster.nodes {
            node.set_batching(config.batch_size, config.batch_flush);
            node.set_checkpointing(config.checkpoint_interval, Arc::clone(&keys));
        }
        cluster
    }

    /// Builds the pair with explicit detector settings.
    pub fn with_detector(heartbeat_interval: u64, detect_timeout: u64) -> Self {
        PassiveCluster {
            nodes: vec![
                PassiveReplica::new(ReplicaId(0), heartbeat_interval, detect_timeout),
                PassiveReplica::new(ReplicaId(1), heartbeat_interval, detect_timeout),
            ],
        }
    }
}

impl Cluster for PassiveCluster {
    type Node = PassiveReplica;

    fn nodes_mut(&mut self) -> &mut [PassiveReplica] {
        &mut self.nodes
    }

    fn nodes(&self) -> &[PassiveReplica] {
        &self.nodes
    }

    fn into_nodes(self) -> Vec<PassiveReplica> {
        self.nodes
    }

    fn reply_quorum(&self) -> usize {
        1
    }

    fn protocol_name(&self) -> &'static str {
        "passive"
    }

    fn correct_replicas(&self) -> Vec<ReplicaId> {
        self.nodes.iter().filter(|n| !n.script().is_byzantine()).map(|n| n.id()).collect()
    }

    fn set_script(&mut self, id: ReplicaId, script: ReplicaScript) {
        self.nodes[id.0 as usize].set_script(script);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Behavior;
    use crate::runner::{run, RunConfig};

    fn config(clients: u32, reqs: u64, seed: u64) -> RunConfig {
        RunConfig { f: 1, clients, requests_per_client: reqs, seed, ..Default::default() }
    }

    #[test]
    fn fault_free_serves_from_primary() {
        let cfg = config(2, 10, 41);
        let mut cluster = PassiveCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 20);
        assert!(report.safety_ok);
        assert_eq!(report.n_replicas, 2, "passive needs one backup only");
        assert!(cluster.nodes()[0].is_primary());
        // Backup mirrors the primary's log via state updates.
        assert_eq!(cluster.nodes()[1].committed_log().len(), 20);
    }

    #[test]
    fn cheapest_steady_state_of_all_protocols() {
        let cfg = config(1, 10, 43);
        let passive = run(&mut PassiveCluster::new(&cfg), &cfg);
        let minbft = run(&mut crate::minbft::MinBftCluster::new(&cfg), &cfg);
        assert!(passive.messages_per_commit() < minbft.messages_per_commit());
    }

    #[test]
    fn batched_state_updates_mirror_the_log() {
        let cfg = RunConfig { batch_size: 4, batch_flush: 60, ..config(4, 8, 53) };
        let mut cluster = PassiveCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 32);
        assert!(report.safety_ok);
        assert_eq!(cluster.nodes()[1].committed_log().len(), 32);
        assert_eq!(
            cluster.nodes()[0].state_digest(),
            cluster.nodes()[1].state_digest(),
            "backup replays batched updates to the identical state"
        );
    }

    #[test]
    fn primary_crash_fails_over_to_backup() {
        let cfg = RunConfig { max_cycles: 10_000_000, ..config(1, 10, 45) };
        let mut cluster = PassiveCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(100).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 10, "backup finishes the workload");
        assert!(report.safety_ok);
        assert_eq!(cluster.nodes()[1].failovers(), 1);
        assert!(cluster.nodes()[1].is_primary());
    }

    #[test]
    fn failover_window_visible_in_latency_tail() {
        let cfg = RunConfig { max_cycles: 10_000_000, client_timeout: 500, ..config(1, 10, 47) };
        let mut cluster = PassiveCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(100).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 10);
        let p_max = report.commit_latency.quantile(1.0).unwrap();
        let p50 = report.commit_latency.median().unwrap();
        // The op in flight during failover pays detector timeout + retries.
        assert!(p_max > p50 * 10.0, "failover is not seamless: max {p_max} vs median {p50}");
        assert!(report.client_retries > 0);
    }

    #[test]
    fn no_failover_when_primary_healthy() {
        let cfg = config(1, 20, 49);
        let mut cluster = PassiveCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 20);
        assert_eq!(cluster.nodes()[1].failovers(), 0, "no spurious failovers");
    }

    #[test]
    #[should_panic(expected = "exactly two replicas")]
    fn rejects_third_replica() {
        PassiveReplica::new(ReplicaId(2), 100, 400);
    }
}
