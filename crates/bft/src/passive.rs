//! Passive (primary-backup) replication — §II-A's cheap baseline:
//! "Passive replication allows a failing system to failover into a backup
//! replica. This is a cheap solution that typically requires one passive
//! backup replica. However, recovery is slow, requires reliable detection
//! and is not seamless to the user."
//!
//! The primary executes requests and ships state updates to the backup;
//! a heartbeat failure detector promotes the backup when the primary goes
//! quiet. Experiment E4 measures exactly the paper's trade-off: steady-state
//! cost (2 replicas, 2 messages/op) vs the failover unavailability window.

use crate::adversary::ReplicaScript;
use crate::api::{
    BatchDecision, Batcher, Cluster, Endpoint, Input, LogEntry, Outbox, ReplicaId, ReplicaNode,
    Reply, Request,
};
use crate::dense::{OpIndex, SeqWindow};
use crate::runner::RunConfig;
use crate::statemachine::{KvStore, StateMachine};
use std::sync::Arc;

/// Timer kind: primary sends its next heartbeat.
const TIMER_HEARTBEAT: u32 = 1;
/// Timer kind: backup checks heartbeat freshness.
const TIMER_DETECT: u32 = 2;
/// Timer kind: the primary's partially filled batch waited long enough.
const TIMER_FLUSH: u32 = 3;

/// Passive-replication wire messages.
#[derive(Debug, Clone)]
pub enum PassiveMsg {
    /// Client request (shared across the fan-out).
    Request(Arc<Request>),
    /// Primary → backup: a contiguous run of executed operations and their
    /// results, shipped as one message (batching amortizes the per-message
    /// cost; `ops.len() == 1` is the unbatched case).
    StateUpdate {
        /// Epoch of the sending primary.
        epoch: u64,
        /// Log sequence of `ops[0]`; `ops[i]` has sequence `first_seq + i`.
        first_seq: u64,
        /// Executed `(request, result)` pairs in log order (results let the
        /// backup answer retries identically) — both shared, not copied.
        ops: Vec<(Arc<Request>, Arc<Vec<u8>>)>,
    },
    /// Primary liveness signal, advertising the primary's log length so a
    /// recovering backup can detect that it missed state updates.
    Heartbeat {
        /// Sender's epoch.
        epoch: u64,
        /// Sender.
        from: ReplicaId,
        /// Sender's committed-log length.
        log_len: u64,
    },
    /// Backup → primary: resend state updates from `from_seq` (the backup
    /// detected a gap — it crashed through, or the network lost, some
    /// updates; without a resync a later failover would promote a stale
    /// log, diverging committed history).
    SyncRequest {
        /// First missing log sequence.
        from_seq: u64,
        /// The requesting replica.
        from: ReplicaId,
    },
    /// Execution result (replica → client).
    Reply(Reply),
}

/// How many shipped `(request, result)` pairs the primary retains for
/// backup resync (beyond this horizon a gapped backup stays a laggard).
const SHIP_RETENTION: u64 = 512;
/// Cycles between a gapped backup's sync requests (request or response
/// can be lost — re-ask, but do not spam).
const SYNC_REQ_BACKOFF: u64 = 100;
/// Maximum operations resent per sync request.
const SYNC_BURST: u64 = 64;

/// One passive-replication replica (two per cluster).
#[derive(Debug)]
pub struct PassiveReplica {
    id: ReplicaId,
    script: ReplicaScript,
    /// Set while a crash window swallows inputs; the first input after
    /// recovery re-arms the heartbeat/detector chains (self-re-arming
    /// timers die when their firing lands inside the outage).
    in_outage: bool,
    /// Current primary epoch; primary is `epoch % 2`.
    epoch: u64,
    bootstrapped: bool,
    last_heartbeat: u64,
    heartbeat_interval: u64,
    detect_timeout: u64,
    log: Vec<LogEntry>,
    /// Exactly-once dedup: op → shared execution result.
    executed: OpIndex<Arc<Vec<u8>>>,
    machine: KvStore,
    next_seq: u64,
    /// Out-of-order state updates held back until their predecessors
    /// apply; the window watermark tracks the applied log prefix.
    held_updates: SeqWindow<(Arc<Request>, Arc<Vec<u8>>)>,
    /// Count of failovers this replica performed.
    failovers: u32,
    /// Shipped updates retained for backup resync, keyed by log sequence.
    shipped: SeqWindow<(Arc<Request>, Arc<Vec<u8>>)>,
    /// When this backup last asked for a resync (rate limiter).
    sync_req_at: u64,
    /// Batching front-end (primary only).
    batcher: Batcher,
}

impl PassiveReplica {
    /// Creates a replica; `id.0` must be 0 (initial primary) or 1 (backup).
    ///
    /// # Panics
    /// Panics for ids other than 0 and 1.
    pub fn new(id: ReplicaId, heartbeat_interval: u64, detect_timeout: u64) -> Self {
        assert!(id.0 < 2, "passive replication uses exactly two replicas");
        PassiveReplica {
            id,
            script: ReplicaScript::correct(),
            in_outage: false,
            epoch: 0,
            bootstrapped: false,
            last_heartbeat: 0,
            heartbeat_interval,
            detect_timeout,
            log: Vec::new(),
            executed: OpIndex::new(),
            machine: KvStore::new(),
            next_seq: 1,
            held_updates: SeqWindow::with_base(1),
            failovers: 0,
            shipped: SeqWindow::with_base(1),
            sync_req_at: 0,
            batcher: Batcher::new(),
        }
    }

    /// Configures the batching front-end: execute-and-ship a batch at
    /// `batch_size` requests, or after `batch_flush` cycles.
    pub fn set_batching(&mut self, batch_size: usize, batch_flush: u64) {
        self.batcher.configure(batch_size, batch_flush);
    }

    /// Digest of the replica's current state-machine state (for
    /// batched-vs-unbatched equivalence checks).
    pub fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    /// Installs a composable, time-phased fault script. Content-attack
    /// windows (equivocation, UI forgery) are inert here: passive
    /// replication has no votes or certificates to forge — a compromised
    /// tile manifests as silence or crash (see the
    /// [`rsoc_soc`-level mapping](crate::adversary::Behavior)).
    pub fn set_script(&mut self, script: ReplicaScript) {
        self.script = script;
    }

    /// The active fault script.
    pub fn script(&self) -> &ReplicaScript {
        &self.script
    }

    /// Whether this replica currently believes it is the primary.
    pub fn is_primary(&self) -> bool {
        (self.epoch % 2) as u32 == self.id.0
    }

    /// Number of failovers this replica performed.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    fn peer(&self) -> ReplicaId {
        ReplicaId(1 - self.id.0)
    }

    fn bootstrap(&mut self, now: u64, out: &mut Outbox<PassiveMsg>) {
        if self.bootstrapped {
            return;
        }
        self.bootstrapped = true;
        self.last_heartbeat = now;
        if self.is_primary() {
            out.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
        } else {
            out.arm(self.detect_timeout, TIMER_DETECT, 0);
        }
    }

    // Everything below is reachable from adversarial input: the scenario
    // engine can forge clients and replay/reorder replica traffic, so a
    // panic here is a remote crash (`rsoc_lint` enforces the contract).
    // lint: ingress
    fn handle_request(&mut self, req: Arc<Request>, out: &mut Outbox<PassiveMsg>) {
        if let Some(result) = self.executed.get(&req.op) {
            out.send(
                Endpoint::Client(req.op.client),
                PassiveMsg::Reply(Reply { replica: self.id, op: req.op, result: result.clone() }),
            );
            return;
        }
        if !self.is_primary() {
            return; // backups ignore requests — the failover gap E4 measures
        }
        match self.batcher.offer(req) {
            BatchDecision::Seal => self.flush_batch(out),
            BatchDecision::ArmTimer(token) => {
                out.arm(self.batcher.flush_cycles(), TIMER_FLUSH, token)
            }
            BatchDecision::Wait | BatchDecision::Duplicate => {}
        }
    }

    /// Executes the accumulated requests and ships them to the backup as a
    /// single state update.
    fn flush_batch(&mut self, out: &mut Outbox<PassiveMsg>) {
        let executed = &self.executed;
        let reqs = self.batcher.drain(|r| !executed.contains_key(&r.op));
        if reqs.is_empty() {
            return;
        }
        let first_seq = self.next_seq;
        let mut ops = Vec::with_capacity(reqs.len());
        for req in reqs {
            let seq = self.next_seq;
            self.next_seq += 1;
            let result = Arc::new(self.machine.apply(&req.payload));
            self.log.push(LogEntry { seq, op: req.op, digest: req.digest() });
            self.executed.insert(req.op, result.clone());
            out.send(
                Endpoint::Client(req.op.client),
                PassiveMsg::Reply(Reply { replica: self.id, op: req.op, result: result.clone() }),
            );
            ops.push((req, result));
        }
        for (i, op) in ops.iter().enumerate() {
            self.shipped.insert(first_seq + i as u64, op.clone());
        }
        if self.next_seq > SHIP_RETENTION {
            self.shipped.retire_below(self.next_seq - SHIP_RETENTION);
        }
        out.send(
            Endpoint::Replica(self.peer()),
            PassiveMsg::StateUpdate { epoch: self.epoch, first_seq, ops },
        );
    }

    /// Emits a rate-limited resync request when this backup's applied log
    /// is behind what the primary has shipped/advertised.
    fn maybe_request_sync(&mut self, now: u64, out: &mut Outbox<PassiveMsg>) {
        if now >= self.sync_req_at.saturating_add(SYNC_REQ_BACKOFF) {
            self.sync_req_at = now;
            out.send(
                Endpoint::Replica(self.peer()),
                PassiveMsg::SyncRequest { from_seq: self.log.len() as u64 + 1, from: self.id },
            );
        }
    }

    fn handle_state_update(
        &mut self,
        epoch: u64,
        first_seq: u64,
        ops: Vec<(Arc<Request>, Arc<Vec<u8>>)>,
        now: u64,
        out: &mut Outbox<PassiveMsg>,
    ) {
        if epoch < self.epoch || self.is_primary() {
            return; // stale update from a deposed primary
        }
        // Updates can be reordered by the interconnect; hold back until the
        // predecessor applied so the backup's log mirrors the primary's.
        // Re-deliveries of already-applied sequences fall below the window
        // watermark and are rejected outright.
        for (i, (req, result)) in ops.into_iter().enumerate() {
            if self.executed.contains_key(&req.op) {
                continue;
            }
            self.held_updates.insert(first_seq + i as u64, (req, result));
        }
        loop {
            let next = self.log.len() as u64 + 1;
            let Some((req, result)) = self.held_updates.remove(next) else { break };
            self.machine.apply(&req.payload);
            self.log.push(LogEntry { seq: next, op: req.op, digest: req.digest() });
            self.executed.insert(req.op, result);
            self.next_seq = self.next_seq.max(next + 1);
        }
        self.held_updates.retire_below(self.log.len() as u64 + 1);
        // A gap below the held-back updates means earlier updates were
        // lost (network drop, or this backup crashed through them): ask
        // the primary to replay from our log head.
        if first_seq > self.log.len() as u64 + 1 {
            self.maybe_request_sync(now, out);
        }
    }
}

impl ReplicaNode for PassiveReplica {
    type Msg = PassiveMsg;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_input(&mut self, input: Input<PassiveMsg>, now: u64, out: &mut Outbox<PassiveMsg>) {
        if self.script.crashed_at(now) {
            self.in_outage = true;
            return;
        }
        if self.in_outage {
            // Fail-recover: timer firings swallowed during the outage
            // killed their chains — restart them (a duplicate chain from a
            // timer that survived the window is harmless: each fire
            // re-arms exactly one successor). `last_heartbeat` is bumped
            // so a recovered backup grants the primary one fresh detection
            // period instead of failing over on pre-outage staleness.
            self.in_outage = false;
            self.last_heartbeat = now;
            if self.is_primary() {
                out.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
            } else {
                out.arm(self.detect_timeout, TIMER_DETECT, 0);
            }
        }
        if self.script.unconstrained() {
            // Fast path: outputs are never gated for a correct replica.
            self.dispatch_input(input, now, out);
            return;
        }
        let mut staged = Outbox::new();
        self.dispatch_input(input, now, &mut staged);
        if self.script.sends_at(now) {
            out.msgs.extend(staged.msgs);
        }
        out.timers.extend(staged.timers);
    }

    fn committed_log(&self) -> &[LogEntry] {
        &self.log
    }

    fn make_request(req: Arc<Request>) -> PassiveMsg {
        PassiveMsg::Request(req)
    }

    fn as_reply(msg: &PassiveMsg) -> Option<&Reply> {
        match msg {
            PassiveMsg::Reply(r) => Some(r),
            _ => None,
        }
    }

    fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    fn current_view(&self) -> u64 {
        self.epoch
    }
}

impl PassiveReplica {
    /// Routes one input to its handler, emitting effects into `staged`.
    fn dispatch_input(
        &mut self,
        input: Input<PassiveMsg>,
        now: u64,
        staged: &mut Outbox<PassiveMsg>,
    ) {
        self.bootstrap(now, staged);
        match input {
            Input::Message { from: _, msg } => match msg {
                PassiveMsg::Request(req) => self.handle_request(req, staged),
                PassiveMsg::StateUpdate { epoch, first_seq, ops } => {
                    self.handle_state_update(epoch, first_seq, ops, now, staged)
                }
                PassiveMsg::Heartbeat { epoch, from: _, log_len } => {
                    if epoch >= self.epoch {
                        self.epoch = epoch;
                        self.last_heartbeat = now;
                        // The advertised log length exposes updates this
                        // backup never saw (e.g. lost during its own crash
                        // window) — resync before any failover promotes a
                        // stale log into committed history.
                        if !self.is_primary() && log_len > self.log.len() as u64 {
                            self.maybe_request_sync(now, staged);
                        }
                    }
                }
                PassiveMsg::SyncRequest { from_seq, from: requester } => {
                    if self.is_primary() && requester != self.id {
                        // Replay the retained contiguous run from the
                        // requested sequence (bounded burst).
                        let mut ops = Vec::new();
                        for seq in from_seq..from_seq.saturating_add(SYNC_BURST) {
                            match self.shipped.get(seq) {
                                Some(op) => ops.push(op.clone()),
                                None => break,
                            }
                        }
                        if !ops.is_empty() {
                            staged.send(
                                Endpoint::Replica(requester),
                                PassiveMsg::StateUpdate {
                                    epoch: self.epoch,
                                    first_seq: from_seq,
                                    ops,
                                },
                            );
                        }
                    }
                }
                PassiveMsg::Reply(_) => {}
            },
            Input::Timer { kind: TIMER_FLUSH, token } => {
                if self.batcher.on_flush_timer(token) && self.is_primary() {
                    self.flush_batch(staged);
                }
            }
            Input::Timer { kind: TIMER_HEARTBEAT, .. } => {
                if self.is_primary() {
                    staged.send(
                        Endpoint::Replica(self.peer()),
                        PassiveMsg::Heartbeat {
                            epoch: self.epoch,
                            from: self.id,
                            log_len: self.log.len() as u64,
                        },
                    );
                    staged.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
                }
            }
            Input::Timer { kind: TIMER_DETECT, .. } => {
                if !self.is_primary() {
                    if now.saturating_sub(self.last_heartbeat) > self.detect_timeout {
                        // Failure detected: promote self.
                        self.epoch += 1;
                        self.failovers += 1;
                        debug_assert!(self.is_primary());
                        staged.send(
                            Endpoint::Replica(self.peer()),
                            PassiveMsg::Heartbeat {
                                epoch: self.epoch,
                                from: self.id,
                                log_len: self.log.len() as u64,
                            },
                        );
                        staged.arm(self.heartbeat_interval, TIMER_HEARTBEAT, 0);
                    } else {
                        staged.arm(self.detect_timeout, TIMER_DETECT, 0);
                    }
                }
            }
            Input::Timer { .. } => {}
        }
    }
}
// lint: end

/// A primary-backup pair.
#[derive(Debug)]
pub struct PassiveCluster {
    nodes: Vec<PassiveReplica>,
}

impl PassiveCluster {
    /// Builds the pair with default detector settings (heartbeat every 200
    /// cycles, suspect after 800).
    pub fn new(config: &RunConfig) -> Self {
        let mut cluster = Self::with_detector(200, 800);
        for node in &mut cluster.nodes {
            node.set_batching(config.batch_size, config.batch_flush);
        }
        cluster
    }

    /// Builds the pair with explicit detector settings.
    pub fn with_detector(heartbeat_interval: u64, detect_timeout: u64) -> Self {
        PassiveCluster {
            nodes: vec![
                PassiveReplica::new(ReplicaId(0), heartbeat_interval, detect_timeout),
                PassiveReplica::new(ReplicaId(1), heartbeat_interval, detect_timeout),
            ],
        }
    }
}

impl Cluster for PassiveCluster {
    type Node = PassiveReplica;

    fn nodes_mut(&mut self) -> &mut [PassiveReplica] {
        &mut self.nodes
    }

    fn nodes(&self) -> &[PassiveReplica] {
        &self.nodes
    }

    fn reply_quorum(&self) -> usize {
        1
    }

    fn protocol_name(&self) -> &'static str {
        "passive"
    }

    fn correct_replicas(&self) -> Vec<ReplicaId> {
        self.nodes.iter().filter(|n| !n.script().is_byzantine()).map(|n| n.id()).collect()
    }

    fn set_script(&mut self, id: ReplicaId, script: ReplicaScript) {
        self.nodes[id.0 as usize].set_script(script);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Behavior;
    use crate::runner::{run, RunConfig};

    fn config(clients: u32, reqs: u64, seed: u64) -> RunConfig {
        RunConfig { f: 1, clients, requests_per_client: reqs, seed, ..Default::default() }
    }

    #[test]
    fn fault_free_serves_from_primary() {
        let cfg = config(2, 10, 41);
        let mut cluster = PassiveCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 20);
        assert!(report.safety_ok);
        assert_eq!(report.n_replicas, 2, "passive needs one backup only");
        assert!(cluster.nodes()[0].is_primary());
        // Backup mirrors the primary's log via state updates.
        assert_eq!(cluster.nodes()[1].committed_log().len(), 20);
    }

    #[test]
    fn cheapest_steady_state_of_all_protocols() {
        let cfg = config(1, 10, 43);
        let passive = run(&mut PassiveCluster::new(&cfg), &cfg);
        let minbft = run(&mut crate::minbft::MinBftCluster::new(&cfg), &cfg);
        assert!(passive.messages_per_commit() < minbft.messages_per_commit());
    }

    #[test]
    fn batched_state_updates_mirror_the_log() {
        let cfg = RunConfig { batch_size: 4, batch_flush: 60, ..config(4, 8, 53) };
        let mut cluster = PassiveCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 32);
        assert!(report.safety_ok);
        assert_eq!(cluster.nodes()[1].committed_log().len(), 32);
        assert_eq!(
            cluster.nodes()[0].state_digest(),
            cluster.nodes()[1].state_digest(),
            "backup replays batched updates to the identical state"
        );
    }

    #[test]
    fn primary_crash_fails_over_to_backup() {
        let cfg = RunConfig { max_cycles: 10_000_000, ..config(1, 10, 45) };
        let mut cluster = PassiveCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(100).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 10, "backup finishes the workload");
        assert!(report.safety_ok);
        assert_eq!(cluster.nodes()[1].failovers(), 1);
        assert!(cluster.nodes()[1].is_primary());
    }

    #[test]
    fn failover_window_visible_in_latency_tail() {
        let cfg = RunConfig { max_cycles: 10_000_000, client_timeout: 500, ..config(1, 10, 47) };
        let mut cluster = PassiveCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(100).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 10);
        let p_max = report.commit_latency.quantile(1.0).unwrap();
        let p50 = report.commit_latency.median().unwrap();
        // The op in flight during failover pays detector timeout + retries.
        assert!(p_max > p50 * 10.0, "failover is not seamless: max {p_max} vs median {p50}");
        assert!(report.client_retries > 0);
    }

    #[test]
    fn no_failover_when_primary_healthy() {
        let cfg = config(1, 20, 49);
        let mut cluster = PassiveCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 20);
        assert_eq!(cluster.nodes()[1].failovers(), 0, "no spurious failovers");
    }

    #[test]
    #[should_panic(expected = "exactly two replicas")]
    fn rejects_third_replica() {
        PassiveReplica::new(ReplicaId(2), 100, 400);
    }
}
