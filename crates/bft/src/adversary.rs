//! Composable, time-phased fault and intrusion scripts — the adversarial
//! scenario engine behind the F5 campaign.
//!
//! The flat [`Behavior`] enum could express six
//! hard-coded misbehaviours, each interpreted ad hoc inside one protocol.
//! A resilience *campaign* (the paper's §I claim: accidental faults *and*
//! targeted intrusions) needs faults that compose and evolve over virtual
//! time: a primary that crashes and recovers, a link that degrades for a
//! window, a partition that heals, a client-side flood that subsides. This
//! module provides three layers:
//!
//! * [`ReplicaScript`] — per-replica, time-phased fault windows: crash /
//!   recover, silence, equivocation, UI forgery, delayed / duplicated /
//!   reordered sends, and stale-message replay. Replicas interpret only the
//!   *content* attacks (equivocation, forgery — those need protocol
//!   knowledge to fabricate conflicting messages); every transport-level
//!   window is interpreted uniformly by the
//!   [runner](crate::runner::run_scenario), not per protocol.
//! * [`Scenario`] — a whole-run script: replica scripts plus network-level
//!   faults (replica-set partitions over a cycle window, per-source link
//!   degradation with drop/delay, DoS-rate client floods).
//! * [`ScenarioOracle`] — the pass/fail judge run after every scenario:
//!   **safety always** (no two correct replicas commit conflicting ops at a
//!   sequence; state digests of equally-advanced correct replicas agree at
//!   quiesce) and **liveness once faults heal** (every op from a correct
//!   client commits within the run's patience bound).
//!
//! All scripts are plain data (`Clone + Debug`), deterministic to
//! interpret, and **free when disabled**: an empty scenario leaves the
//! runner's virtual-time trace bit-identical to the unscripted path (the
//! BENCH_2/3/4 records regenerate unchanged — asserted in CI).

use crate::api::{Cluster, ReplicaNode};
use crate::runner::RunReport;
use rsoc_sim::PulseTrain;
// The time-phasing primitive is shared with the NoC's `LinkScript` via
// `rsoc_sim`, so window-containment semantics cannot drift between the
// message-plane and packet-plane fault interpreters.
pub use rsoc_sim::Window;

/// Named one-fault presets (§I: benign *and* malicious/Byzantine faults)
/// kept for ergonomic scenario setup. Each preset lowers to a one-window
/// [`ReplicaScript`] via `From`, and the protocols interpret only
/// scripts — install one with
/// [`Cluster::set_script`]`(id, Behavior::Silent.into())`. Content
/// attacks (equivocation, UI forgery) are still realized per protocol:
/// an "equivocating" PBFT primary actually sends conflicting
/// pre-prepares, and a MinBFT attacker actually fabricates USIG
/// certificates (which then fail verification — the hybrid at work).
///
/// (Folded in from the former `behavior` module: the preset enum now
/// lives next to the script engine it lowers onto, and the deprecated
/// `set_behavior` cluster shim is gone.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Crashed from the start: ignores everything, sends nothing.
    Crashed,
    /// Crashes at the given virtual time (benign fail-stop).
    CrashAt(u64),
    /// Receives but never sends (omission fault / kill-switch silence).
    Silent,
    /// Byzantine: when primary, sends conflicting proposals to different
    /// backups; when backup, votes for bogus digests.
    Equivocate,
    /// Byzantine (MinBFT-specific): attempts to reuse a USIG counter by
    /// forging a certificate for a second conflicting message.
    ForgeUi,
}

/// A stale-message replay schedule: while the window is active, every
/// `period` cycles the network re-injects up to `burst` of the replica's
/// oldest recorded protocol sends (stale views, consumed USIG counters,
/// already-applied state updates — the receiver must reject them all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySpec {
    /// When the replay attack runs.
    pub window: Window,
    /// Cycles between injection bursts (clamped to ≥ 1).
    pub period: u64,
    /// Recorded messages re-sent per burst.
    pub burst: usize,
}

impl ReplaySpec {
    /// The burst schedule as a scripted event source.
    pub fn train(&self) -> PulseTrain {
        PulseTrain::new(self.window.from, self.window.until, self.period)
    }
}

/// A composable, time-phased fault script for one replica.
///
/// Each fault class holds independent windows, so scripts compose freely:
/// a replica can equivocate early, fall silent for a window, then crash
/// for good. The [`Behavior`] presets convert losslessly via `From`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaScript {
    crash: Vec<Window>,
    silence: Vec<Window>,
    equivocate: Vec<Window>,
    forge_ui: Vec<Window>,
    delay: Vec<(Window, u64)>,
    duplicate: Vec<Window>,
    reorder: Vec<Window>,
    replay: Vec<ReplaySpec>,
    rejuvenate: Vec<u64>,
    corrupt_snapshot: Vec<Window>,
    corrupt_suffix: Vec<Window>,
    forge_checkpoint: Vec<Window>,
}

impl ReplicaScript {
    /// A script with no faults (the correct replica).
    pub fn correct() -> Self {
        Self::default()
    }

    /// Adds a crash window: inputs are ignored while it is active; the
    /// replica resumes with its pre-crash state afterwards (fail-recover).
    pub fn crash(mut self, w: Window) -> Self {
        self.crash.push(w);
        self
    }

    /// Adds a silence window: the replica receives but sends nothing
    /// (omission fault / kill-switch).
    pub fn silence(mut self, w: Window) -> Self {
        self.silence.push(w);
        self
    }

    /// Adds an equivocation window (PBFT-style conflicting proposals).
    pub fn equivocate(mut self, w: Window) -> Self {
        self.equivocate.push(w);
        self
    }

    /// Adds a UI-forgery window (MinBFT-style fabricated certificates).
    pub fn forge_ui(mut self, w: Window) -> Self {
        self.forge_ui.push(w);
        self
    }

    /// Adds a send-delay window: every message this replica sends during
    /// it arrives `extra` cycles late (slow/aging egress link).
    pub fn delay_sends(mut self, w: Window, extra: u64) -> Self {
        self.delay.push((w, extra));
        self
    }

    /// Adds a duplication window: every send is delivered twice.
    pub fn duplicate_sends(mut self, w: Window) -> Self {
        self.duplicate.push(w);
        self
    }

    /// Adds a reorder window: each outbox burst departs in reversed order.
    pub fn reorder_sends(mut self, w: Window) -> Self {
        self.reorder.push(w);
        self
    }

    /// Adds a stale-replay schedule (see [`ReplaySpec`]).
    pub fn replay_sends(mut self, spec: ReplaySpec) -> Self {
        self.replay.push(spec);
        self
    }

    /// Schedules a rejuvenation at virtual time `at`: the runner wipes the
    /// replica's volatile state (see [`ReplicaNode::wipe`]) and it must
    /// re-join through certificate-verified state transfer.
    pub fn rejuvenate_at(mut self, at: u64) -> Self {
        self.rejuvenate.push(at);
        self
    }

    /// Adds a snapshot-corruption window: state-transfer snapshots this
    /// replica *serves* during it are tampered with (the requester's
    /// certificate cross-check must reject them).
    pub fn corrupt_snapshots(mut self, w: Window) -> Self {
        self.corrupt_snapshot.push(w);
        self
    }

    /// Adds a suffix-corruption window: the log suffixes this replica
    /// *serves* with state transfers during it carry batches the cluster
    /// never committed (certificate and snapshot stay honest, so only the
    /// requester's f+1 slot-by-slot vote can out-vote the lie).
    pub fn corrupt_suffixes(mut self, w: Window) -> Self {
        self.corrupt_suffix.push(w);
        self
    }

    /// Adds a checkpoint-forgery window: instead of honest vouchers, the
    /// replica broadcasts vouchers over a fabricated state digest (one
    /// with a garbage MAC, one properly keyed — neither may certify).
    pub fn forge_checkpoints(mut self, w: Window) -> Self {
        self.forge_checkpoint.push(w);
        self
    }

    /// True when the script has no faults at all — the hot-path flag the
    /// protocols use to skip the staging outbox entirely.
    pub fn unconstrained(&self) -> bool {
        self.crash.is_empty()
            && self.silence.is_empty()
            && self.equivocate.is_empty()
            && self.forge_ui.is_empty()
            && self.delay.is_empty()
            && self.duplicate.is_empty()
            && self.reorder.is_empty()
            && self.replay.is_empty()
            && self.rejuvenate.is_empty()
            && self.corrupt_snapshot.is_empty()
            && self.corrupt_suffix.is_empty()
            && self.forge_checkpoint.is_empty()
    }

    /// Whether the replica ignores inputs at `now` (inside a crash window).
    pub fn crashed_at(&self, now: u64) -> bool {
        self.crash.iter().any(|w| w.contains(now))
    }

    /// Whether the replica's sends leave the tile at `now`.
    pub fn sends_at(&self, now: u64) -> bool {
        !self.crashed_at(now) && !self.silence.iter().any(|w| w.contains(now))
    }

    /// Whether an equivocation window is active at `now`.
    pub fn equivocates_at(&self, now: u64) -> bool {
        self.equivocate.iter().any(|w| w.contains(now))
    }

    /// Whether a UI-forgery window is active at `now`.
    pub fn forges_ui_at(&self, now: u64) -> bool {
        self.forge_ui.iter().any(|w| w.contains(now))
    }

    /// Extra send latency at `now` (sums overlapping delay windows).
    pub fn send_delay_at(&self, now: u64) -> u64 {
        self.delay.iter().filter(|(w, _)| w.contains(now)).map(|(_, e)| e).sum()
    }

    /// Whether sends are duplicated at `now`.
    pub fn duplicates_at(&self, now: u64) -> bool {
        self.duplicate.iter().any(|w| w.contains(now))
    }

    /// Whether outbox bursts are reordered at `now`.
    pub fn reorders_at(&self, now: u64) -> bool {
        self.reorder.iter().any(|w| w.contains(now))
    }

    /// The replay schedules of this script.
    pub fn replays(&self) -> &[ReplaySpec] {
        &self.replay
    }

    /// The scheduled rejuvenation times of this script.
    pub fn rejuvenations(&self) -> &[u64] {
        &self.rejuvenate
    }

    /// Whether a snapshot-corruption window is active at `now`.
    pub fn corrupts_snapshot_at(&self, now: u64) -> bool {
        self.corrupt_snapshot.iter().any(|w| w.contains(now))
    }

    /// Whether a suffix-corruption window is active at `now`.
    pub fn corrupts_suffix_at(&self, now: u64) -> bool {
        self.corrupt_suffix.iter().any(|w| w.contains(now))
    }

    /// Whether a checkpoint-forgery window is active at `now`.
    pub fn forges_checkpoint_at(&self, now: u64) -> bool {
        self.forge_checkpoint.iter().any(|w| w.contains(now))
    }

    /// Whether the script mounts a *content* attack (equivocation, UI
    /// forgery, checkpoint forgery, snapshot corruption) at any time. Such
    /// replicas are excluded from cross-replica safety checks — their logs
    /// and state are attacker-controlled. Transport-level faults (crash,
    /// silence, delay, duplication, reordering, replay) and rejuvenation
    /// leave the replica's *state* honest, so it stays in the checked set.
    pub fn is_byzantine(&self) -> bool {
        !self.equivocate.is_empty()
            || !self.forge_ui.is_empty()
            || !self.corrupt_snapshot.is_empty()
            || !self.corrupt_suffix.is_empty()
            || !self.forge_checkpoint.is_empty()
    }

    /// The first cycle by which every windowed fault of this script is
    /// over (`u64::MAX` when any window never heals).
    pub fn heals_by(&self) -> u64 {
        let untils = self
            .crash
            .iter()
            .chain(&self.silence)
            .chain(&self.equivocate)
            .chain(&self.forge_ui)
            .chain(&self.corrupt_snapshot)
            .chain(&self.corrupt_suffix)
            .chain(&self.forge_checkpoint)
            .map(|w| w.until)
            .chain(self.delay.iter().map(|(w, _)| w.until))
            .chain(self.duplicate.iter().map(|w| w.until))
            .chain(self.reorder.iter().map(|w| w.until))
            .chain(self.replay.iter().map(|r| r.window.until))
            // A rejuvenation is instantaneous: the fault is "over" the
            // cycle after the wipe (recovery itself is the protocol's job).
            .chain(self.rejuvenate.iter().map(|t| t.saturating_add(1)));
        untils.max().unwrap_or(0)
    }
}

impl From<Behavior> for ReplicaScript {
    /// Every preset is a one-window script; the lowering is lossless, so
    /// preset-driven runs are bit-identical to their scripted spelling.
    fn from(b: Behavior) -> Self {
        let s = ReplicaScript::correct();
        match b {
            Behavior::Correct => s,
            Behavior::Crashed => s.crash(Window::ALWAYS),
            Behavior::CrashAt(t) => s.crash(Window::from(t)),
            Behavior::Silent => s.silence(Window::ALWAYS),
            Behavior::Equivocate => s.equivocate(Window::ALWAYS),
            Behavior::ForgeUi => s.forge_ui(Window::ALWAYS),
        }
    }
}

/// A replica-set partition over a cycle window: while active, every
/// protocol message crossing the boundary between `members` and the rest
/// of the cluster is lost. Clients sit at the I/O tile and stay reachable
/// (the partition models inter-tile NoC links, not the client port).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Replica ids on the severed side.
    pub members: Vec<u32>,
    /// When the partition holds.
    pub window: Window,
}

/// Windowed degradation of one replica's egress links (or all replicas'
/// when `source` is `None`): probabilistic drops plus a fixed extra delay,
/// optionally narrowed to one destination replica.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Source replica (`None` = every replica's egress).
    pub source: Option<u32>,
    /// Destination replica (`None` = any destination).
    pub dest: Option<u32>,
    /// When the fault is active.
    pub window: Window,
    /// Probability a crossing message is lost (drawn from the fault RNG).
    pub drop_rate: f64,
    /// Extra cycles added to every crossing message.
    pub extra_delay: u64,
}

/// A DoS-rate client flood: a non-workload attacker client injects one
/// well-formed request every `period` cycles while the window is active.
/// Replicas must order and execute them like any request; the oracle
/// counts only the *workload* clients for liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flood {
    /// When the flood runs.
    pub window: Window,
    /// Cycles between injected requests (clamped to ≥ 1).
    pub period: u64,
    /// Payload bytes per flood request.
    pub payload_size: usize,
}

impl Flood {
    /// The injection schedule as a scripted event source.
    pub fn train(&self) -> PulseTrain {
        PulseTrain::new(self.window.from, self.window.until, self.period)
    }
}

/// A whole-run adversarial scenario: per-replica scripts plus
/// network-level faults, interpreted uniformly by
/// [`run_scenario`](crate::runner::run_scenario).
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Per-replica fault scripts (replica id, script).
    pub replicas: Vec<(u32, ReplicaScript)>,
    /// Replica-set partitions.
    pub partitions: Vec<Partition>,
    /// Link degradations on the message plane.
    pub links: Vec<LinkFault>,
    /// DoS-rate client floods.
    pub floods: Vec<Flood>,
}

impl Scenario {
    /// The empty (fault-free) scenario.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a replica script.
    pub fn script(mut self, replica: u32, script: ReplicaScript) -> Self {
        self.replicas.push((replica, script));
        self
    }

    /// Adds a partition isolating `members` during `window`.
    pub fn partition(mut self, members: Vec<u32>, window: Window) -> Self {
        self.partitions.push(Partition { members, window });
        self
    }

    /// Adds a link fault.
    pub fn link_fault(mut self, fault: LinkFault) -> Self {
        self.links.push(fault);
        self
    }

    /// Adds a client flood.
    pub fn flood(mut self, flood: Flood) -> Self {
        self.floods.push(flood);
        self
    }

    /// True when the scenario contains no faults at all. The runner uses
    /// this to keep the unscripted hot path branch-predictable: one load
    /// and test per event, no per-message scenario scans.
    pub fn is_empty(&self) -> bool {
        self.replicas.iter().all(|(_, s)| s.unconstrained())
            && self.partitions.is_empty()
            && self.links.is_empty()
            && self.floods.is_empty()
    }

    /// The first cycle by which every fault in the scenario is over
    /// (`u64::MAX` when anything never heals). Permanent *crash* windows
    /// are tolerated faults, not healing ones — liveness expectations stay
    /// with the caller, which knows the protocol's fault threshold.
    pub fn heals_by(&self) -> u64 {
        let replica_heal = self.replicas.iter().map(|(_, s)| s.heals_by()).max().unwrap_or(0);
        let partition_heal = self.partitions.iter().map(|p| p.window.until).max().unwrap_or(0);
        let link_heal = self.links.iter().map(|l| l.window.until).max().unwrap_or(0);
        let flood_heal = self.floods.iter().map(|f| f.window.until).max().unwrap_or(0);
        replica_heal.max(partition_heal).max(link_heal).max(flood_heal)
    }

    /// The script for `replica`, if any (merging is not supported: one
    /// script per replica, last one wins).
    pub fn script_for(&self, replica: u32) -> Option<&ReplicaScript> {
        self.replicas.iter().rev().find(|(r, _)| *r == replica).map(|(_, s)| s)
    }
}

/// The verdict of one [`ScenarioOracle`] judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleVerdict {
    /// No two correct replicas committed conflicting entries (from the
    /// runner's cross-replica log check).
    pub safety_ok: bool,
    /// All equally-advanced correct replicas hold identical state-machine
    /// digests at quiesce.
    pub digests_ok: bool,
    /// Every workload-client op reached its reply quorum.
    pub liveness_ok: bool,
    /// Whether liveness was required for this scenario (faults within the
    /// protocol's tolerance, or healed before the patience bound).
    pub liveness_expected: bool,
}

impl OracleVerdict {
    /// Overall pass: safety and digest agreement always; liveness when
    /// expected.
    pub fn pass(&self) -> bool {
        self.safety_ok && self.digests_ok && (self.liveness_ok || !self.liveness_expected)
    }
}

/// The safety/liveness judge run after every scenario cell.
///
/// Safety is judged unconditionally: Byzantine faults may *never* split
/// the correct replicas, healed or not. Liveness is judged against the
/// caller-declared expectation, because only the caller knows whether the
/// scripted faults stay inside the protocol's tolerance (f crashes for
/// 3f+1 PBFT is tolerated; the same script against a 2-replica passive
/// pair is not).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOracle {
    /// Whether all workload ops must commit for the cell to pass.
    pub expect_liveness: bool,
}

impl ScenarioOracle {
    /// An oracle that requires liveness.
    pub fn expecting_liveness() -> Self {
        ScenarioOracle { expect_liveness: true }
    }

    /// An oracle for scenarios where stalling is acceptable (safety-only).
    pub fn safety_only() -> Self {
        ScenarioOracle { expect_liveness: false }
    }

    /// Judges one finished run: `expected_ops` is the workload total
    /// (clients × requests per client, floods excluded).
    pub fn judge<C: Cluster>(
        &self,
        cluster: &C,
        report: &RunReport,
        expected_ops: u64,
    ) -> OracleVerdict {
        let correct = cluster.correct_replicas();
        let nodes = cluster.nodes();
        // Digest agreement at quiesce: correct replicas at the same total
        // committed progress must hold the same state. Progress is
        // `committed_seq()`, not retained-log length — with checkpointing
        // enabled the log truncates below the stable watermark (and a
        // state-transferred replica holds only a suffix), so equally
        // advanced replicas can retain different entry counts. Laggards (a
        // partitioned or recovering replica still catching up) are compared
        // only against peers at their own progress — their log overlap is
        // already covered by the safety check.
        let mut digests_ok = true;
        for (i, &a) in correct.iter().enumerate() {
            for &b in &correct[i + 1..] {
                let (na, nb) = (&nodes[a.0 as usize], &nodes[b.0 as usize]);
                if na.committed_seq() == nb.committed_seq()
                    && na.state_digest() != nb.state_digest()
                {
                    digests_ok = false;
                }
            }
        }
        OracleVerdict {
            safety_ok: report.safety_ok,
            digests_ok,
            liveness_ok: report.committed >= expected_ops,
            liveness_expected: self.expect_liveness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_presets_convert_losslessly() {
        let correct = ReplicaScript::from(Behavior::Correct);
        assert!(correct.unconstrained());
        assert!(!correct.crashed_at(0) && correct.sends_at(u64::MAX - 1));

        let crashed = ReplicaScript::from(Behavior::Crashed);
        assert!(crashed.crashed_at(0) && !crashed.sends_at(0));

        let crash_at = ReplicaScript::from(Behavior::CrashAt(10));
        assert!(!crash_at.crashed_at(9));
        assert!(crash_at.crashed_at(10));

        let silent = ReplicaScript::from(Behavior::Silent);
        assert!(!silent.crashed_at(5), "silent receives");
        assert!(!silent.sends_at(5), "silent never sends");

        assert!(ReplicaScript::from(Behavior::Equivocate).equivocates_at(123));
        assert!(ReplicaScript::from(Behavior::Equivocate).is_byzantine());
        assert!(ReplicaScript::from(Behavior::ForgeUi).forges_ui_at(123));
        assert!(ReplicaScript::from(Behavior::ForgeUi).is_byzantine());
        assert!(!ReplicaScript::from(Behavior::Crashed).is_byzantine());
    }

    #[test]
    fn scripts_compose_phases() {
        // Equivocate early, silent in the middle, crashed at the end —
        // each phase queried independently.
        let s = ReplicaScript::correct()
            .equivocate(Window::new(0, 100))
            .silence(Window::new(200, 300))
            .crash(Window::from(400));
        assert!(s.equivocates_at(50) && !s.equivocates_at(150));
        assert!(s.sends_at(150));
        assert!(!s.sends_at(250) && !s.crashed_at(250));
        assert!(s.crashed_at(400) && !s.sends_at(400));
        assert!(s.is_byzantine());
        assert_eq!(s.heals_by(), u64::MAX);
        assert!(!s.unconstrained());
    }

    #[test]
    fn transport_fault_queries() {
        let s = ReplicaScript::correct()
            .delay_sends(Window::new(10, 20), 7)
            .delay_sends(Window::new(15, 30), 3)
            .duplicate_sends(Window::new(5, 6))
            .reorder_sends(Window::new(8, 9))
            .replay_sends(ReplaySpec { window: Window::new(40, 50), period: 5, burst: 2 });
        assert_eq!(s.send_delay_at(12), 7);
        assert_eq!(s.send_delay_at(17), 10, "overlapping delay windows sum");
        assert_eq!(s.send_delay_at(25), 3);
        assert_eq!(s.send_delay_at(30), 0);
        assert!(s.duplicates_at(5) && !s.duplicates_at(6));
        assert!(s.reorders_at(8) && !s.reorders_at(9));
        assert_eq!(s.replays().len(), 1);
        assert!(!s.is_byzantine(), "transport faults keep state honest");
        assert_eq!(s.heals_by(), 50);
    }

    #[test]
    fn scenario_emptiness_and_heal_time() {
        assert!(Scenario::none().is_empty());
        assert_eq!(Scenario::none().heals_by(), 0);
        let sc = Scenario::none()
            .script(0, ReplicaScript::correct().crash(Window::new(100, 200)))
            .partition(vec![3], Window::new(50, 400))
            .link_fault(LinkFault {
                source: Some(1),
                dest: None,
                window: Window::new(10, 600),
                drop_rate: 0.5,
                extra_delay: 0,
            })
            .flood(Flood { window: Window::new(0, 300), period: 40, payload_size: 16 });
        assert!(!sc.is_empty());
        assert_eq!(sc.heals_by(), 600);
        assert!(sc.script_for(0).is_some());
        assert!(sc.script_for(1).is_none());
        // A scenario whose only script is unconstrained is still empty.
        let noop = Scenario::none().script(2, ReplicaScript::correct());
        assert!(noop.is_empty());
    }

    #[test]
    fn verdict_pass_rules() {
        let v = |safety, digests, live, expected| OracleVerdict {
            safety_ok: safety,
            digests_ok: digests,
            liveness_ok: live,
            liveness_expected: expected,
        };
        assert!(v(true, true, true, true).pass());
        assert!(v(true, true, false, false).pass(), "stall allowed when not expected live");
        assert!(!v(true, true, false, true).pass());
        assert!(!v(false, true, true, false).pass(), "safety is unconditional");
        assert!(!v(true, false, true, false).pass(), "digest agreement is unconditional");
    }
}
