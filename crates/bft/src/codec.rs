//! The shared wire codec: one versioned, length-framed binary encoding
//! for every protocol message, used by *both* planes.
//!
//! The simulator never serializes (messages travel as in-memory values),
//! but its **digest path does**: [`crate::api::Batch`] identity is
//! a SHA-256 over a canonical length-framed byte layout. The TCP plane
//! (`rsoc_transport`) needs exactly such a layout for its socket frames.
//! This module is the single definition both consume:
//!
//! * [`request_fields`] emits the canonical bytes of one request — the
//!   batch digest hashes them incrementally (no allocation on the hot
//!   path), the [`Wire`] impl appends the very same bytes to a frame. A
//!   batch's frame encoding *is* its digest pre-image:
//!   `sha256(encode(batch)) == batch.digest()`.
//! * [`Wire`] is the encode/decode pair every wire-visible type
//!   implements; [`encode_frame`]/[`decode_frame`] add the format version
//!   byte. The socket layer's u32 length prefix lives in
//!   `rsoc_transport::frame` — framing is transport, content is here.
//!
//! Decoding is total: it consumes attacker-controlled bytes and returns
//! `Option`, never panicking and never trusting a length field beyond the
//! bytes actually present (collection counts are sanity-checked against
//! the remaining input before any allocation). The decode path is an
//! ingress region under `rsoc_lint`.

use crate::api::{Batch, ClientId, Endpoint, OpId, ReplicaId, Reply, Request};
use crate::checkpoint::{CheckpointCert, CheckpointVoucher, StateTransfer};
use crate::minbft::{CommitVote, MinBftMsg};
use crate::passive::PassiveMsg;
use crate::pbft::PbftMsg;
use rsoc_crypto::Tag;
use rsoc_hybrid::{UsigId, UI};
use std::sync::Arc;

/// Wire format version, the first byte of every frame. Bumped on any
/// incompatible layout change; decoders reject other versions outright.
/// Version 2: `StateTransfer` carries a slot-grained batch suffix and no
/// longer an `exec_upto` claim (the receiver derives it from the voted
/// suffix).
pub const WIRE_VERSION: u8 = 2;

/// Emits the canonical wire bytes of one request:
/// `client u32 LE | seq u64 LE | payload_len u64 LE | payload`.
///
/// The **single definition** of request framing: the batch digest hashes
/// these slices incrementally and the [`Wire`] impl appends them to a
/// frame, so the simulator's digest path and the socket framing cannot
/// drift apart.
pub fn request_fields(r: &Request, emit: &mut dyn FnMut(&[u8])) {
    emit(&r.op.client.0.to_le_bytes());
    emit(&r.op.seq.to_le_bytes());
    emit(&(r.payload.len() as u64).to_le_bytes());
    emit(&r.payload);
}

// lint: ingress
// (Everything below decodes attacker-controlled bytes: no panics, no
// unchecked indexing, no length field trusted beyond the bytes present.)

/// A bounds-checked cursor over an incoming byte slice.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when every byte was consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.buf.len() {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    /// Reads a `u32` (little-endian).
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a `u64` (little-endian).
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a 32-byte array (digests, tags).
    pub fn array32(&mut self) -> Option<[u8; 32]> {
        self.take(32)?.try_into().ok()
    }

    /// Reads a collection count and sanity-checks it against the input:
    /// every element encodes to at least one byte, so a count exceeding
    /// the remaining bytes is a lie — reject it *before* allocating.
    pub fn count(&mut self) -> Option<usize> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return None;
        }
        Some(n as usize)
    }
}

/// Versioned binary encoding of one wire-visible type.
///
/// `encode` appends to `buf` (frames are built incrementally, one
/// allocation per frame); `decode` consumes from a bounds-checked
/// [`Reader`] and returns `None` on any malformed input — short buffers,
/// unknown discriminants, lying length fields, content that fails
/// integrity checks. It must never panic.
pub trait Wire: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value, advancing `r` past exactly the bytes consumed.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

/// Encodes `value` as one versioned frame body (no length prefix — the
/// socket layer owns that).
pub fn encode_frame<T: Wire>(value: &T, buf: &mut Vec<u8>) {
    buf.push(WIRE_VERSION);
    value.encode(buf);
}

/// Decodes one versioned frame body. Rejects wrong versions, malformed
/// content, and trailing garbage (a frame must be exactly one value).
pub fn decode_frame<T: Wire>(bytes: &[u8]) -> Option<T> {
    let mut r = Reader::new(bytes);
    if r.u8()? != WIRE_VERSION {
        return None;
    }
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return None;
    }
    Some(value)
}

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u8()
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Wire for [u8; 32] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.array32()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(None),
            1 => Some(Some(T::decode(r)?)),
            _ => None,
        }
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(Box::new(T::decode(r)?))
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(Arc::new(T::decode(r)?))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.encode(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n = r.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Some(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?))
    }
}

impl Wire for ReplicaId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(ReplicaId(r.u32()?))
    }
}

impl Wire for ClientId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(ClientId(r.u32()?))
    }
}

impl Wire for OpId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.seq.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(OpId { client: ClientId::decode(r)?, seq: r.u64()? })
    }
}

impl Wire for Endpoint {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Endpoint::Replica(id) => {
                buf.push(0);
                id.encode(buf);
            }
            Endpoint::Client(id) => {
                buf.push(1);
                id.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(Endpoint::Replica(ReplicaId::decode(r)?)),
            1 => Some(Endpoint::Client(ClientId::decode(r)?)),
            _ => None,
        }
    }
}

impl Wire for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        request_fields(self, &mut |bytes| buf.extend_from_slice(bytes));
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let client = ClientId(r.u32()?);
        let seq = r.u64()?;
        let payload = Vec::<u8>::decode(r)?;
        Some(Request { op: OpId { client, seq }, payload })
    }
}

impl Wire for Batch {
    /// A batch encodes as `count u64 LE` + each request's canonical bytes
    /// — exactly the digest pre-image (see [`request_fields`]), so
    /// `sha256(encode(batch)) == batch.digest()`.
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for r in self.requests() {
            r.encode(buf);
        }
    }

    /// Reconstructs the batch through [`Batch::new`], which recomputes the
    /// digest from content: a decoded batch is always internally
    /// consistent. (The cached digest is a local optimization, never a
    /// wire field — transmitting it would only hand attackers a lying
    /// digest to splice.)
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let requests = Vec::<Arc<Request>>::decode(r)?;
        Some(Batch::new(requests))
    }
}

impl Wire for Reply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replica.encode(buf);
        self.op.encode(buf);
        self.result.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(Reply {
            replica: ReplicaId::decode(r)?,
            op: OpId::decode(r)?,
            result: Arc::<Vec<u8>>::decode(r)?,
        })
    }
}

impl Wire for Tag {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(Tag(r.array32()?))
    }
}

impl Wire for UI {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.0.encode(buf);
        self.counter.encode(buf);
        self.tag.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(UI { id: UsigId(r.u32()?), counter: r.u64()?, tag: Tag::decode(r)? })
    }
}

impl Wire for CheckpointVoucher {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.digest.encode(buf);
        self.from.encode(buf);
        self.tag.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(CheckpointVoucher {
            seq: r.u64()?,
            digest: r.array32()?,
            from: ReplicaId::decode(r)?,
            tag: Tag::decode(r)?,
        })
    }
}

impl Wire for CheckpointCert {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.digest.encode(buf);
        self.vouchers.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(CheckpointCert {
            seq: r.u64()?,
            digest: r.array32()?,
            vouchers: Vec::<CheckpointVoucher>::decode(r)?,
        })
    }
}

impl Wire for StateTransfer {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.cert.encode(buf);
        self.snapshot.encode(buf);
        self.log_base.encode(buf);
        self.suffix.encode(buf);
        self.view.encode(buf);
        self.from.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(StateTransfer {
            cert: CheckpointCert::decode(r)?,
            snapshot: Arc::<Vec<u8>>::decode(r)?,
            log_base: r.u64()?,
            suffix: Arc::<Vec<(u64, Arc<Batch>)>>::decode(r)?,
            view: r.u64()?,
            from: ReplicaId::decode(r)?,
        })
    }
}

impl Wire for CommitVote {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.seq.encode(buf);
        self.batch.encode(buf);
        self.primary_ui.encode(buf);
        self.from.encode(buf);
        self.ui.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(CommitVote {
            view: r.u64()?,
            seq: r.u64()?,
            batch: Arc::<Batch>::decode(r)?,
            primary_ui: UI::decode(r)?,
            from: ReplicaId::decode(r)?,
            ui: UI::decode(r)?,
        })
    }
}

impl Wire for PbftMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PbftMsg::Request(req) => {
                buf.push(0);
                req.encode(buf);
            }
            PbftMsg::PrePrepare { view, seq, batch } => {
                buf.push(1);
                view.encode(buf);
                seq.encode(buf);
                batch.encode(buf);
            }
            PbftMsg::Prepare { view, seq, digest, from } => {
                buf.push(2);
                view.encode(buf);
                seq.encode(buf);
                digest.encode(buf);
                from.encode(buf);
            }
            PbftMsg::Commit { view, seq, digest, from } => {
                buf.push(3);
                view.encode(buf);
                seq.encode(buf);
                digest.encode(buf);
                from.encode(buf);
            }
            PbftMsg::Reply(reply) => {
                buf.push(4);
                reply.encode(buf);
            }
            PbftMsg::ViewChange { new_view, from, prepared, executed_upto, cert } => {
                buf.push(5);
                new_view.encode(buf);
                from.encode(buf);
                prepared.encode(buf);
                executed_upto.encode(buf);
                cert.encode(buf);
            }
            PbftMsg::NewView { view, preprepares } => {
                buf.push(6);
                view.encode(buf);
                preprepares.encode(buf);
            }
            PbftMsg::Checkpoint(voucher) => {
                buf.push(7);
                voucher.encode(buf);
            }
            PbftMsg::StateRequest { have, from } => {
                buf.push(8);
                have.encode(buf);
                from.encode(buf);
            }
            PbftMsg::StateResponse(st) => {
                buf.push(9);
                st.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => PbftMsg::Request(Arc::<Request>::decode(r)?),
            1 => PbftMsg::PrePrepare {
                view: r.u64()?,
                seq: r.u64()?,
                batch: Arc::<Batch>::decode(r)?,
            },
            2 => PbftMsg::Prepare {
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.array32()?,
                from: ReplicaId::decode(r)?,
            },
            3 => PbftMsg::Commit {
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.array32()?,
                from: ReplicaId::decode(r)?,
            },
            4 => PbftMsg::Reply(Reply::decode(r)?),
            5 => PbftMsg::ViewChange {
                new_view: r.u64()?,
                from: ReplicaId::decode(r)?,
                prepared: Vec::<(u64, Arc<Batch>)>::decode(r)?,
                executed_upto: r.u64()?,
                cert: Option::<Box<CheckpointCert>>::decode(r)?,
            },
            6 => PbftMsg::NewView {
                view: r.u64()?,
                preprepares: Vec::<(u64, Arc<Batch>)>::decode(r)?,
            },
            7 => PbftMsg::Checkpoint(Box::<CheckpointVoucher>::decode(r)?),
            8 => PbftMsg::StateRequest { have: r.u64()?, from: ReplicaId::decode(r)? },
            9 => PbftMsg::StateResponse(Box::<StateTransfer>::decode(r)?),
            _ => return None,
        })
    }
}

impl Wire for MinBftMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MinBftMsg::Request(req) => {
                buf.push(0);
                req.encode(buf);
            }
            MinBftMsg::Prepare { view, seq, batch, ui } => {
                buf.push(1);
                view.encode(buf);
                seq.encode(buf);
                batch.encode(buf);
                ui.encode(buf);
            }
            MinBftMsg::Commit(vote) => {
                buf.push(2);
                vote.encode(buf);
            }
            MinBftMsg::Reply(reply) => {
                buf.push(3);
                reply.encode(buf);
            }
            MinBftMsg::ReqViewChange { new_view, from, prepared, executed_upto, cert } => {
                buf.push(4);
                new_view.encode(buf);
                from.encode(buf);
                prepared.encode(buf);
                executed_upto.encode(buf);
                cert.encode(buf);
            }
            MinBftMsg::NewView { view, preprepares } => {
                buf.push(5);
                view.encode(buf);
                preprepares.encode(buf);
            }
            MinBftMsg::FillGap { sender, from_counter, upto, from } => {
                buf.push(6);
                sender.encode(buf);
                from_counter.encode(buf);
                upto.encode(buf);
                from.encode(buf);
            }
            MinBftMsg::CheckpointHint { cert, ring_base, from } => {
                buf.push(7);
                cert.encode(buf);
                ring_base.encode(buf);
                from.encode(buf);
            }
            MinBftMsg::Checkpoint(voucher) => {
                buf.push(8);
                voucher.encode(buf);
            }
            MinBftMsg::StateRequest { have, from } => {
                buf.push(9);
                have.encode(buf);
                from.encode(buf);
            }
            MinBftMsg::StateResponse(st) => {
                buf.push(10);
                st.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => MinBftMsg::Request(Arc::<Request>::decode(r)?),
            1 => MinBftMsg::Prepare {
                view: r.u64()?,
                seq: r.u64()?,
                batch: Arc::<Batch>::decode(r)?,
                ui: UI::decode(r)?,
            },
            2 => MinBftMsg::Commit(Arc::<CommitVote>::decode(r)?),
            3 => MinBftMsg::Reply(Reply::decode(r)?),
            4 => MinBftMsg::ReqViewChange {
                new_view: r.u64()?,
                from: ReplicaId::decode(r)?,
                prepared: Vec::<(u64, Arc<Batch>)>::decode(r)?,
                executed_upto: r.u64()?,
                cert: Option::<Box<CheckpointCert>>::decode(r)?,
            },
            5 => MinBftMsg::NewView {
                view: r.u64()?,
                preprepares: Vec::<(u64, Arc<Batch>)>::decode(r)?,
            },
            6 => MinBftMsg::FillGap {
                sender: ReplicaId::decode(r)?,
                from_counter: r.u64()?,
                upto: r.u64()?,
                from: ReplicaId::decode(r)?,
            },
            7 => MinBftMsg::CheckpointHint {
                cert: Box::<CheckpointCert>::decode(r)?,
                ring_base: r.u64()?,
                from: ReplicaId::decode(r)?,
            },
            8 => MinBftMsg::Checkpoint(Box::<CheckpointVoucher>::decode(r)?),
            9 => MinBftMsg::StateRequest { have: r.u64()?, from: ReplicaId::decode(r)? },
            10 => MinBftMsg::StateResponse(Box::<StateTransfer>::decode(r)?),
            _ => return None,
        })
    }
}

impl Wire for PassiveMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PassiveMsg::Request(req) => {
                buf.push(0);
                req.encode(buf);
            }
            PassiveMsg::StateUpdate { epoch, first_seq, ops } => {
                buf.push(1);
                epoch.encode(buf);
                first_seq.encode(buf);
                ops.encode(buf);
            }
            PassiveMsg::Heartbeat { epoch, from, log_len } => {
                buf.push(2);
                epoch.encode(buf);
                from.encode(buf);
                log_len.encode(buf);
            }
            PassiveMsg::SyncRequest { from_seq, from } => {
                buf.push(3);
                from_seq.encode(buf);
                from.encode(buf);
            }
            PassiveMsg::Reply(reply) => {
                buf.push(4);
                reply.encode(buf);
            }
            PassiveMsg::Checkpoint(voucher) => {
                buf.push(5);
                voucher.encode(buf);
            }
            PassiveMsg::StateRequest { have, from } => {
                buf.push(6);
                have.encode(buf);
                from.encode(buf);
            }
            PassiveMsg::StateResponse(st) => {
                buf.push(7);
                st.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => PassiveMsg::Request(Arc::<Request>::decode(r)?),
            1 => PassiveMsg::StateUpdate {
                epoch: r.u64()?,
                first_seq: r.u64()?,
                ops: Vec::<(Arc<Request>, Arc<Vec<u8>>)>::decode(r)?,
            },
            2 => PassiveMsg::Heartbeat {
                epoch: r.u64()?,
                from: ReplicaId::decode(r)?,
                log_len: r.u64()?,
            },
            3 => PassiveMsg::SyncRequest { from_seq: r.u64()?, from: ReplicaId::decode(r)? },
            4 => PassiveMsg::Reply(Reply::decode(r)?),
            5 => PassiveMsg::Checkpoint(Box::<CheckpointVoucher>::decode(r)?),
            6 => PassiveMsg::StateRequest { have: r.u64()?, from: ReplicaId::decode(r)? },
            7 => PassiveMsg::StateResponse(Box::<StateTransfer>::decode(r)?),
            _ => return None,
        })
    }
}

// lint: end

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsoc_crypto::sha256;

    fn req(client: u32, seq: u64, payload: Vec<u8>) -> Arc<Request> {
        Arc::new(Request { op: OpId { client: ClientId(client), seq }, payload })
    }

    fn ui(id: u32, counter: u64, fill: u8) -> UI {
        UI { id: UsigId(id), counter, tag: Tag([fill; 32]) }
    }

    fn voucher(seq: u64, from: u32, fill: u8) -> CheckpointVoucher {
        CheckpointVoucher { seq, digest: [fill; 32], from: ReplicaId(from), tag: Tag([!fill; 32]) }
    }

    fn cert(seq: u64) -> CheckpointCert {
        CheckpointCert {
            seq,
            digest: [7; 32],
            vouchers: vec![voucher(seq, 0, 1), voucher(seq, 2, 3)],
        }
    }

    fn transfer() -> StateTransfer {
        StateTransfer {
            cert: cert(8),
            snapshot: Arc::new(b"snapshot".to_vec()),
            log_base: 9,
            suffix: Arc::new(vec![(9u64, Arc::new(Batch::single(req(1, 9, b"op".to_vec()))))]),
            view: 2,
            from: ReplicaId(1),
        }
    }

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
        let mut buf = Vec::new();
        encode_frame(value, &mut buf);
        let back: T = decode_frame(&buf).expect("well-formed frame decodes");
        assert_eq!(&back, value);
        // Any strict prefix is a truncated frame and must be rejected:
        // every length field promises bytes the prefix no longer has.
        for cut in 0..buf.len() {
            assert!(decode_frame::<T>(&buf[..cut]).is_none(), "truncated at {cut}");
        }
        // Trailing garbage is rejected: one frame is exactly one value.
        buf.push(0);
        assert!(decode_frame::<T>(&buf).is_none());
    }

    #[test]
    fn batch_frame_is_the_digest_preimage() {
        // The satellite invariant: the socket framing and the simulator's
        // digest path share one definition, so hashing a batch's frame
        // encoding reproduces the cached digest exactly.
        let batch = Batch::new(vec![
            req(3, 1, b"SET k3.1 v1".to_vec()),
            req(4, 2, b"SET k4.2 v2".to_vec()),
        ]);
        let mut buf = Vec::new();
        batch.encode(&mut buf);
        assert_eq!(sha256(&buf), batch.digest());
    }

    #[test]
    fn pbft_variants_roundtrip() {
        let batch = Arc::new(Batch::single(req(1, 1, b"SET k1.1 v1".to_vec())));
        let msgs = vec![
            PbftMsg::Request(req(9, 3, vec![0, 255, 7])),
            PbftMsg::PrePrepare { view: 1, seq: 2, batch: batch.clone() },
            PbftMsg::Prepare { view: 1, seq: 2, digest: batch.digest(), from: ReplicaId(3) },
            PbftMsg::Commit { view: 1, seq: 2, digest: batch.digest(), from: ReplicaId(0) },
            PbftMsg::Reply(Reply {
                replica: ReplicaId(2),
                op: OpId { client: ClientId(1), seq: 1 },
                result: Arc::new(b"OK".to_vec()),
            }),
            PbftMsg::ViewChange {
                new_view: 2,
                from: ReplicaId(1),
                prepared: vec![(2, batch.clone())],
                executed_upto: 1,
                cert: Some(Box::new(cert(4))),
            },
            PbftMsg::ViewChange {
                new_view: 3,
                from: ReplicaId(2),
                prepared: vec![],
                executed_upto: 0,
                cert: None,
            },
            PbftMsg::NewView { view: 2, preprepares: vec![(3, batch.clone())] },
            PbftMsg::Checkpoint(Box::new(voucher(8, 1, 5))),
            PbftMsg::StateRequest { have: 4, from: ReplicaId(3) },
            PbftMsg::StateResponse(Box::new(transfer())),
        ];
        for msg in &msgs {
            roundtrip(msg);
        }
    }

    #[test]
    fn minbft_variants_roundtrip() {
        let batch = Arc::new(Batch::single(req(2, 5, b"SET k2.5 v5".to_vec())));
        let msgs = vec![
            MinBftMsg::Request(req(2, 5, vec![1, 2, 3])),
            MinBftMsg::Prepare { view: 0, seq: 5, batch: batch.clone(), ui: ui(0, 6, 9) },
            MinBftMsg::Commit(Arc::new(CommitVote {
                view: 0,
                seq: 5,
                batch: batch.clone(),
                primary_ui: ui(0, 6, 9),
                from: ReplicaId(1),
                ui: ui(1, 7, 11),
            })),
            MinBftMsg::Reply(Reply {
                replica: ReplicaId(1),
                op: OpId { client: ClientId(2), seq: 5 },
                result: Arc::new(Vec::new()),
            }),
            MinBftMsg::ReqViewChange {
                new_view: 1,
                from: ReplicaId(2),
                prepared: vec![(6, batch.clone())],
                executed_upto: 5,
                cert: Some(Box::new(cert(4))),
            },
            MinBftMsg::NewView { view: 1, preprepares: vec![(6, batch.clone())] },
            MinBftMsg::FillGap {
                sender: ReplicaId(0),
                from_counter: 3,
                upto: 9,
                from: ReplicaId(2),
            },
            MinBftMsg::CheckpointHint {
                cert: Box::new(cert(12)),
                ring_base: 7,
                from: ReplicaId(0),
            },
            MinBftMsg::Checkpoint(Box::new(voucher(12, 2, 6))),
            MinBftMsg::StateRequest { have: 2, from: ReplicaId(1) },
            MinBftMsg::StateResponse(Box::new(transfer())),
        ];
        for msg in &msgs {
            roundtrip(msg);
        }
    }

    #[test]
    fn passive_variants_roundtrip() {
        let msgs = vec![
            PassiveMsg::Request(req(0, 1, b"SET k0.1 v1".to_vec())),
            PassiveMsg::StateUpdate {
                epoch: 1,
                first_seq: 4,
                ops: vec![(req(0, 4, b"SET k0.4 v4".to_vec()), Arc::new(b"OK".to_vec()))],
            },
            PassiveMsg::Heartbeat { epoch: 1, from: ReplicaId(0), log_len: 9 },
            PassiveMsg::SyncRequest { from_seq: 5, from: ReplicaId(1) },
            PassiveMsg::Reply(Reply {
                replica: ReplicaId(0),
                op: OpId { client: ClientId(0), seq: 4 },
                result: Arc::new(b"OK".to_vec()),
            }),
            PassiveMsg::Checkpoint(Box::new(voucher(8, 0, 2))),
            PassiveMsg::StateRequest { have: 3, from: ReplicaId(1) },
            PassiveMsg::StateResponse(Box::new(transfer())),
        ];
        for msg in &msgs {
            roundtrip(msg);
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Wrong version byte.
        let good = {
            let mut buf = Vec::new();
            encode_frame(&PbftMsg::StateRequest { have: 1, from: ReplicaId(0) }, &mut buf);
            buf
        };
        let mut wrong_version = good.clone();
        wrong_version[0] = WIRE_VERSION.wrapping_add(1);
        assert!(decode_frame::<PbftMsg>(&wrong_version).is_none());
        // Unknown discriminant.
        let mut unknown = good.clone();
        unknown[1] = 0xEE;
        assert!(decode_frame::<PbftMsg>(&unknown).is_none());
        // A lying collection count cannot force an allocation: count is
        // checked against the bytes actually present.
        let mut lying = vec![WIRE_VERSION, 5]; // ViewChange
        lying.extend_from_slice(&2u64.to_le_bytes()); // new_view
        lying.extend_from_slice(&1u32.to_le_bytes()); // from
        lying.extend_from_slice(&u64::MAX.to_le_bytes()); // prepared count: lie
        assert!(decode_frame::<PbftMsg>(&lying).is_none());
        // Empty input.
        assert!(decode_frame::<PbftMsg>(&[]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn request_roundtrips(client in any::<u32>(), seq in any::<u64>(),
                              payload in proptest::collection::vec(any::<u8>(), 0..64)) {
            let r = Request { op: OpId { client: ClientId(client), seq }, payload };
            let mut buf = Vec::new();
            encode_frame(&r, &mut buf);
            prop_assert_eq!(decode_frame::<Request>(&buf), Some(r));
        }

        #[test]
        fn batch_digest_matches_frame_hash(
            seqs in proptest::collection::vec((any::<u32>(), any::<u64>()), 1..5),
            fill in any::<u8>(),
        ) {
            let requests: Vec<_> = seqs
                .iter()
                .map(|&(c, s)| req(c, s, vec![fill; (s % 17) as usize]))
                .collect();
            let batch = Batch::new(requests);
            let mut buf = Vec::new();
            batch.encode(&mut buf);
            prop_assert_eq!(sha256(&buf), batch.digest());
            let back: Batch = {
                let mut r = Reader::new(&buf);
                let b = Batch::decode(&mut r);
                prop_assert!(r.is_empty());
                prop_assert!(b.is_some());
                b.unwrap()
            };
            prop_assert_eq!(back.digest(), batch.digest());
        }

        #[test]
        fn garbage_never_panics_and_rarely_decodes(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Totality: arbitrary input must never panic any decoder.
            let _ = decode_frame::<PbftMsg>(&bytes);
            let _ = decode_frame::<MinBftMsg>(&bytes);
            let _ = decode_frame::<PassiveMsg>(&bytes);
            let _ = decode_frame::<Request>(&bytes);
            let _ = decode_frame::<Reply>(&bytes);
            let _ = decode_frame::<StateTransfer>(&bytes);
        }

        #[test]
        fn minbft_commit_roundtrips(view in any::<u64>(), seq in any::<u64>(),
                                    c1 in any::<u64>(), c2 in any::<u64>()) {
            let batch = Arc::new(Batch::single(req(1, seq, b"SET".to_vec())));
            let vote = MinBftMsg::Commit(Arc::new(CommitVote {
                view,
                seq,
                batch,
                primary_ui: ui(0, c1, 1),
                from: ReplicaId(1),
                ui: ui(1, c2, 2),
            }));
            let mut buf = Vec::new();
            encode_frame(&vote, &mut buf);
            prop_assert_eq!(decode_frame::<MinBftMsg>(&buf), Some(vote));
        }
    }
}
