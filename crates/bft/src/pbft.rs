//! PBFT (Castro & Liskov, OSDI'99): the classic 3f+1 Byzantine
//! fault-tolerant state-machine replication protocol — the paper's baseline
//! for "active replication ... execute an agreement protocol, e.g. Paxos or
//! PBFT" (§II-A).
//!
//! Implemented message-precisely for the steady state (pre-prepare /
//! prepare / commit with 2f+1 quorums) plus an operational view change
//! (request timeouts → VIEW-CHANGE → NEW-VIEW re-proposal). With
//! [`RunConfig::checkpoint_interval`] set, replicas additionally take
//! **certified checkpoints** every `interval` executed slots (f+1 MAC'd
//! [`CheckpointVoucher`]s form a certificate), truncate their logs and
//! retention rings below the stable watermark, recover long-crashed or
//! rejuvenated peers through **collaborative state transfer**
//! (certificate plus snapshot plus log suffix, the snapshot
//! cross-checked against the certificate before install), and carry the
//! stable certificate in view changes — a verified certificate floors
//! the new view, so forged prepared sets at or below certified history
//! are rejected (see [`crate::checkpoint`]). View-change content
//! *above* the stable checkpoint remains trusted as honest.
//!
//! Wire format: every message that carries request content carries an
//! [`Arc<Batch>`] — broadcasting a pre-prepare to `n-1` peers bumps a
//! refcount per peer instead of deep-cloning the batch, so fan-out cost
//! is O(1) per replica regardless of batch size. Client requests travel
//! as `Arc<Request>` and execution results as `Arc<Vec<u8>>` (see
//! [`crate::api`]), so the steady-state message plane performs no payload
//! copies at all.
//!
//! Replica state is *dense* (see [`crate::dense`]): agreement slots live
//! in a [`SeqWindow`] anchored at the execution watermark (executed slots
//! are retired — garbage-collected and structurally unresurrectable),
//! per-op dedup/assignment in open-addressed [`OpIndex`]es, and quorum
//! tallies in [`ReplicaSet`] bitmasks.

use crate::adversary::ReplicaScript;
use crate::api::{
    noop_batch, Batch, BatchDecision, Batcher, Cluster, Endpoint, Input, LogEntry, OpId, Outbox,
    ReplicaId, ReplicaNode, Reply, Request, VcRound,
};
use crate::checkpoint::{
    decode_image, encode_image, snapshot_matches, tamper_suffix, CheckpointCert, CheckpointStats,
    CheckpointStore, CheckpointVoucher, CkptKeys, ClientSessions, CommittedLog, CstBuffer,
    CstInstall, StateTransfer,
};
use crate::dense::{op_token, token_op, OpIndex, ReplicaSet, SeqWindow};
use crate::durable::{DurableEvent, RecoveredState, RecoveryReport};
use crate::runner::RunConfig;
use crate::statemachine::{KvStore, StateMachine};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Timer kind: a backup's patience for a pending request ran out.
const TIMER_REQUEST: u32 = 1;
/// Timer kind: the primary's partially filled batch waited long enough.
const TIMER_FLUSH: u32 = 2;
/// Default cycles a backup waits for a request to commit before
/// suspecting the primary (see [`RunConfig::request_patience`]).
const REQUEST_PATIENCE: u64 = 1_500;

/// Prepared-but-unexecuted `(seq, batch)` entries carried by view changes.
type PreparedSet = Vec<(u64, Arc<Batch>)>;

/// PBFT wire messages.
///
/// Rare, bulky variants (checkpoint vouchers/certs, state transfers) live
/// behind `Box` so the enum's size — and with it every per-event memcpy
/// through the timing-wheel arena — is pinned by the hot agreement
/// variants (see `message_enums_stay_small` in `minbft`).
#[derive(Debug, Clone, PartialEq)]
pub enum PbftMsg {
    /// Client request (client → all replicas; shared across the fan-out).
    Request(Arc<Request>),
    /// Primary's ordering proposal: one agreement slot per *batch*.
    PrePrepare {
        /// View the proposal belongs to.
        view: u64,
        /// Global sequence number.
        seq: u64,
        /// The full request batch (shared, not deep-copied, across the
        /// broadcast fan-out).
        batch: Arc<Batch>,
    },
    /// Backup's agreement to the proposal.
    Prepare {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Request digest.
        digest: [u8; 32],
        /// Voting replica.
        from: ReplicaId,
    },
    /// Commit vote after the prepared certificate is reached.
    Commit {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Request digest.
        digest: [u8; 32],
        /// Voting replica.
        from: ReplicaId,
    },
    /// Execution result (replica → client).
    Reply(Reply),
    /// Suspicion of the primary; vote to move to `new_view`.
    ViewChange {
        /// Proposed view.
        new_view: u64,
        /// Voter.
        from: ReplicaId,
        /// Entries prepared at the voter (must survive the view change).
        prepared: Vec<(u64, Arc<Batch>)>,
        /// The voter's execution watermark — the quorum's maximum is the
        /// floor above which sequence holes may be safely no-op-filled
        /// (the checkpoint-less stand-in for PBFT's stable-checkpoint
        /// `min-s`).
        executed_upto: u64,
        /// The voter's stable checkpoint certificate, if any. Verified by
        /// the receiver; the certified watermark floors the new view, so
        /// prepared entries at or below certified history are discarded.
        /// Boxed — certificates are rare and bulky.
        cert: Option<Box<CheckpointCert>>,
    },
    /// New primary's installation message.
    NewView {
        /// The installed view.
        view: u64,
        /// Re-proposed `(seq, batch)` pairs.
        preprepares: Vec<(u64, Arc<Batch>)>,
    },
    /// Periodic checkpoint voucher: "my state digested to `digest` after
    /// executing slot `seq`" (MAC'd; f+1 matching form a certificate).
    /// Boxed — vouchers are periodic, not per-request.
    Checkpoint(Box<CheckpointVoucher>),
    /// A recovering replica asks peers for the latest certificate +
    /// snapshot + log suffix (`have` = its execution watermark).
    StateRequest {
        /// Requester's execution watermark.
        have: u64,
        /// Requesting replica.
        from: ReplicaId,
    },
    /// A peer's state-transfer answer (see [`StateTransfer`]).
    /// Boxed — transfers are rare and huge.
    StateResponse(Box<StateTransfer>),
}

/// One agreement slot. Slots live in the [`SeqWindow`]; execution removes
/// and retires them, so an "executed" slot is simply one below the window
/// watermark — no flag needed.
#[derive(Debug, Default)]
struct Slot {
    batch: Option<Arc<Batch>>,
    digest: Option<[u8; 32]>,
    prepares: ReplicaSet,
    commits: ReplicaSet,
    sent_commit: bool,
}

/// One PBFT replica.
#[derive(Debug)]
pub struct PbftReplica {
    id: ReplicaId,
    n: u32,
    f: u32,
    view: u64,
    script: ReplicaScript,
    /// Virtual time of the input being handled (scripts are time-phased).
    now: u64,
    next_seq: u64,
    /// Agreement slots, watermarked at `exec_upto + 1` (sequence 0 is
    /// never used, so the window starts at base 1).
    slots: SeqWindow<Slot>,
    /// Op → agreement slot, for duplicate-proposal suppression.
    assigned: OpIndex<u64>,
    /// Exactly-once dedup: op → shared execution result.
    executed: OpIndex<Arc<Vec<u8>>>,
    /// Backup watchlist: requests awaiting commit, with patience timers.
    pending: OpIndex<Arc<Request>>,
    stored_preprepares: SeqWindow<PbftMsg>,
    /// Committed log; truncates below the stable checkpoint watermark.
    log: CommittedLog,
    exec_upto: u64,
    machine: KvStore,
    /// Checkpoint vouchers/certificates and the transfer backoff
    /// (inert when the interval is 0).
    ckpt: CheckpointStore,
    /// Executed batches above the stable checkpoint, keyed by agreement
    /// slot — the suffix served with state transfers. Only populated
    /// while checkpointing is enabled; retired below the watermark when a
    /// certificate forms.
    replay_ring: SeqWindow<Arc<Batch>>,
    /// Buffered state-transfer responses awaiting an f+1 install quorum.
    cst: CstBuffer,
    /// Latest executed reply per client, snapshotted into checkpoint
    /// images so a transfer-recovered replica answers client retries for
    /// ops below the watermark (maintained only while checkpointing is
    /// enabled — byte-invisible otherwise).
    sessions: ClientSessions,
    /// True once the embedding plane persists [`DurableEvent`]s (never in
    /// the simulator — see [`crate::durable`]).
    durability: bool,
    /// Events awaiting [`ReplicaNode::drain_durable`].
    durable: Vec<DurableEvent>,
    /// Highest stable watermark already emitted as a
    /// [`DurableEvent::Stable`] (dedup across truncation call sites).
    durable_stable_seq: u64,
    vc_votes: Vec<VcRound>,
    vc_sent_for: u64,
    /// When `vc_sent_for` was last raised — the escalation rate limiter.
    vc_demanded_at: u64,
    /// Set while a crash window swallows inputs; the first input after
    /// recovery re-arms the per-op patience chains killed in the outage.
    in_outage: bool,
    /// Batching front-end (primary only).
    batcher: Batcher,
    /// Backup patience before suspecting the primary.
    patience: u64,
}

impl PbftReplica {
    /// Creates replica `id` of an `n = 3f+1` cluster (unbatched; see
    /// [`Self::set_batching`]).
    pub fn new(id: ReplicaId, f: u32) -> Self {
        PbftReplica {
            id,
            n: 3 * f + 1,
            f,
            view: 0,
            script: ReplicaScript::correct(),
            now: 0,
            next_seq: 1,
            slots: SeqWindow::with_base(1),
            assigned: OpIndex::new(),
            executed: OpIndex::new(),
            pending: OpIndex::new(),
            stored_preprepares: SeqWindow::with_base(1),
            log: CommittedLog::new(),
            exec_upto: 0,
            machine: KvStore::new(),
            ckpt: CheckpointStore::new(id, (f + 1) as usize, 0, CkptKeys::provision(0, 1)),
            replay_ring: SeqWindow::with_base(1),
            cst: CstBuffer::new(),
            sessions: ClientSessions::new(),
            durability: false,
            durable: Vec::new(),
            durable_stable_seq: 0,
            vc_votes: Vec::new(),
            vc_sent_for: 0,
            vc_demanded_at: 0,
            in_outage: false,
            batcher: Batcher::new(),
            patience: REQUEST_PATIENCE,
        }
    }

    /// Configures the batching front-end: seal a batch at `batch_size`
    /// requests, or after `batch_flush` cycles, whichever comes first.
    pub fn set_batching(&mut self, batch_size: usize, batch_flush: u64) {
        self.batcher.configure(batch_size, batch_flush);
    }

    /// Sets the backup's request patience (clamped to ≥ 1).
    pub fn set_patience(&mut self, cycles: u64) {
        self.patience = cycles.max(1);
    }

    /// Enables certified checkpoints every `interval` executed slots under
    /// the cluster-shared `keys` (0 disables — the default, byte-invisible
    /// configuration).
    pub fn set_checkpointing(&mut self, interval: u64, keys: Arc<CkptKeys>) {
        self.ckpt = CheckpointStore::new(self.id, (self.f + 1) as usize, interval, keys);
    }

    /// Digest of the replica's current state-machine state (for
    /// batched-vs-unbatched equivalence checks).
    pub fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    /// Installs a composable, time-phased fault script.
    pub fn set_script(&mut self, script: ReplicaScript) {
        self.script = script;
    }

    /// The active fault script.
    pub fn script(&self) -> &ReplicaScript {
        &self.script
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    fn primary_of(&self, view: u64) -> ReplicaId {
        ReplicaId((view % self.n as u64) as u32)
    }

    fn is_primary(&self) -> bool {
        self.primary_of(self.view) == self.id
    }

    fn quorum(&self) -> usize {
        (2 * self.f + 1) as usize
    }

    // Everything below is reachable from adversarial input: a Byzantine
    // peer (or a forged client) picks the message contents, so a panic
    // here is a remote crash. `rsoc_lint` enforces the no-panic contract;
    // the reasoned allows mark invariants the window/state machine holds.
    // lint: ingress
    fn handle_request(&mut self, req: Arc<Request>, out: &mut Outbox<PbftMsg>) {
        if let Some(result) = self.executed.get(&req.op) {
            out.send(
                Endpoint::Client(req.op.client),
                PbftMsg::Reply(Reply { replica: self.id, op: req.op, result: result.clone() }),
            );
            return;
        }
        if self.is_primary() {
            if let Some(seq) = self.assigned.get(&req.op).copied() {
                // Client retry for an in-flight op: re-announce so replicas
                // that discarded messages during a view change catch up.
                if let Some(pp) = self.stored_preprepares.get(seq).cloned() {
                    out.broadcast(self.n, self.id, pp);
                }
                self.reannounce_commit(seq, out);
                return;
            }
            match self.batcher.offer(req) {
                BatchDecision::Seal => self.flush_batch(out),
                BatchDecision::ArmTimer(token) => {
                    out.arm(self.batcher.flush_cycles(), TIMER_FLUSH, token)
                }
                BatchDecision::Wait | BatchDecision::Duplicate => {}
            }
        } else {
            // Backup: remember the request and watch the primary.
            if !self.pending.contains_key(&req.op) && !self.executed.contains_key(&req.op) {
                let token = op_token(req.op);
                self.pending.insert(req.op, req);
                out.arm(self.patience, TIMER_REQUEST, token);
            }
        }
    }

    /// Seals the accumulated requests into one batch and proposes it: one
    /// agreement round (and one digest computation) for up to `batch_size`
    /// requests.
    fn flush_batch(&mut self, out: &mut Outbox<PbftMsg>) {
        // Requests can go stale in the accumulator across a view change
        // (proposed by the new primary, then this replica re-elected).
        let executed = &self.executed;
        let assigned = &self.assigned;
        let reqs =
            self.batcher.drain(|r| !executed.contains_key(&r.op) && !assigned.contains_key(&r.op));
        if reqs.is_empty() {
            return;
        }
        let batch = Arc::new(Batch::new(reqs));
        let seq = self.next_seq;
        self.next_seq += 1;
        for r in batch.requests() {
            self.assigned.insert(r.op, seq);
        }
        if self.script.equivocates_at(self.now) {
            self.equivocate(seq, batch, out);
            return;
        }
        let digest = batch.digest();
        let me = self.id;
        // lint: allow(ingress-expect) -- seq is freshly drawn from next_seq, strictly above exec_upto
        let slot = self.slots.get_or_insert_default(seq).expect("fresh seq is above watermark");
        slot.batch = Some(batch.clone());
        slot.digest = Some(digest);
        slot.prepares.insert(me);
        let pp = PbftMsg::PrePrepare { view: self.view, seq, batch };
        self.stored_preprepares.insert(seq, pp.clone());
        out.broadcast(self.n, self.id, pp);
    }

    /// Byzantine primary: proposes conflicting batches for the same
    /// sequence number to two halves of the backups (and votes for both).
    fn equivocate(&mut self, seq: u64, batch: Arc<Batch>, out: &mut Outbox<PbftMsg>) {
        let evil_reqs: Vec<Arc<Request>> = batch
            .requests()
            .iter()
            .map(|r| {
                let mut e = Request::clone(r);
                e.payload.reverse();
                Arc::new(e)
            })
            .collect();
        let evil = Arc::new(Batch::new(evil_reqs));
        let half = self.n / 2;
        for i in 0..self.n {
            if i == self.id.0 {
                continue;
            }
            let b = if i < half { &batch } else { &evil };
            let d = b.digest();
            out.send(
                Endpoint::Replica(ReplicaId(i)),
                PbftMsg::PrePrepare { view: self.view, seq, batch: b.clone() },
            );
            out.send(
                Endpoint::Replica(ReplicaId(i)),
                PbftMsg::Prepare { view: self.view, seq, digest: d, from: self.id },
            );
            out.send(
                Endpoint::Replica(ReplicaId(i)),
                PbftMsg::Commit { view: self.view, seq, digest: d, from: self.id },
            );
        }
    }

    fn handle_preprepare(
        &mut self,
        from: Endpoint,
        view: u64,
        seq: u64,
        batch: Arc<Batch>,
        out: &mut Outbox<PbftMsg>,
    ) {
        if view != self.view {
            return;
        }
        if from != Endpoint::Replica(self.primary_of(view)) {
            return; // only the view's primary may pre-prepare
        }
        if batch.is_empty() || !batch.verify() {
            return; // content does not match the claimed digest
        }
        let digest = batch.digest();
        let primary = self.primary_of(view);
        let me = self.id;
        // Below the watermark = already executed: rejected, never
        // resurrected (the window refuses to store it).
        let Some(slot) = self.slots.get_or_insert_default(seq) else { return };
        if let Some(existing) = slot.digest {
            if existing != digest {
                return; // conflicting proposal for the slot: keep the first
            }
        }
        for r in batch.requests() {
            self.assigned.insert(r.op, seq);
        }
        // lint: allow(ingress-expect) -- get_or_insert_default above returned Some for this seq
        let slot = self.slots.get_mut(seq).expect("slot just ensured");
        slot.batch = Some(batch);
        slot.digest = Some(digest);
        slot.prepares.insert(primary);
        slot.prepares.insert(me);
        out.broadcast(self.n, self.id, PbftMsg::Prepare { view, seq, digest, from: self.id });
        self.reannounce_commit(seq, out);
        self.maybe_advance(seq, out);
    }

    /// Rebroadcasts this replica's COMMIT for `seq` if it has already voted
    /// — heals peers that discarded the original during a view change.
    fn reannounce_commit(&mut self, seq: u64, out: &mut Outbox<PbftMsg>) {
        let view = self.view;
        let me = self.id;
        let n = self.n;
        // Executed slots are retired from the window, so a bare `get`
        // already excludes them.
        if let Some(slot) = self.slots.get(seq) {
            if slot.sent_commit {
                if let Some(digest) = slot.digest {
                    out.broadcast(n, me, PbftMsg::Commit { view, seq, digest, from: me });
                }
            }
        }
    }

    fn handle_prepare(
        &mut self,
        view: u64,
        seq: u64,
        digest: [u8; 32],
        from: ReplicaId,
        out: &mut Outbox<PbftMsg>,
    ) {
        if view != self.view {
            return;
        }
        let Some(slot) = self.slots.get_or_insert_default(seq) else { return };
        if slot.digest.is_none_or(|d| d == digest) {
            slot.prepares.insert(from);
        }
        self.maybe_advance(seq, out);
    }

    fn handle_commit(
        &mut self,
        view: u64,
        seq: u64,
        digest: [u8; 32],
        from: ReplicaId,
        out: &mut Outbox<PbftMsg>,
    ) {
        if view != self.view {
            return;
        }
        let Some(slot) = self.slots.get_or_insert_default(seq) else { return };
        if slot.digest.is_none_or(|d| d == digest) {
            slot.commits.insert(from);
        }
        self.maybe_advance(seq, out);
    }

    /// Drives a slot through prepared → committed → executed.
    fn maybe_advance(&mut self, seq: u64, out: &mut Outbox<PbftMsg>) {
        let quorum = self.quorum();
        let (send_commit, view, digest) = {
            let Some(slot) = self.slots.get_mut(seq) else { return };
            if slot.digest.is_none() {
                return;
            }
            let prepared = slot.prepares.len() >= quorum;
            let send_commit = prepared && !slot.sent_commit;
            if send_commit {
                slot.sent_commit = true;
                slot.commits.insert(self.id);
            }
            // lint: allow(ingress-expect) -- is_none() early-returned two branches up
            (send_commit, self.view, slot.digest.expect("digest set"))
        };
        if send_commit {
            out.broadcast(self.n, self.id, PbftMsg::Commit { view, seq, digest, from: self.id });
        }
        self.try_execute(out);
    }

    fn try_execute(&mut self, out: &mut Outbox<PbftMsg>) {
        let quorum = self.quorum();
        loop {
            let next = self.exec_upto + 1;
            let ready = match self.slots.get(next) {
                Some(slot) => {
                    slot.batch.is_some() && slot.sent_commit && slot.commits.len() >= quorum
                }
                None => false,
            };
            if !ready {
                break;
            }
            // Execution consumes the slot; retiring the watermark below
            // makes the sequence number permanently dead.
            // lint: allow(ingress-expect) -- `ready` above proved the slot exists in the window
            let slot = self.slots.remove(next).expect("checked");
            // lint: allow(ingress-expect) -- `ready` above proved batch.is_some()
            let batch = slot.batch.expect("checked");
            // lint: allow(ingress-expect) -- sent_commit is only set after the digest is stored
            let digest = slot.digest.expect("checked");
            self.exec_upto = next;
            // One agreement slot commits the whole batch; the log stays
            // per-request (dense global sequence) so latency and safety
            // accounting remain per-operation.
            for req in batch.requests() {
                let log_seq = self.log.committed() + 1;
                let result = Arc::new(self.machine.apply(&req.payload));
                self.log.push(LogEntry { seq: log_seq, op: req.op, digest });
                self.executed.insert(req.op, result.clone());
                if self.ckpt.enabled() {
                    self.sessions.note(req.op.client, req.op.seq, result.clone());
                }
                self.pending.remove(&req.op);
                out.send(
                    Endpoint::Client(req.op.client),
                    PbftMsg::Reply(Reply { replica: self.id, op: req.op, result }),
                );
            }
            if self.ckpt.enabled() {
                self.replay_ring.insert(next, batch.clone());
            }
            if self.durability {
                self.durable.push(DurableEvent::Commit { seq: next, batch });
            }
            self.maybe_checkpoint(next, out);
        }
        self.slots.retire_below(self.exec_upto + 1);
        self.stored_preprepares.retire_below(self.exec_upto + 1);
    }

    /// Takes a certified checkpoint when execution crosses a watermark
    /// boundary: snapshot + digest the machine, retain the snapshot for
    /// serving transfers, broadcast the MAC'd voucher, and count our own.
    fn maybe_checkpoint(&mut self, exec_seq: u64, out: &mut Outbox<PbftMsg>) {
        if !self.ckpt.due(exec_seq) {
            return;
        }
        if self.script.forges_checkpoint_at(self.now) {
            // Byzantine: vouch for fabricated state instead. One voucher
            // with a garbage MAC (an outsider forgery — rejected by key
            // verification) and one properly MAC'd over a lying digest (a
            // colluder — isolated in its own digest group, never quorate).
            let lie = rsoc_crypto::sha256(b"forged-checkpoint-state");
            let mut garbage = CheckpointVoucher {
                seq: exec_seq,
                digest: lie,
                from: self.id,
                tag: rsoc_crypto::Tag([0xEE; 32]),
            };
            out.broadcast(self.n, self.id, PbftMsg::Checkpoint(Box::new(garbage.clone())));
            // The locally retained image stays honest (only the vouched
            // digest lies), so this replica can still serve a transfer if
            // its peers certify the honest digest for this watermark.
            garbage = self.ckpt.record_local(
                exec_seq,
                lie,
                self.log.committed(),
                Arc::new(encode_image(&self.machine.snapshot(), &self.sessions)),
            );
            out.broadcast(self.n, self.id, PbftMsg::Checkpoint(Box::new(garbage)));
            return;
        }
        // Certificates digest the full checkpoint *image* — KV snapshot
        // plus client sessions — so a recovered replica's dedup state is
        // covered by the same f+1 vouchers as the application state.
        let image = Arc::new(encode_image(&self.machine.snapshot(), &self.sessions));
        let digest = rsoc_crypto::sha256(&image);
        let voucher = self.ckpt.record_local(exec_seq, digest, self.log.committed(), image);
        out.broadcast(self.n, self.id, PbftMsg::Checkpoint(Box::new(voucher.clone())));
        if self.ckpt.record(&voucher).is_some() {
            self.apply_truncation();
        }
    }

    /// Truncates the log and replay ring below the stable checkpoint
    /// (no-op while this replica has no locally recorded watermark — a
    /// laggard keeps its suffix until state transfer resets it). With
    /// durability on, a newly stable certificate we hold the snapshot for
    /// is also emitted once as a [`DurableEvent::Stable`].
    fn apply_truncation(&mut self) {
        if let Some(log_len) = self.ckpt.stable_log_len() {
            self.log.truncate_below(log_len);
            self.replay_ring.retire_below(self.ckpt.stable_seq() + 1);
        }
        if self.durability && self.ckpt.stable_seq() > self.durable_stable_seq {
            if let Some((cert, log_len, snapshot)) = self.ckpt.serve() {
                self.durable_stable_seq = cert.seq;
                let cert = cert.clone();
                self.durable.push(DurableEvent::Stable { cert, log_len, snapshot });
            }
        }
    }

    /// Ingests a peer's checkpoint voucher (adversarial: MAC-verified by
    /// the store) and, if this replica turns out to be behind the newly
    /// stable watermark, starts state transfer.
    fn handle_checkpoint(&mut self, voucher: CheckpointVoucher, out: &mut Outbox<PbftMsg>) {
        if self.ckpt.record(&voucher).is_some() {
            self.apply_truncation();
        }
        self.maybe_request_transfer(out);
    }

    /// Broadcasts a state-transfer request if the stable certificate is
    /// ahead of local execution (rate-limited; peers below the watermark
    /// have truncated, so only transfer can close the gap).
    fn maybe_request_transfer(&mut self, out: &mut Outbox<PbftMsg>) {
        if self.ckpt.behind(self.exec_upto) && self.ckpt.may_request(self.now) {
            out.broadcast(
                self.n,
                self.id,
                PbftMsg::StateRequest { have: self.exec_upto, from: self.id },
            );
        }
    }

    /// Serves a state-transfer request: stable certificate + the snapshot
    /// it certifies + the committed suffix above it. Only answered when we
    /// hold the certified snapshot ourselves and it would actually advance
    /// the requester.
    fn handle_state_request(&mut self, have: u64, from: ReplicaId, out: &mut Outbox<PbftMsg>) {
        let Some((cert, log_base, snapshot)) = self.ckpt.serve() else { return };
        if cert.seq <= have {
            return; // requester is not behind our certificate
        }
        let cert = cert.clone();
        let mut suffix = Vec::new();
        for slot in cert.seq + 1..=self.exec_upto {
            match self.replay_ring.get(slot) {
                Some(batch) => suffix.push((slot, batch.clone())),
                None => return, // suffix gap (mid-install): let another peer serve
            }
        }
        let mut snapshot = snapshot;
        if self.script.corrupts_snapshot_at(self.now) {
            // Byzantine responder: flip a snapshot byte (or fabricate one
            // for an empty snapshot). The requester's digest cross-check
            // against the certificate must catch this.
            let mut bytes = (*snapshot).clone();
            match bytes.first_mut() {
                Some(b) => *b ^= 0xFF,
                None => bytes.push(0xFF),
            }
            snapshot = Arc::new(bytes);
        }
        if self.script.corrupts_suffix_at(self.now) {
            // Byzantine responder: serve a suffix the cluster never
            // committed. The requester's f+1 slot-by-slot vote must
            // out-vote it (the snapshot and certificate stay honest, so
            // this lie survives every digest cross-check a single
            // responder could be subjected to).
            tamper_suffix(&mut suffix, cert.seq);
        }
        let transfer = StateTransfer {
            cert,
            snapshot,
            log_base,
            suffix: Arc::new(suffix),
            view: self.view,
            from: self.id,
        };
        out.send(Endpoint::Replica(from), PbftMsg::StateResponse(Box::new(transfer)));
    }

    /// Validates a transfer response (certificate verifies, snapshot
    /// digest matches the certificate, snapshot parses — everything in
    /// the response is adversarial input until those checks pass) and
    /// buffers it; installs once f+1 distinct responders agree on the
    /// watermark, with the log suffix voted slot by slot (see
    /// [`CstBuffer`]).
    fn handle_state_response(&mut self, st: StateTransfer, out: &mut Outbox<PbftMsg>) {
        if !self.ckpt.enabled() || st.cert.seq <= self.exec_upto {
            return; // not ahead of us: nothing to install
        }
        if !self.ckpt.verify_cert(&st.cert) {
            self.ckpt.note_rejected();
            return;
        }
        if !snapshot_matches(&st.cert, &st.snapshot) {
            self.ckpt.note_rejected();
            return; // corrupted snapshot: digest does not match the cert
        }
        let parses = decode_image(&st.snapshot)
            .is_some_and(|(kv, _)| KvStore::install_snapshot(kv).is_some());
        if !parses {
            self.ckpt.note_rejected();
            return; // digest collision is out of scope; malformed framing is not
        }
        self.cst.admit(st, self.exec_upto);
        let Some(plan) = self.cst.install_plan((self.f + 1) as usize) else { return };
        self.cst.clear();
        self.install_transfer(plan, out);
    }

    /// Installs a quorum-voted transfer: snapshot, certificate, voted log
    /// suffix; then rejoins the cluster's view and resumes execution.
    fn install_transfer(&mut self, plan: CstInstall, out: &mut Outbox<PbftMsg>) {
        let Some((kv, sessions)) = decode_image(&plan.snapshot) else { return };
        let Some(machine) = KvStore::install_snapshot(kv) else { return };
        self.ckpt.adopt_cert(&plan.cert);
        self.machine = machine;
        // Restore the dedup index for ops below the watermark: a client
        // retrying a committed op gets its original reply back instead of
        // silently landing on this replica's pending watchlist.
        self.sessions = sessions;
        for (client, seq, result) in self.sessions.iter() {
            self.executed.insert(OpId { client, seq }, result.clone());
        }
        self.log.reset_to(plan.log_base);
        self.replay_ring = SeqWindow::with_base(plan.cert.seq + 1);
        self.exec_upto = plan.cert.seq;
        if self.durability && plan.cert.seq > self.durable_stable_seq {
            self.durable_stable_seq = plan.cert.seq;
            self.durable.push(DurableEvent::Stable {
                cert: plan.cert.clone(),
                log_len: plan.log_base,
                snapshot: Arc::clone(&plan.snapshot),
            });
        }
        // Replay the voted suffix: every slot here matched at f+1
        // responders, at least one of them honest.
        for (slot, batch) in &plan.suffix {
            self.replay_commit(*slot, batch);
        }
        self.slots.retire_below(self.exec_upto + 1);
        self.stored_preprepares.retire_below(self.exec_upto + 1);
        self.next_seq = self.next_seq.max(self.exec_upto + 1);
        if plan.view > self.view {
            // The cluster moved on while we were down; join its view so the
            // current primary's proposals are accepted.
            self.view = plan.view;
            self.vc_sent_for = self.vc_sent_for.max(plan.view);
            self.vc_votes.retain(|r| r.view > plan.view);
        }
        self.ckpt.note_transfer();
        // Re-arm patience for requests still pending after the replay, and
        // resume normal execution for anything already quorate.
        let tokens: Vec<u64> =
            self.pending.iter_canonical().into_iter().map(|(op, _)| op_token(op)).collect();
        for token in tokens {
            out.arm(self.patience, TIMER_REQUEST, token);
        }
        self.try_execute(out);
    }

    /// Applies one committed batch without emitting client replies —
    /// shared by CST suffix install and WAL recovery replay (replies for
    /// these operations either went out before the crash or will be
    /// re-requested by their clients).
    fn replay_commit(&mut self, seq: u64, batch: &Arc<Batch>) {
        let digest = batch.digest();
        self.exec_upto = seq;
        for req in batch.requests() {
            let log_seq = self.log.committed() + 1;
            let result = Arc::new(self.machine.apply(&req.payload));
            self.log.push(LogEntry { seq: log_seq, op: req.op, digest });
            self.executed.insert(req.op, result.clone());
            if self.ckpt.enabled() {
                self.sessions.note(req.op.client, req.op.seq, result);
            }
            self.pending.remove(&req.op);
        }
        if self.ckpt.enabled() {
            self.replay_ring.insert(seq, batch.clone());
        }
        if self.durability {
            self.durable.push(DurableEvent::Commit { seq, batch: batch.clone() });
        }
    }

    fn prepared_uncommitted(&self) -> Vec<(u64, Arc<Batch>)> {
        let quorum = self.quorum();
        // Every slot still in the window is unexecuted (execution retires).
        self.slots
            .iter()
            .filter(|(_, s)| s.prepares.len() >= quorum)
            .filter_map(|(seq, s)| s.batch.clone().map(|b| (seq, b)))
            .collect()
    }

    /// The vote round for `view`, created on first use (linear scan: view
    /// changes are rare and the live round count is tiny).
    fn vc_round_mut(&mut self, view: u64) -> &mut VcRound {
        let n = self.n as usize;
        let idx = match self.vc_votes.iter().position(|r| r.view == view) {
            Some(i) => i,
            None => {
                self.vc_votes.push(VcRound::new(view, n));
                self.vc_votes.len() - 1
            }
        };
        // bounds: idx is either a position() hit or the just-pushed last element
        &mut self.vc_votes[idx]
    }

    fn record_vc_vote(
        &mut self,
        view: u64,
        from: ReplicaId,
        prepared: PreparedSet,
        executed_upto: u64,
        cert_seq: u64,
    ) {
        self.vc_round_mut(view).record(from, prepared, executed_upto, cert_seq);
    }

    fn start_view_change(&mut self, new_view: u64, out: &mut Outbox<PbftMsg>) {
        if new_view <= self.view || self.vc_sent_for >= new_view {
            return;
        }
        self.vc_sent_for = new_view;
        self.vc_demanded_at = self.now;
        let prepared = self.prepared_uncommitted();
        self.record_vc_vote(
            new_view,
            self.id,
            prepared.clone(),
            self.exec_upto,
            self.ckpt.stable_seq(),
        );
        out.broadcast(
            self.n,
            self.id,
            PbftMsg::ViewChange {
                new_view,
                from: self.id,
                prepared,
                executed_upto: self.exec_upto,
                cert: self.ckpt.stable().cloned().map(Box::new),
            },
        );
        self.maybe_install_view(new_view, out);
    }

    fn handle_view_change(
        &mut self,
        new_view: u64,
        from: ReplicaId,
        prepared: Vec<(u64, Arc<Batch>)>,
        executed_upto: u64,
        cert: Option<CheckpointCert>,
        out: &mut Outbox<PbftMsg>,
    ) {
        if new_view <= self.view {
            return;
        }
        // A carried certificate is verified before it influences anything:
        // a fresh valid one is adopted (our stable watermark catches up and
        // we truncate), a valid-but-stale one still floors at its seq, and
        // a forged one contributes 0 (`adopt_cert` counts the rejection).
        let cert_seq = match cert {
            Some(c) => {
                if self.ckpt.adopt_cert(&c) {
                    self.apply_truncation();
                    c.seq
                } else if self.ckpt.verify_cert(&c) {
                    c.seq
                } else {
                    0
                }
            }
            None => 0,
        };
        self.record_vc_vote(new_view, from, prepared, executed_upto, cert_seq);
        let count = self.vc_round_mut(new_view).count;
        // Join the view change once f+1 replicas demand it.
        if count >= (self.f + 1) as usize {
            self.start_view_change(new_view, out);
        }
        self.maybe_install_view(new_view, out);
    }

    fn maybe_install_view(&mut self, new_view: u64, out: &mut Outbox<PbftMsg>) {
        let quorum = self.quorum();
        let Some(round) = self.vc_votes.iter().find(|r| r.view == new_view) else { return };
        if round.count < quorum || self.primary_of(new_view) != self.id {
            return;
        }
        // Become primary of the new view: gather every prepared entry and
        // re-propose; pending-but-unprepared requests get fresh sequences.
        // Votes are merged in voter-id order (canonical and deterministic).
        let mut repropose: BTreeMap<u64, Arc<Batch>> = BTreeMap::new();
        for entries in round.votes.iter().flatten() {
            for (seq, batch) in entries {
                repropose.entry(*seq).or_insert_with(|| batch.clone());
            }
        }
        // Also re-propose our own prepared-but-unexecuted entries.
        for (seq, batch) in self.prepared_uncommitted() {
            repropose.entry(seq).or_insert(batch);
        }
        // Fill sequence holes with no-op batches. A proposal can die
        // *unprepared* at seq s (its pre-prepare lost to drops) while s+1
        // prepared and survives the view change — execution is strictly
        // in-order, so without a filler every replica wedges at s forever,
        // view change after view change. Filling is safe only above the
        // vote quorum's execution floor: if ANY correct replica executed
        // seq s, then s gathered a commit quorum, whose prepared-set
        // holders intersect every view-change quorum — so s is in
        // `repropose` and is not a hole (the checkpoint-less analogue of
        // PBFT's null requests above the stable checkpoint). Un-certified
        // watermark claims are trusted as honest — see [`VcRound`]'s trust
        // boundary — but the *certified* floor is proven: prepared entries
        // at or below a verified checkpoint certificate are certified
        // history a forger is trying to rewrite, and are discarded.
        let cert_floor = round.cert_floor;
        if cert_floor > 0 {
            repropose.retain(|seq, _| *seq > cert_floor);
        }
        let floor = round.exec_floor.max(self.exec_upto).max(cert_floor);
        let max_seq = repropose.keys().max().copied().unwrap_or(self.exec_upto);
        for seq in floor.saturating_add(1)..max_seq {
            repropose.entry(seq).or_insert_with(|| noop_batch(seq));
        }
        self.view = new_view;
        // Fresh proposals must start above BOTH the highest re-proposed
        // entry and the quorum's execution floor: a laggard primary that
        // ignored `floor` would re-batch pending requests at sequences its
        // peers already executed and retired — proposals that can never
        // prepare (the watermark rejects them), stalling every pending op
        // until a caught-up replica rotates in.
        self.next_seq = self.next_seq.max(max_seq + 1).max(floor.saturating_add(1));
        // Pending requests not covered get new slots, re-batched at the
        // configured batch size. The pending index is order-canonicalized
        // (sorted by op id) so re-batching is deterministic.
        let covered: BTreeSet<OpId> =
            repropose.values().flat_map(|b| b.requests().iter().map(|r| r.op)).collect();
        let pending: Vec<Arc<Request>> = self
            .pending
            .iter_canonical()
            .into_iter()
            .map(|(_, r)| r)
            .filter(|r| !covered.contains(&r.op) && !self.executed.contains_key(&r.op))
            .cloned()
            .collect();
        for chunk in pending.chunks(self.batcher.batch_size()) {
            let seq = self.next_seq;
            self.next_seq += 1;
            repropose.insert(seq, Arc::new(Batch::new(chunk.to_vec())));
        }
        let preprepares: Vec<(u64, Arc<Batch>)> = repropose.into_iter().collect();
        // Install locally.
        self.install_new_view(new_view, &preprepares, out);
        out.broadcast(self.n, self.id, PbftMsg::NewView { view: new_view, preprepares });
    }

    fn install_new_view(
        &mut self,
        view: u64,
        preprepares: &[(u64, Arc<Batch>)],
        out: &mut Outbox<PbftMsg>,
    ) {
        self.view = view;
        self.vc_sent_for = self.vc_sent_for.max(view);
        // Stale rounds for installed views can never fire again.
        self.vc_votes.retain(|r| r.view > view);
        // Reset vote state for uncommitted slots (everything still in the
        // window); re-run agreement in the new view.
        for slot in self.slots.values_mut() {
            slot.prepares.clear();
            slot.commits.clear();
            slot.sent_commit = false;
        }
        for (seq, batch) in preprepares {
            if self.slots.is_retired(*seq) {
                continue; // already executed: dead, not resurrectable
            }
            let digest = batch.digest();
            let primary = self.primary_of(view);
            let me = self.id;
            for r in batch.requests() {
                self.assigned.insert(r.op, *seq);
            }
            // lint: allow(ingress-expect) -- is_retired() continued the loop just above
            let slot = self.slots.get_or_insert_default(*seq).expect("not retired");
            slot.batch = Some(batch.clone());
            slot.digest = Some(digest);
            slot.prepares.insert(primary);
            slot.prepares.insert(me);
            if primary == me {
                self.stored_preprepares
                    .insert(*seq, PbftMsg::PrePrepare { view, seq: *seq, batch: batch.clone() });
            }
            out.broadcast(
                self.n,
                self.id,
                PbftMsg::Prepare { view, seq: *seq, digest, from: self.id },
            );
        }
        let seqs: Vec<u64> = preprepares.iter().map(|(s, _)| *s).collect();
        for seq in seqs {
            self.maybe_advance(seq, out);
        }
    }

    fn handle_new_view(
        &mut self,
        view: u64,
        preprepares: Vec<(u64, Arc<Batch>)>,
        from: Endpoint,
        out: &mut Outbox<PbftMsg>,
    ) {
        if view <= self.view && self.view != 0 {
            return;
        }
        if from != Endpoint::Replica(self.primary_of(view)) {
            return;
        }
        self.install_new_view(view, &preprepares, out);
        // Re-arm patience for still-pending requests under the new primary
        // (canonical order keeps the timer schedule deterministic).
        let tokens: Vec<u64> =
            self.pending.iter_canonical().into_iter().map(|(op, _)| op_token(op)).collect();
        for token in tokens {
            out.arm(self.patience, TIMER_REQUEST, token);
        }
    }
    // lint: end
}

// The node-facing input surface: every simulator event enters here.
// lint: ingress
impl ReplicaNode for PbftReplica {
    type Msg = PbftMsg;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_input(&mut self, input: Input<PbftMsg>, now: u64, out: &mut Outbox<PbftMsg>) {
        self.now = now;
        if self.script.crashed_at(now) {
            self.in_outage = true;
            return;
        }
        if self.in_outage {
            // Fail-recover: per-op patience timers whose firing landed
            // inside the outage are dead chains (retransmissions do not
            // re-arm an already-pending op) — revive them once, in
            // canonical order, so the recovered backup keeps watching its
            // pending ops.
            self.in_outage = false;
            let tokens: Vec<u64> =
                self.pending.iter_canonical().into_iter().map(|(op, _)| op_token(op)).collect();
            for token in tokens {
                out.arm(self.patience, TIMER_REQUEST, token);
            }
        }
        if self.script.unconstrained() {
            // Fast path (the overwhelmingly common case): a correct
            // replica's outputs are never gated, so handlers write the
            // caller's outbox directly — no staging buffer, no per-event
            // re-moves of every queued message.
            self.dispatch_input(input, now, out);
            return;
        }
        let mut staged = Outbox::new();
        self.dispatch_input(input, now, &mut staged);
        // Script gate on outputs (timers always pass — they are local).
        if self.script.sends_at(now) {
            out.msgs.extend(staged.msgs);
        }
        out.timers.extend(staged.timers);
    }

    fn committed_log(&self) -> &[LogEntry] {
        self.log.entries()
    }

    fn committed_seq(&self) -> u64 {
        self.log.committed()
    }

    fn wipe(&mut self) {
        // Rejuvenation: volatile protocol + application state goes; the
        // replica's identity, keys, fault script, and the self-verifying
        // stable checkpoint certificate (trusted persistent store) stay.
        self.next_seq = 1;
        self.slots = SeqWindow::with_base(1);
        self.assigned = OpIndex::new();
        self.executed = OpIndex::new();
        self.pending = OpIndex::new();
        self.stored_preprepares = SeqWindow::with_base(1);
        self.log = CommittedLog::new();
        self.exec_upto = 0;
        self.machine = KvStore::new();
        self.replay_ring = SeqWindow::with_base(1);
        self.cst.clear();
        self.sessions.clear();
        self.durable.clear();
        self.vc_votes.clear();
        self.vc_sent_for = 0;
        self.vc_demanded_at = 0;
        self.in_outage = false;
        self.view = 0;
        let (size, flush) = (self.batcher.batch_size(), self.batcher.flush_cycles());
        self.batcher = Batcher::new();
        self.batcher.configure(size, flush);
        self.ckpt.wipe();
    }

    fn checkpoint_stats(&self) -> CheckpointStats {
        self.ckpt.stats()
    }

    fn checkpoint_history(&self) -> &[(u64, [u8; 32])] {
        self.ckpt.history()
    }

    fn make_request(req: Arc<Request>) -> PbftMsg {
        PbftMsg::Request(req)
    }

    fn as_reply(msg: &PbftMsg) -> Option<&Reply> {
        match msg {
            PbftMsg::Reply(r) => Some(r),
            _ => None,
        }
    }

    fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    fn current_view(&self) -> u64 {
        self.view
    }

    fn enable_durability(&mut self) {
        self.durability = true;
    }

    fn drain_durable(&mut self, out: &mut Vec<DurableEvent>) {
        out.append(&mut self.durable);
    }

    fn recover(&mut self, state: RecoveredState) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        if let Some((cert, log_len, snapshot)) = state.snapshot {
            // Disk contents are ingress: the certificate and snapshot are
            // re-verified exactly as a transfer response would be.
            if self.ckpt.verify_cert(&cert) && snapshot_matches(&cert, &snapshot) {
                if let Some((kv, sessions)) = decode_image(&snapshot) {
                    if let Some(machine) = KvStore::install_snapshot(kv) {
                        self.ckpt.adopt_cert(&cert);
                        self.machine = machine;
                        self.sessions = sessions;
                        for (client, seq, result) in self.sessions.iter() {
                            self.executed.insert(OpId { client, seq }, result.clone());
                        }
                        self.log.reset_to(log_len);
                        self.replay_ring = SeqWindow::with_base(cert.seq + 1);
                        self.exec_upto = cert.seq;
                        self.slots.retire_below(cert.seq + 1);
                        self.stored_preprepares.retire_below(cert.seq + 1);
                        report.installed_seq = cert.seq;
                    }
                }
            }
        }
        // Replay the contiguous commit run above the snapshot; the first
        // gap or garbage batch abandons the rest to state transfer.
        for (seq, batch) in &state.commits {
            if *seq <= self.exec_upto {
                continue;
            }
            if *seq != self.exec_upto + 1 || batch.is_empty() || !batch.verify() {
                break;
            }
            self.replay_commit(*seq, batch);
            report.replayed += 1;
        }
        self.next_seq = self.next_seq.max(self.exec_upto + 1);
        report.committed = self.log.committed();
        report
    }
}

impl PbftReplica {
    /// Routes one input to its handler, emitting effects into `out`.
    fn dispatch_input(&mut self, input: Input<PbftMsg>, now: u64, staged: &mut Outbox<PbftMsg>) {
        match input {
            Input::Message { from, msg } => match msg {
                PbftMsg::Request(req) => self.handle_request(req, staged),
                PbftMsg::PrePrepare { view, seq, batch } => {
                    self.handle_preprepare(from, view, seq, batch, staged)
                }
                PbftMsg::Prepare { view, seq, digest, from } => {
                    self.handle_prepare(view, seq, digest, from, staged)
                }
                PbftMsg::Commit { view, seq, digest, from } => {
                    self.handle_commit(view, seq, digest, from, staged)
                }
                PbftMsg::ViewChange { new_view, from, prepared, executed_upto, cert } => {
                    let cert = cert.map(|c| *c);
                    self.handle_view_change(new_view, from, prepared, executed_upto, cert, staged)
                }
                PbftMsg::NewView { view, preprepares } => {
                    self.handle_new_view(view, preprepares, from, staged)
                }
                PbftMsg::Checkpoint(voucher) => self.handle_checkpoint(*voucher, staged),
                PbftMsg::StateRequest { have, from } => {
                    self.handle_state_request(have, from, staged)
                }
                PbftMsg::StateResponse(st) => self.handle_state_response(*st, staged),
                PbftMsg::Reply(_) => {}
            },
            Input::Timer { kind: TIMER_REQUEST, token } => {
                if self.pending.contains_key(&token_op(token)) {
                    // Demand at most one new view per full patience period
                    // (`vc_demanded_at` is stamped on every demand, own or
                    // joined). The escalation target skips past a
                    // demanded-but-never-installed view, so a CrashAt
                    // firing *mid view-change* — killing the incoming
                    // primary — escalates to a live one instead of wedging
                    // the cluster on a view nobody can install. The rate
                    // limit matters as much as the escalation: every
                    // pending op runs its own patience timer, and demanding
                    // per fire outruns any installation (a view-change
                    // livelock storm that starves re-proposals forever).
                    if now >= self.vc_demanded_at.saturating_add(self.patience) {
                        let next = self.view.max(self.vc_sent_for) + 1;
                        self.start_view_change(next, staged);
                    }
                    // Keep watching: if the new view also stalls, escalate.
                    staged.arm(self.patience, TIMER_REQUEST, token);
                }
            }
            Input::Timer { kind: TIMER_FLUSH, token } => {
                // Stale tokens (from accumulations already sealed by size)
                // are ignored; only the current epoch's timer flushes.
                if self.batcher.on_flush_timer(token) && self.is_primary() {
                    self.flush_batch(staged);
                }
            }
            Input::Timer { .. } => {}
        }
        if self.ckpt.enabled() {
            // Any input may have revealed a stable certificate ahead of us
            // (post-wipe, or crashed past retention): chase it, rate-limited
            // by the CST backoff.
            self.maybe_request_transfer(staged);
        }
    }
}
// lint: end

/// A PBFT cluster of `3f+1` replicas.
#[derive(Debug)]
pub struct PbftCluster {
    nodes: Vec<PbftReplica>,
    f: u32,
}

impl PbftCluster {
    /// Builds the cluster for `config.f`.
    pub fn new(config: &RunConfig) -> Self {
        let n = 3 * config.f + 1;
        let keys = CkptKeys::provision(config.seed, n as usize);
        PbftCluster {
            nodes: (0..n)
                .map(|i| {
                    let mut r = PbftReplica::new(ReplicaId(i), config.f);
                    r.set_batching(config.batch_size, config.batch_flush);
                    r.set_patience(config.request_patience);
                    r.set_checkpointing(config.checkpoint_interval, Arc::clone(&keys));
                    r
                })
                .collect(),
            f: config.f,
        }
    }

    /// Fault threshold.
    pub fn f(&self) -> u32 {
        self.f
    }
}

impl Cluster for PbftCluster {
    type Node = PbftReplica;

    fn nodes_mut(&mut self) -> &mut [PbftReplica] {
        &mut self.nodes
    }

    fn nodes(&self) -> &[PbftReplica] {
        &self.nodes
    }

    fn into_nodes(self) -> Vec<PbftReplica> {
        self.nodes
    }

    fn reply_quorum(&self) -> usize {
        (self.f + 1) as usize
    }

    fn protocol_name(&self) -> &'static str {
        "pbft"
    }

    fn correct_replicas(&self) -> Vec<ReplicaId> {
        self.nodes.iter().filter(|n| !n.script().is_byzantine()).map(|n| n.id()).collect()
    }

    fn set_script(&mut self, id: ReplicaId, script: ReplicaScript) {
        self.nodes[id.0 as usize].set_script(script);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Behavior;
    use crate::runner::{run, RunConfig};

    fn config(f: u32, clients: u32, reqs: u64, seed: u64) -> RunConfig {
        RunConfig { f, clients, requests_per_client: reqs, seed, ..Default::default() }
    }

    #[test]
    fn fault_free_commits_everything() {
        let cfg = config(1, 2, 10, 7);
        let mut cluster = PbftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 20);
        assert!(report.safety_ok);
        assert_eq!(report.n_replicas, 4);
        // All four replicas executed the same 20-entry log.
        for node in cluster.nodes() {
            assert_eq!(node.committed_log().len(), 20);
        }
    }

    #[test]
    fn batched_commits_everything_with_fewer_messages() {
        let unbatched = config(1, 8, 8, 57);
        let batched = RunConfig { batch_size: 8, batch_flush: 100, ..unbatched.clone() };
        let mut c1 = PbftCluster::new(&unbatched);
        let r1 = run(&mut c1, &unbatched);
        let mut c2 = PbftCluster::new(&batched);
        let r2 = run(&mut c2, &batched);
        assert_eq!(r1.committed, 64);
        assert_eq!(r2.committed, 64);
        assert!(r1.safety_ok && r2.safety_ok);
        assert!(
            r2.messages_per_commit() < r1.messages_per_commit() / 2.0,
            "batch=8 must amortize protocol messages: {:.1} vs {:.1}",
            r2.messages_per_commit(),
            r1.messages_per_commit()
        );
        // Same request schedule -> same final state, batched or not.
        assert_eq!(c1.nodes()[0].state_digest(), c2.nodes()[0].state_digest());
    }

    #[test]
    fn pipelined_clients_fill_batches_and_outrun_closed_loop() {
        // 4 clients against batch_size 8: strictly closed-loop demand can
        // never fill a batch (at most 4 concurrent requests), so progress
        // leans on flush timeouts. A window of 4 gives the primary 16
        // concurrent requests — full batches, higher throughput, same
        // final state.
        let base = RunConfig {
            batch_size: 8,
            batch_flush: 100,
            link_occupancy: 8,
            ..config(1, 4, 16, 67)
        };
        let piped_cfg = RunConfig { client_window: 4, ..base.clone() };
        let mut closed_cluster = PbftCluster::new(&base);
        let closed = run(&mut closed_cluster, &base);
        let mut piped_cluster = PbftCluster::new(&piped_cfg);
        let piped = run(&mut piped_cluster, &piped_cfg);
        assert_eq!(closed.committed, 64);
        assert_eq!(piped.committed, 64);
        assert!(closed.safety_ok && piped.safety_ok);
        assert!(
            piped.throughput_per_kcycle() > closed.throughput_per_kcycle(),
            "window=4 must outrun closed-loop: {:.2} vs {:.2} ops/kcycle",
            piped.throughput_per_kcycle(),
            closed.throughput_per_kcycle()
        );
        assert_eq!(
            closed_cluster.nodes()[0].state_digest(),
            piped_cluster.nodes()[0].state_digest()
        );
    }

    #[test]
    fn pipelined_retransmissions_stay_exactly_once() {
        // Tiny client timeout + window 3: every outstanding op retransmits
        // independently; execution must remain exactly-once per op.
        let cfg = RunConfig {
            client_timeout: 25,
            client_window: 3,
            max_cycles: 5_000_000,
            ..config(1, 2, 6, 71)
        };
        let mut cluster = PbftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 12);
        assert!(report.safety_ok);
        for node in cluster.nodes() {
            assert_eq!(node.committed_log().len(), 12, "exactly-once execution");
        }
        assert!(report.client_retries > 0, "test must actually exercise retries");
    }

    #[test]
    fn partial_batches_flush_on_timeout() {
        // 3 clients with batch_size 8: batches can never fill, so progress
        // relies entirely on the flush timer.
        let cfg = RunConfig { batch_size: 8, batch_flush: 50, ..config(1, 3, 5, 59) };
        let mut cluster = PbftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 15);
        assert!(report.safety_ok);
    }

    #[test]
    fn equivocating_primary_cannot_break_safety_with_batching() {
        let cfg = RunConfig {
            batch_size: 4,
            batch_flush: 80,
            max_cycles: 5_000_000,
            ..config(1, 4, 4, 61)
        };
        let mut cluster = PbftCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::Equivocate.into());
        let report = run(&mut cluster, &cfg);
        assert!(report.safety_ok, "batched equivocation must not split logs");
        assert_eq!(report.committed, 16);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = config(1, 2, 8, 99);
        let r1 = run(&mut PbftCluster::new(&cfg), &cfg);
        let r2 = run(&mut PbftCluster::new(&cfg), &cfg);
        assert_eq!(r1.committed, r2.committed);
        assert_eq!(r1.messages_total, r2.messages_total);
        assert_eq!(r1.duration_cycles, r2.duration_cycles);
    }

    #[test]
    fn tolerates_f_silent_replicas() {
        let cfg = config(1, 1, 10, 3);
        let mut cluster = PbftCluster::new(&cfg);
        cluster.set_script(ReplicaId(3), Behavior::Silent.into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 10);
        assert!(report.safety_ok);
    }

    #[test]
    fn f2_cluster_tolerates_two_crashes() {
        let cfg = config(2, 1, 6, 5);
        let mut cluster = PbftCluster::new(&cfg);
        cluster.set_script(ReplicaId(5), Behavior::Crashed.into());
        cluster.set_script(ReplicaId(6), Behavior::Crashed.into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.n_replicas, 7);
        assert_eq!(report.committed, 6);
        assert!(report.safety_ok);
    }

    #[test]
    fn primary_crash_triggers_view_change_and_recovers() {
        let cfg = RunConfig { max_cycles: 5_000_000, ..config(1, 1, 8, 11) };
        let mut cluster = PbftCluster::new(&cfg);
        // Primary of view 0 is replica 0; crash it mid-run.
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(150).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 8, "all requests commit despite failover");
        assert!(report.safety_ok);
        // Surviving replicas moved past view 0.
        assert!(cluster.nodes()[1].view() >= 1);
    }

    #[test]
    fn crash_at_mid_view_change_still_elects_and_commits() {
        // Regression for the cascading-failure class: the primary of view 0
        // crashes, and while the view change to view 1 is in flight the
        // *incoming* primary crashes too (CrashAt fires mid view-change).
        // The surviving 2f+1 quorum must escalate to view 2, re-propose,
        // and commit every pending batch — not wedge on the half-installed
        // view. f=2 (n=7) so two crashes stay within tolerance.
        let cfg = RunConfig {
            batch_size: 4,
            batch_flush: 80,
            max_cycles: 30_000_000,
            ..config(2, 4, 4, 83)
        };
        let mut cluster = PbftCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(150).into());
        // Patience (1500) fires the first view change around cycle ~1510;
        // replica 1 dies while installing/leading view 1.
        cluster.set_script(ReplicaId(1), Behavior::CrashAt(1525).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 16, "pending batches must commit after the double failover");
        assert!(report.safety_ok);
        // The survivors moved past both dead primaries.
        for id in 2..7u32 {
            assert!(
                cluster.nodes()[id as usize].view() >= 2,
                "replica {id} stuck at view {}",
                cluster.nodes()[id as usize].view()
            );
        }
        // Survivors executed identical full logs.
        let len = cluster.nodes()[2].committed_log().len();
        assert_eq!(len, 16);
        for id in 3..7usize {
            assert_eq!(cluster.nodes()[id].committed_log().len(), len);
        }
    }

    #[test]
    fn equivocating_primary_cannot_break_safety() {
        let cfg = RunConfig { max_cycles: 5_000_000, ..config(1, 2, 6, 13) };
        let mut cluster = PbftCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::Equivocate.into());
        let report = run(&mut cluster, &cfg);
        assert!(report.safety_ok, "equivocation must never split correct logs");
        assert_eq!(report.committed, 12, "liveness via view change");
    }

    #[test]
    fn message_loss_is_recovered_by_retries() {
        let cfg = RunConfig { drop_rate: 0.05, max_cycles: 5_000_000, ..config(1, 1, 8, 17) };
        let mut cluster = PbftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 8);
        assert!(report.safety_ok);
    }

    #[test]
    fn replies_are_deduplicated_for_retransmitted_requests() {
        // Tiny client timeout forces retransmissions; execution must remain
        // exactly-once (log length == distinct ops).
        let cfg = RunConfig { client_timeout: 25, max_cycles: 5_000_000, ..config(1, 1, 5, 19) };
        let mut cluster = PbftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 5);
        for node in cluster.nodes() {
            assert_eq!(node.committed_log().len(), 5, "exactly-once execution");
        }
        assert!(report.client_retries > 0, "test must actually exercise retries");
    }
}
