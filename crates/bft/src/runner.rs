//! The deterministic protocol harness: windowed closed-loop clients,
//! message latencies, message accounting, and the cross-replica safety
//! checker.
//!
//! The event queue is allocation-free *and* O(1) on the hot path: events
//! live in a [`TimingWheel`] — bodies in a freelist arena, ordering in
//! cycle-indexed FIFO buckets — so a message pays a bucket append and a
//! bucket unlink instead of two O(log n) heap sifts, while pop order
//! stays exactly `(delivery time, push order)`.
//!
//! The message plane is allocation-free too: each client op allocates its
//! [`Request`] exactly once and every send — the n-way fan-out *and*
//! every retransmission — shares it through an `Arc`; one [`Outbox`] is
//! reused across all delivered events (cleared, never reallocated).

use crate::api::{
    ClientId, Cluster, Endpoint, Input, OpId, Outbox, ReplicaId, ReplicaNode, Request,
};
use rsoc_sim::{Histogram, SimRng, TimingWheel};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Message latency models for the on-chip interconnect.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every message takes exactly this many cycles.
    Fixed(u64),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum cycles.
        min: u64,
        /// Maximum cycles (inclusive).
        max: u64,
    },
    /// NoC-style: `overhead + per_hop * manhattan(position(from), position(to))`.
    /// Endpoint positions: replicas use `replica_at[id]`; clients sit at
    /// `client_at`.
    MeshHops {
        /// Tile coordinate of each replica.
        replica_at: Vec<(u16, u16)>,
        /// Tile coordinate shared by clients (e.g., an I/O tile).
        client_at: (u16, u16),
        /// Cycles per hop.
        per_hop: u64,
        /// Fixed endpoint overhead.
        overhead: u64,
    },
}

impl LatencyModel {
    fn sample(&self, from: Endpoint, to: Endpoint, rng: &mut SimRng) -> u64 {
        match self {
            LatencyModel::Fixed(c) => *c,
            LatencyModel::Uniform { min, max } => rng.range(*min, *max + 1),
            LatencyModel::MeshHops { replica_at, client_at, per_hop, overhead } => {
                let pos = |e: Endpoint| match e {
                    Endpoint::Replica(r) => {
                        replica_at.get(r.0 as usize).copied().unwrap_or(*client_at)
                    }
                    Endpoint::Client(_) => *client_at,
                };
                let (ax, ay) = pos(from);
                let (bx, by) = pos(to);
                let hops = (ax.abs_diff(bx) + ay.abs_diff(by)) as u64;
                overhead + per_hop * hops
            }
        }
    }
}

/// Configuration of one protocol run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Fault threshold; each protocol derives its replica count from this
    /// (PBFT: 3f+1, MinBFT: 2f+1, passive: 2).
    pub f: u32,
    /// Number of closed-loop clients.
    pub clients: u32,
    /// Requests each client issues.
    pub requests_per_client: u64,
    /// RNG seed (drives latencies and payloads).
    pub seed: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Client retransmission timeout in cycles.
    pub client_timeout: u64,
    /// Hard stop for the run.
    pub max_cycles: u64,
    /// Probability that any single replica→replica message is lost.
    pub drop_rate: f64,
    /// Payload bytes per request.
    pub payload_size: usize,
    /// Maximum requests agreed on as one consensus unit (1 = unbatched).
    /// The primary seals a batch as soon as this many requests accumulate.
    pub batch_size: usize,
    /// Cycles a partially filled batch may wait before the primary flushes
    /// it anyway (bounds batching's latency cost). Must stay well below the
    /// backups' request-patience and the client timeout.
    pub batch_flush: u64,
    /// Cycles a replica's egress port is occupied serializing each outgoing
    /// message (NoC packetization, header flits, MAC check-in). This is the
    /// per-message fixed cost that batching amortizes; 0 models infinite
    /// interface bandwidth (messages are free in virtual time).
    pub link_occupancy: u64,
    /// Requests each client keeps outstanding (clamped to ≥ 1). At 1 the
    /// client is strictly closed-loop: it waits for a reply quorum before
    /// issuing the next request. A window of `k` lets a client pipeline
    /// `k` requests, so a batching primary sees enough concurrent demand
    /// to actually fill `batch_size` slots without extra client tiles.
    pub client_window: usize,
    /// Cycles a backup waits for a pending request to commit before
    /// suspecting the primary (view-change trigger). Must exceed the
    /// steady-state tail commit latency: pipelined windows multiply the
    /// in-flight population, so deep windows need proportionally more
    /// patience or correct primaries get deposed in a permanent storm.
    pub request_patience: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            f: 1,
            clients: 1,
            requests_per_client: 10,
            seed: 1,
            latency: LatencyModel::Uniform { min: 5, max: 15 },
            client_timeout: 4_000,
            max_cycles: 2_000_000,
            drop_rate: 0.0,
            payload_size: 16,
            batch_size: 1,
            batch_flush: 200,
            link_occupancy: 0,
            client_window: 1,
            request_patience: 1_500,
        }
    }
}

/// Outcome of one protocol run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Replica count used.
    pub n_replicas: usize,
    /// Operations acknowledged to clients (reply quorum reached).
    pub committed: u64,
    /// Operations requested in total.
    pub requested: u64,
    /// Client-observed commit latencies (cycles).
    pub commit_latency: Histogram,
    /// All messages sent (client + protocol + replies).
    pub messages_total: u64,
    /// Replica→replica protocol messages only.
    pub messages_protocol: u64,
    /// Client retransmissions observed.
    pub client_retries: u64,
    /// Whether all correct replicas' logs were prefix-compatible.
    pub safety_ok: bool,
    /// Virtual duration of the run.
    pub duration_cycles: u64,
    /// Batch size the run was configured with (for reports).
    pub batch_size: usize,
}

impl RunReport {
    /// Protocol messages per committed operation.
    pub fn messages_per_commit(&self) -> f64 {
        if self.committed == 0 {
            return f64::INFINITY;
        }
        self.messages_protocol as f64 / self.committed as f64
    }

    /// Committed operations per 1000 cycles.
    pub fn throughput_per_kcycle(&self) -> f64 {
        if self.duration_cycles == 0 {
            return 0.0;
        }
        self.committed as f64 * 1000.0 / self.duration_cycles as f64
    }
}

#[derive(Debug)]
enum Queued<M> {
    Deliver { from: Endpoint, to: Endpoint, msg: M },
    ReplicaTimer { replica: ReplicaId, kind: u32, token: u64 },
    ClientTimer { client: ClientId, op_seq: u64 },
}

/// One in-flight client operation: the request (shared with every wire
/// copy, including retransmissions), when it was first sent
/// (retransmissions do not reset the latency clock), and the per-result
/// reply tally — a tiny linear-scan list (distinct results per op are
/// almost always 1) with voter *bitmasks*, so recording a reply allocates
/// nothing and shares the replica's result buffer.
struct PendingOp {
    request: Arc<Request>,
    sent_at: u64,
    replies: Vec<(Arc<Vec<u8>>, u64)>,
}

struct ClientState {
    id: ClientId,
    next_seq: u64,
    done: u64,
    target: u64,
    /// Maximum concurrently outstanding operations.
    window: usize,
    /// Outstanding operations keyed by client sequence number.
    pending: BTreeMap<u64, PendingOp>,
    retries: u64,
}

/// Runs `cluster` under `config`, returning the measured report.
///
/// Deterministic: identical `(cluster initial state, config)` gives an
/// identical report.
pub fn run<C: Cluster>(cluster: &mut C, config: &RunConfig) -> RunReport {
    let n = cluster.nodes().len();
    let mut rng = SimRng::new(config.seed ^ 0xB07_F00D);
    // Cycle-indexed wheel: O(1) push/pop, (time, push-order) pop order.
    let mut queue: TimingWheel<Queued<<C::Node as ReplicaNode>::Msg>> = TimingWheel::new();
    let mut now: u64 = 0;
    let mut egress_free: Vec<u64> = vec![0; n];

    let mut messages_total = 0u64;
    let mut messages_protocol = 0u64;
    let mut commit_latency = Histogram::new();
    let mut committed = 0u64;

    let mut clients: Vec<ClientState> = (0..config.clients)
        .map(|i| ClientState {
            id: ClientId(i),
            next_seq: 1,
            done: 0,
            target: config.requests_per_client,
            window: config.client_window.max(1),
            pending: BTreeMap::new(),
            retries: 0,
        })
        .collect();

    let quorum = cluster.reply_quorum();

    macro_rules! push_event {
        ($at:expr, $ev:expr) => {{
            queue.push($at, $ev);
        }};
    }

    // Kick off: every client fills its pipeline window at time ~0.
    for client in clients.iter_mut() {
        let id = client.id;
        while let Some((op_seq, sends)) = client_issue::<C>(client, n, config, &mut rng, 0) {
            for (at, from, to, msg) in sends {
                messages_total += 1;
                push_event!(at, Queued::Deliver { from, to, msg });
            }
            push_event!(config.client_timeout, Queued::ClientTimer { client: id, op_seq });
        }
    }

    // One outbox reused for every delivered event: cleared (capacity
    // kept), so the steady state allocates nothing per event.
    let mut out: Outbox<<C::Node as ReplicaNode>::Msg> = Outbox::new();

    while let Some((at, ev)) = queue.pop() {
        if at > config.max_cycles {
            now = config.max_cycles;
            break;
        }
        now = at;
        match ev {
            Queued::Deliver { from, to, msg } => match to {
                Endpoint::Replica(r) => {
                    out.clear();
                    cluster.nodes_mut()[r.0 as usize].on_input(
                        Input::Message { from, msg },
                        now,
                        &mut out,
                    );
                    route_outbox::<C>(
                        r,
                        &mut out,
                        now,
                        config,
                        &mut rng,
                        &mut egress_free,
                        &mut messages_total,
                        &mut messages_protocol,
                        &mut |at, ev| queue.push(at, ev),
                    );
                }
                Endpoint::Client(c) => {
                    let Some(reply) = C::Node::as_reply(&msg) else { continue };
                    let client = &mut clients[c.0 as usize];
                    let Some(op) = client.pending.get_mut(&reply.op.seq) else { continue };
                    if reply.op != op.request.op {
                        continue;
                    }
                    let voters = match op.replies.iter_mut().find(|(r, _)| *r == reply.result) {
                        Some((_, v)) => v,
                        None => {
                            op.replies.push((reply.result.clone(), 0));
                            &mut op.replies.last_mut().expect("just pushed").1
                        }
                    };
                    *voters |= 1u64 << (reply.replica.0 & 63);
                    if voters.count_ones() as usize >= quorum {
                        committed += 1;
                        commit_latency.record((now - op.sent_at) as f64);
                        client.done += 1;
                        client.pending.remove(&reply.op.seq);
                        // A completed op frees one window slot: issue the
                        // next request immediately (the pipeline stays full
                        // until the target is exhausted).
                        if let Some((op_seq, sends)) =
                            client_issue::<C>(client, n, config, &mut rng, now)
                        {
                            for (at, from, to, msg) in sends {
                                messages_total += 1;
                                push_event!(at, Queued::Deliver { from, to, msg });
                            }
                            push_event!(
                                now + config.client_timeout,
                                Queued::ClientTimer { client: c, op_seq }
                            );
                        }
                    }
                }
            },
            Queued::ReplicaTimer { replica, kind, token } => {
                out.clear();
                cluster.nodes_mut()[replica.0 as usize].on_input(
                    Input::Timer { kind, token },
                    now,
                    &mut out,
                );
                route_outbox::<C>(
                    replica,
                    &mut out,
                    now,
                    config,
                    &mut rng,
                    &mut egress_free,
                    &mut messages_total,
                    &mut messages_protocol,
                    &mut |at, ev| queue.push(at, ev),
                );
            }
            Queued::ClientTimer { client, op_seq } => {
                let c = &mut clients[client.0 as usize];
                if let Some(op) = c.pending.get(&op_seq) {
                    c.retries += 1;
                    // Retransmissions reuse the op's one Arc'd request —
                    // a refcount bump per wire copy, no payload clone.
                    let req = op.request.clone();
                    for i in 0..n {
                        let delay = config.latency.sample(
                            Endpoint::Client(client),
                            Endpoint::Replica(ReplicaId(i as u32)),
                            &mut rng,
                        );
                        messages_total += 1;
                        push_event!(
                            now + delay,
                            Queued::Deliver {
                                from: Endpoint::Client(client),
                                to: Endpoint::Replica(ReplicaId(i as u32)),
                                msg: C::Node::make_request(req.clone()),
                            }
                        );
                    }
                    push_event!(
                        now + config.client_timeout,
                        Queued::ClientTimer { client, op_seq }
                    );
                }
            }
        }
        // Early exit when all clients have finished.
        if clients.iter().all(|c| c.done >= c.target) {
            break;
        }
    }

    // Quiesce: the workload is over, but messages already in flight (e.g.
    // the final state update or commit round) still reach their replicas,
    // as do the cascades they trigger. Timers are dropped — no new
    // workload can start — and `now` stays frozen at the break point so
    // throughput is measured over the active phase only. Bounded because
    // without timers every protocol's message cascades are finite.
    if clients.iter().all(|c| c.done >= c.target) {
        let mut drained = 0u64;
        while let Some((at, ev)) = queue.pop() {
            if at > config.max_cycles || drained > 5_000_000 {
                break;
            }
            drained += 1;
            let Queued::Deliver { from, to: Endpoint::Replica(r), msg } = ev else { continue };
            out.clear();
            cluster.nodes_mut()[r.0 as usize].on_input(Input::Message { from, msg }, at, &mut out);
            route_outbox::<C>(
                r,
                &mut out,
                at,
                config,
                &mut rng,
                &mut egress_free,
                &mut messages_total,
                &mut messages_protocol,
                &mut |at2, ev| {
                    // Deliveries keep flowing; timers die with the run.
                    if matches!(ev, Queued::Deliver { .. }) {
                        queue.push(at2, ev);
                    }
                },
            );
        }
    }

    let requested: u64 = clients.iter().map(|c| c.done + c.pending.len() as u64).sum();
    let retries = clients.iter().map(|c| c.retries).sum();
    let safety_ok = check_safety(cluster);

    RunReport {
        protocol: cluster.protocol_name(),
        n_replicas: n,
        committed,
        requested,
        commit_latency,
        messages_total,
        messages_protocol,
        client_retries: retries,
        safety_ok,
        duration_cycles: now,
        batch_size: config.batch_size,
    }
}

/// Issues the next request for `client`, if the target is not exhausted
/// and the pipeline window has a free slot. Returns the issued client
/// sequence number and the scheduled send tuples.
#[allow(clippy::type_complexity)]
fn client_issue<C: Cluster>(
    client: &mut ClientState,
    n: usize,
    config: &RunConfig,
    rng: &mut SimRng,
    now: u64,
) -> Option<(u64, Vec<(u64, Endpoint, Endpoint, <C::Node as ReplicaNode>::Msg)>)> {
    let issued = client.next_seq - 1;
    if issued >= client.target || client.pending.len() >= client.window {
        return None;
    }
    let seq = client.next_seq;
    client.next_seq += 1;
    let client_id = client.id;
    // Payload filler comes from a PRNG keyed by (seed, client, seq), NOT
    // the shared run RNG: request contents are then a pure function of the
    // request's identity, so runs that interleave differently (batched vs
    // unbatched, different latency models) execute identical commands.
    let mut payload_rng = SimRng::new(
        config.seed ^ ((client.id.0 as u64 + 1) << 40) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut payload = vec![0u8; config.payload_size];
    for b in payload.iter_mut() {
        *b = payload_rng.next_u32() as u8;
    }
    // Make payloads printable KV sets so state machines do real work.
    // Each op writes its own key (client.seq): ops are independent, so a
    // windowed client's completions may commit in any order and the final
    // KV state is still a pure function of the op *set* — which is what
    // lets the batched-vs-unbatched (and windowed-vs-closed-loop) digest
    // equivalence checks hold under pipelining.
    let text = format!("SET k{}.{seq} v{seq}", client.id.0);
    let tlen = text.len().min(payload.len().max(text.len()));
    payload.resize(tlen.max(config.payload_size), b'_');
    let copy_len = text.len().min(payload.len());
    payload[..copy_len].copy_from_slice(&text.as_bytes()[..copy_len]);

    // The op's single allocation: every wire copy below (and every later
    // retransmission) shares this Arc.
    let req = Arc::new(Request { op: OpId { client: client_id, seq }, payload });
    client
        .pending
        .insert(seq, PendingOp { request: req.clone(), sent_at: now, replies: Vec::new() });

    let sends = (0..n)
        .map(|i| {
            let to = Endpoint::Replica(ReplicaId(i as u32));
            let delay = config.latency.sample(Endpoint::Client(client_id), to, rng);
            (now + delay, Endpoint::Client(client_id), to, C::Node::make_request(req.clone()))
        })
        .collect();
    Some((seq, sends))
}

#[allow(clippy::too_many_arguments)]
fn route_outbox<C: Cluster>(
    from: ReplicaId,
    out: &mut Outbox<<C::Node as ReplicaNode>::Msg>,
    now: u64,
    config: &RunConfig,
    rng: &mut SimRng,
    egress_free: &mut [u64],
    messages_total: &mut u64,
    messages_protocol: &mut u64,
    push: &mut dyn FnMut(u64, Queued<<C::Node as ReplicaNode>::Msg>),
) {
    for (to, msg) in out.msgs.drain(..) {
        // Sender-side serialization: each message occupies the replica's
        // egress port for `link_occupancy` cycles, so a burst departs
        // back-to-back rather than simultaneously. This charges the
        // per-message fixed cost that batching amortizes; lost messages
        // still occupy the port (they were physically sent).
        let depart = if config.link_occupancy > 0 {
            let free = egress_free[from.0 as usize].max(now) + config.link_occupancy;
            egress_free[from.0 as usize] = free;
            free
        } else {
            now
        };
        if let Endpoint::Replica(_) = to {
            *messages_protocol += 1;
            if rng.chance(config.drop_rate) {
                *messages_total += 1; // sent but lost
                continue;
            }
        }
        *messages_total += 1;
        let delay = config.latency.sample(Endpoint::Replica(from), to, rng);
        push(depart + delay, Queued::Deliver { from: Endpoint::Replica(from), to, msg });
    }
    for (delay, kind, token) in out.timers.drain(..) {
        push(now + delay, Queued::ReplicaTimer { replica: from, kind, token });
    }
}

/// Checks that all correct replicas' committed logs agree: for every pair,
/// entries at the same sequence number have the same digest (prefix
/// compatibility — one replica may simply be behind).
pub fn check_safety<C: Cluster>(cluster: &C) -> bool {
    let correct = cluster.correct_replicas();
    for (i, &a) in correct.iter().enumerate() {
        for &b in &correct[i + 1..] {
            let la = cluster.nodes()[a.0 as usize].committed_log();
            let lb = cluster.nodes()[b.0 as usize].committed_log();
            let common = la.len().min(lb.len());
            for k in 0..common {
                if la[k].seq != lb[k].seq || la[k].op != lb[k].op || la[k].digest != lb[k].digest {
                    return false;
                }
            }
        }
    }
    true
}
