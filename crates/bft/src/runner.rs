//! The deterministic protocol harness: windowed closed-loop clients,
//! message latencies, message accounting, and the cross-replica safety
//! checker.
//!
//! The event queue is allocation-free *and* O(1) on the hot path: events
//! live in a [`TimingWheel`] — bodies in a freelist arena, ordering in
//! cycle-indexed FIFO buckets — so a message pays a bucket append and a
//! bucket unlink instead of two O(log n) heap sifts, while pop order
//! stays exactly `(delivery time, push order)`.
//!
//! The message plane is allocation-free too: each client op allocates its
//! [`Request`] exactly once and every send — the n-way fan-out *and*
//! every retransmission — shares it through an `Arc`; one [`Outbox`] is
//! reused across all delivered events (cleared, never reallocated).
//!
//! # Scenario interpretation
//!
//! [`run_scenario`] drives the same event loop under an adversarial
//! [`Scenario`]: replica fault scripts are installed on the cluster
//! (crash/silence/content-attack windows are interpreted where the
//! replica's behaviour lives), while every *transport-level* fault is
//! interpreted uniformly here — partitions sever replica↔replica
//! deliveries, link faults drop and delay crossing messages, per-replica
//! send scripts delay/duplicate/reorder outbox bursts, replay schedules
//! re-inject recorded stale messages, and DoS floods synthesize attacker
//! client traffic. All scenario randomness comes from a dedicated fault
//! RNG stream, so an **empty scenario leaves the virtual-time trace
//! bit-identical** to the unscripted path (the committed BENCH records
//! regenerate unchanged).

use crate::adversary::Scenario;
use crate::api::{
    ClientId, Cluster, Endpoint, Input, OpId, Outbox, ReplicaId, ReplicaNode, Request,
};
use crate::plane::{step_node, Transport};
use rsoc_sim::{
    Arrival, ArrivalGen, Histogram, KeyDist, KeyPicker, LogHistogram, RateMod, SimRng, TimingWheel,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Messages per replica kept for stale-replay injection (oldest kept:
/// early-run messages are the interesting stale ones — old views, consumed
/// USIG counters, already-applied state updates).
const REPLAY_RECORD_CAP: usize = 64;

/// Message latency models for the on-chip interconnect.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every message takes exactly this many cycles.
    Fixed(u64),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum cycles.
        min: u64,
        /// Maximum cycles (inclusive).
        max: u64,
    },
    /// NoC-style: `overhead + per_hop * manhattan(position(from), position(to))`.
    /// Endpoint positions: replicas use `replica_at[id]`; clients sit at
    /// `client_at`.
    MeshHops {
        /// Tile coordinate of each replica.
        replica_at: Vec<(u16, u16)>,
        /// Tile coordinate shared by clients (e.g., an I/O tile).
        client_at: (u16, u16),
        /// Cycles per hop.
        per_hop: u64,
        /// Fixed endpoint overhead.
        overhead: u64,
    },
}

impl LatencyModel {
    fn sample(&self, from: Endpoint, to: Endpoint, rng: &mut SimRng) -> u64 {
        match self {
            LatencyModel::Fixed(c) => *c,
            LatencyModel::Uniform { min, max } => rng.range(*min, *max + 1),
            LatencyModel::MeshHops { replica_at, client_at, per_hop, overhead } => {
                let pos = |e: Endpoint| match e {
                    Endpoint::Replica(r) => {
                        replica_at.get(r.0 as usize).copied().unwrap_or(*client_at)
                    }
                    Endpoint::Client(_) => *client_at,
                };
                let (ax, ay) = pos(from);
                let (bx, by) = pos(to);
                let hops = (ax.abs_diff(bx) + ay.abs_diff(by)) as u64;
                overhead + per_hop * hops
            }
        }
    }
}

/// Configuration of one protocol run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Fault threshold; each protocol derives its replica count from this
    /// (PBFT: 3f+1, MinBFT: 2f+1, passive: 2).
    pub f: u32,
    /// Number of closed-loop clients.
    pub clients: u32,
    /// Requests each client issues.
    pub requests_per_client: u64,
    /// RNG seed (drives latencies and payloads).
    pub seed: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Client retransmission timeout in cycles.
    pub client_timeout: u64,
    /// Hard stop for the run.
    pub max_cycles: u64,
    /// Probability that any single replica→replica message is lost.
    pub drop_rate: f64,
    /// Payload bytes per request.
    pub payload_size: usize,
    /// Maximum requests agreed on as one consensus unit (1 = unbatched).
    /// The primary seals a batch as soon as this many requests accumulate.
    pub batch_size: usize,
    /// Cycles a partially filled batch may wait before the primary flushes
    /// it anyway (bounds batching's latency cost). Must stay well below the
    /// backups' request-patience and the client timeout.
    pub batch_flush: u64,
    /// Cycles a replica's egress port is occupied serializing each outgoing
    /// message (NoC packetization, header flits, MAC check-in). This is the
    /// per-message fixed cost that batching amortizes; 0 models infinite
    /// interface bandwidth (messages are free in virtual time).
    pub link_occupancy: u64,
    /// Requests each client keeps outstanding (clamped to ≥ 1). At 1 the
    /// client is strictly closed-loop: it waits for a reply quorum before
    /// issuing the next request. A window of `k` lets a client pipeline
    /// `k` requests, so a batching primary sees enough concurrent demand
    /// to actually fill `batch_size` slots without extra client tiles.
    pub client_window: usize,
    /// Cycles a backup waits for a pending request to commit before
    /// suspecting the primary (view-change trigger). Must exceed the
    /// steady-state tail commit latency: pipelined windows multiply the
    /// in-flight population, so deep windows need proportionally more
    /// patience or correct primaries get deposed in a permanent storm.
    pub request_patience: u64,
    /// Executed watermark units between certified checkpoints (agreement
    /// slots for PBFT/MinBFT, log entries for passive). 0 — the default —
    /// disables the checkpoint/state-transfer subsystem entirely and is
    /// byte-invisible: no checkpoint messages, timers, or RNG draws, so
    /// fault-free traces match the checkpoint-less build exactly.
    pub checkpoint_interval: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            f: 1,
            clients: 1,
            requests_per_client: 10,
            seed: 1,
            latency: LatencyModel::Uniform { min: 5, max: 15 },
            client_timeout: 4_000,
            max_cycles: 2_000_000,
            drop_rate: 0.0,
            payload_size: 16,
            batch_size: 1,
            batch_flush: 200,
            link_occupancy: 0,
            client_window: 1,
            request_patience: 1_500,
            checkpoint_interval: 0,
        }
    }
}

impl RunConfig {
    /// Starts a [`RunConfigBuilder`] seeded with the defaults documented
    /// on each setter.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder { config: RunConfig::default() }
    }
}

/// Builder-style construction of a [`RunConfig`].
///
/// Every setter overrides one documented default; `build()` never fails.
/// Experiments name only the knobs they vary:
///
/// ```
/// use rsoc_bft::runner::RunConfig;
///
/// let config = RunConfig::builder().f(2).clients(4).batch_size(8).build();
/// assert_eq!(config.requests_per_client, 10, "untouched knobs keep their defaults");
/// ```
///
/// The struct's fields stay public — literal construction and field
/// tweaks of an existing config remain possible — but harness call sites
/// go through the builder so adding a knob no longer churns every
/// experiment.
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    config: RunConfig,
}

impl RunConfigBuilder {
    /// Fault threshold; each protocol derives its replica count from this
    /// (PBFT: 3f+1, MinBFT: 2f+1, passive: 2). Default 1.
    pub fn f(mut self, f: u32) -> Self {
        self.config.f = f;
        self
    }

    /// Number of closed-loop clients. Default 1.
    pub fn clients(mut self, clients: u32) -> Self {
        self.config.clients = clients;
        self
    }

    /// Requests each client issues. Default 10.
    pub fn requests_per_client(mut self, requests: u64) -> Self {
        self.config.requests_per_client = requests;
        self
    }

    /// RNG seed (drives latencies and payloads). Default 1.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Message latency model. Default `Uniform { min: 5, max: 15 }`.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.latency = latency;
        self
    }

    /// Client retransmission timeout in cycles. Default 4_000.
    pub fn client_timeout(mut self, cycles: u64) -> Self {
        self.config.client_timeout = cycles;
        self
    }

    /// Hard stop for the run. Default 2_000_000 cycles.
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.config.max_cycles = cycles;
        self
    }

    /// Probability that any single replica→replica message is lost.
    /// Default 0.0.
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.config.drop_rate = rate;
        self
    }

    /// Payload bytes per request. Default 16.
    pub fn payload_size(mut self, bytes: usize) -> Self {
        self.config.payload_size = bytes;
        self
    }

    /// Maximum requests agreed on as one consensus unit (1 = unbatched).
    /// Default 1.
    pub fn batch_size(mut self, size: usize) -> Self {
        self.config.batch_size = size;
        self
    }

    /// Cycles a partially filled batch may wait before the primary
    /// flushes it anyway. Default 200.
    pub fn batch_flush(mut self, cycles: u64) -> Self {
        self.config.batch_flush = cycles;
        self
    }

    /// Cycles a replica's egress port is occupied per outgoing message
    /// (0 = infinite interface bandwidth). Default 0.
    pub fn link_occupancy(mut self, cycles: u64) -> Self {
        self.config.link_occupancy = cycles;
        self
    }

    /// Requests each client keeps outstanding (clamped to ≥ 1). Default 1
    /// (strictly closed-loop).
    pub fn client_window(mut self, window: usize) -> Self {
        self.config.client_window = window;
        self
    }

    /// Cycles a backup waits for a pending request to commit before
    /// suspecting the primary. Default 1_500.
    pub fn request_patience(mut self, cycles: u64) -> Self {
        self.config.request_patience = cycles;
        self
    }

    /// Executed watermark units between certified checkpoints (0 disables
    /// the checkpoint/state-transfer subsystem, byte-invisibly). Default 0.
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.config.checkpoint_interval = interval;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> RunConfig {
        self.config
    }
}

/// Outcome of one protocol run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Replica count used.
    pub n_replicas: usize,
    /// Operations acknowledged to clients (reply quorum reached).
    pub committed: u64,
    /// Operations requested in total.
    pub requested: u64,
    /// Client-observed commit latencies (cycles).
    pub commit_latency: Histogram,
    /// All messages sent (client + protocol + replies).
    pub messages_total: u64,
    /// Replica→replica protocol messages only.
    pub messages_protocol: u64,
    /// Client retransmissions observed.
    pub client_retries: u64,
    /// Whether all correct replicas' logs were prefix-compatible.
    pub safety_ok: bool,
    /// Virtual duration of the run.
    pub duration_cycles: u64,
    /// Batch size the run was configured with (for reports).
    pub batch_size: usize,
}

impl RunReport {
    /// Protocol messages per committed operation.
    pub fn messages_per_commit(&self) -> f64 {
        if self.committed == 0 {
            return f64::INFINITY;
        }
        self.messages_protocol as f64 / self.committed as f64
    }

    /// Committed operations per 1000 cycles.
    pub fn throughput_per_kcycle(&self) -> f64 {
        if self.duration_cycles == 0 {
            return 0.0;
        }
        self.committed as f64 * 1000.0 / self.duration_cycles as f64
    }
}

#[derive(Debug)]
enum Queued<M> {
    Deliver {
        from: Endpoint,
        to: Endpoint,
        msg: M,
    },
    ReplicaTimer {
        replica: ReplicaId,
        kind: u32,
        token: u64,
    },
    ClientTimer {
        client: ClientId,
        op_seq: u64,
    },
    /// Scenario: the next injection of flood `flood` (k requests sent so
    /// far). Never queued by the fault-free path.
    FloodTick {
        flood: u32,
        k: u64,
    },
    /// Scenario: the next stale-replay burst of `replica`'s schedule
    /// `spec` (k bursts injected so far).
    ReplayTick {
        replica: u32,
        spec: u32,
        k: u64,
    },
    /// Scenario: rejuvenate (wipe) `replica` — it re-joins through state
    /// transfer. Never queued by the fault-free path.
    RejuvTick {
        replica: u32,
    },
    /// Open-loop plane: the next workload arrival is due. Never queued by
    /// the closed-loop path; the generator state lives in
    /// [`run_open_loop`]'s locals, so the event carries nothing.
    Arrival,
}

/// Runtime state of one scenario interpretation: the dense per-replica
/// scripts, the replay recording rings, the dedicated fault RNG stream,
/// and the attack counters reported in [`ScenarioOutcome`].
struct FaultCtx<'a, M> {
    scenario: &'a Scenario,
    /// False for the empty scenario: every hook short-circuits on this.
    active: bool,
    /// Scenario randomness — a separate stream so the main RNG's draw
    /// sequence (and with it the whole fault-free trace) is untouched.
    rng: SimRng,
    /// Per-replica scripts, dense by id (unconstrained when unscripted).
    scripts: Vec<crate::adversary::ReplicaScript>,
    /// Per-replica recorded protocol sends for stale replay.
    recorded: Vec<Vec<(Endpoint, M)>>,
    flood_requests: u64,
    script_drops: u64,
    duplicates: u64,
    replays: u64,
    rejuvenations: u64,
}

impl<'a, M: Clone> FaultCtx<'a, M> {
    fn new(scenario: &'a Scenario, n: usize, seed: u64) -> Self {
        FaultCtx {
            scenario,
            active: !scenario.is_empty(),
            rng: SimRng::new(seed ^ 0xADD_FA017),
            scripts: (0..n as u32)
                .map(|i| scenario.script_for(i).cloned().unwrap_or_default())
                .collect(),
            recorded: (0..n).map(|_| Vec::new()).collect(),
            flood_requests: 0,
            script_drops: 0,
            duplicates: 0,
            replays: 0,
            rejuvenations: 0,
        }
    }

    /// Whether an active partition severs `a` from `b` at cycle `at`.
    fn severed(&self, at: u64, a: ReplicaId, b: ReplicaId) -> bool {
        self.scenario.partitions.iter().any(|p| {
            p.window.contains(at) && (p.members.contains(&a.0) != p.members.contains(&b.0))
        })
    }
}

/// Outcome of a scripted run: the plain report plus the scenario's attack
/// accounting (how much adversarial traffic the run actually absorbed —
/// a scenario that injected nothing proves nothing).
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The measured run report (workload clients only).
    pub report: RunReport,
    /// Flood requests injected by attacker clients.
    pub flood_requests: u64,
    /// Messages lost to partitions and link-fault drops.
    pub script_drops: u64,
    /// Extra copies injected by duplication windows.
    pub duplicates: u64,
    /// Stale messages re-injected by replay schedules.
    pub replays: u64,
    /// Rejuvenation wipes performed (leave/wipe/re-join cycles).
    pub rejuvenations: u64,
}

/// One in-flight client operation: the request (shared with every wire
/// copy, including retransmissions), when it was first sent
/// (retransmissions do not reset the latency clock), and the per-result
/// reply tally — a tiny linear-scan list (distinct results per op are
/// almost always 1) with voter *bitmasks*, so recording a reply allocates
/// nothing and shares the replica's result buffer.
struct PendingOp {
    request: Arc<Request>,
    sent_at: u64,
    replies: Vec<(Arc<Vec<u8>>, u64)>,
}

struct ClientState {
    id: ClientId,
    next_seq: u64,
    done: u64,
    target: u64,
    /// Maximum concurrently outstanding operations.
    window: usize,
    /// Outstanding operations keyed by client sequence number.
    pending: BTreeMap<u64, PendingOp>,
    retries: u64,
}

/// Runs `cluster` under `config`, returning the measured report.
///
/// Deterministic: identical `(cluster initial state, config)` gives an
/// identical report. Equivalent to [`run_scenario`] with the empty
/// [`Scenario`] — and bit-identical to the pre-scenario harness, because
/// every scenario hook short-circuits on an inactive context.
pub fn run<C: Cluster>(cluster: &mut C, config: &RunConfig) -> RunReport {
    run_scenario(cluster, config, &Scenario::none()).report
}

/// Runs `cluster` under `config` while interpreting `scenario`: replica
/// fault scripts are installed on the cluster, transport faults
/// (partitions, link degradation, send delay/duplication/reordering,
/// stale replay, DoS floods) are interpreted here, uniformly for every
/// protocol.
///
/// Scenario replica ids beyond the cluster size are ignored, so one
/// scenario can target protocols with different replica counts.
pub fn run_scenario<C: Cluster>(
    cluster: &mut C,
    config: &RunConfig,
    scenario: &Scenario,
) -> ScenarioOutcome {
    let n = cluster.nodes().len();
    for (r, s) in &scenario.replicas {
        if (*r as usize) < n {
            cluster.set_script(ReplicaId(*r), s.clone());
        }
    }
    let mut fault: FaultCtx<<C::Node as ReplicaNode>::Msg> =
        FaultCtx::new(scenario, n, config.seed);
    let mut rng = SimRng::new(config.seed ^ 0xB07_F00D);
    // Cycle-indexed wheel: O(1) push/pop, (time, push-order) pop order.
    let mut queue: TimingWheel<Queued<<C::Node as ReplicaNode>::Msg>> = TimingWheel::new();
    let mut now: u64 = 0;
    let mut egress_free: Vec<u64> = vec![0; n];

    let mut messages_total = 0u64;
    let mut messages_protocol = 0u64;
    let mut commit_latency = Histogram::new();
    let mut committed = 0u64;

    let mut clients: Vec<ClientState> = (0..config.clients)
        .map(|i| ClientState {
            id: ClientId(i),
            next_seq: 1,
            done: 0,
            target: config.requests_per_client,
            window: config.client_window.max(1),
            pending: BTreeMap::new(),
            retries: 0,
        })
        .collect();

    let quorum = cluster.reply_quorum();

    // One outbox reused for every delivered event: cleared (capacity
    // kept), so the steady state allocates nothing per event.
    let mut out: Outbox<<C::Node as ReplicaNode>::Msg> = Outbox::new();

    macro_rules! push_event {
        ($at:expr, $ev:expr) => {{
            queue.push($at, $ev);
        }};
    }

    // Drives one replica through one input via the sans-io boundary: a
    // fresh `SimPlane` borrows the routing state for the duration of the
    // dispatch (the wheel is borrowed through `$push`, so the plane is
    // rebuilt per event instead of held across `queue.pop()`).
    macro_rules! step_replica {
        ($r:expr, $input:expr, $now:expr, $push:expr) => {{
            let mut plane = SimPlane {
                config,
                rng: &mut rng,
                egress_free: &mut egress_free,
                messages_total: &mut messages_total,
                messages_protocol: &mut messages_protocol,
                fault: &mut fault,
                push: $push,
            };
            step_node(&mut cluster.nodes_mut()[$r.0 as usize], $input, $now, &mut out, &mut plane);
        }};
    }

    // Kick off: every client fills its pipeline window at time ~0.
    for client in clients.iter_mut() {
        let id = client.id;
        while let Some((op_seq, sends)) = client_issue::<C>(client, n, config, &mut rng, 0) {
            for (at, from, to, msg) in sends {
                messages_total += 1;
                push_event!(at, Queued::Deliver { from, to, msg });
            }
            push_event!(config.client_timeout, Queued::ClientTimer { client: id, op_seq });
        }
    }

    // Scenario kick-off: arm the first tick of every flood and replay
    // schedule. The empty scenario schedules nothing — the event stream
    // (and every wheel push sequence number) stays exactly the fault-free
    // one.
    if fault.active {
        for (i, f) in scenario.floods.iter().enumerate() {
            if let Some(at) = f.train().first() {
                push_event!(at, Queued::FloodTick { flood: i as u32, k: 0 });
            }
        }
        for (r, script) in fault.scripts.iter().enumerate() {
            for (si, spec) in script.replays().iter().enumerate() {
                if let Some(at) = spec.train().first() {
                    push_event!(
                        at,
                        Queued::ReplayTick { replica: r as u32, spec: si as u32, k: 0 }
                    );
                }
            }
            for &at in script.rejuvenations() {
                push_event!(at, Queued::RejuvTick { replica: r as u32 });
            }
        }
    }

    while let Some((at, ev)) = queue.pop() {
        if at > config.max_cycles {
            now = config.max_cycles;
            break;
        }
        now = at;
        match ev {
            Queued::Deliver { from, to, msg } => match to {
                Endpoint::Replica(r) => {
                    step_replica!(r, Input::Message { from, msg }, now, &mut |at, ev| {
                        queue.push(at, ev)
                    });
                }
                Endpoint::Client(c) => {
                    let Some(reply) = C::Node::as_reply(&msg) else { continue };
                    // Flood (attacker) clients have no state: replies to
                    // them fall outside the workload population.
                    let Some(client) = clients.get_mut(c.0 as usize) else { continue };
                    let Some(op) = client.pending.get_mut(&reply.op.seq) else { continue };
                    if reply.op != op.request.op {
                        continue;
                    }
                    let voters = match op.replies.iter_mut().find(|(r, _)| *r == reply.result) {
                        Some((_, v)) => v,
                        None => {
                            op.replies.push((reply.result.clone(), 0));
                            &mut op.replies.last_mut().expect("just pushed").1
                        }
                    };
                    *voters |= 1u64 << (reply.replica.0 & 63);
                    if voters.count_ones() as usize >= quorum {
                        committed += 1;
                        commit_latency.record((now - op.sent_at) as f64);
                        client.done += 1;
                        client.pending.remove(&reply.op.seq);
                        // A completed op frees one window slot: issue the
                        // next request immediately (the pipeline stays full
                        // until the target is exhausted).
                        if let Some((op_seq, sends)) =
                            client_issue::<C>(client, n, config, &mut rng, now)
                        {
                            for (at, from, to, msg) in sends {
                                messages_total += 1;
                                push_event!(at, Queued::Deliver { from, to, msg });
                            }
                            push_event!(
                                now + config.client_timeout,
                                Queued::ClientTimer { client: c, op_seq }
                            );
                        }
                    }
                }
            },
            Queued::ReplicaTimer { replica, kind, token } => {
                step_replica!(replica, Input::Timer { kind, token }, now, &mut |at, ev| {
                    queue.push(at, ev)
                });
            }
            Queued::ClientTimer { client, op_seq } => {
                let c = &mut clients[client.0 as usize];
                if let Some(op) = c.pending.get(&op_seq) {
                    c.retries += 1;
                    // Retransmissions reuse the op's one Arc'd request —
                    // a refcount bump per wire copy, no payload clone.
                    let req = op.request.clone();
                    for i in 0..n {
                        let delay = config.latency.sample(
                            Endpoint::Client(client),
                            Endpoint::Replica(ReplicaId(i as u32)),
                            &mut rng,
                        );
                        messages_total += 1;
                        push_event!(
                            now + delay,
                            Queued::Deliver {
                                from: Endpoint::Client(client),
                                to: Endpoint::Replica(ReplicaId(i as u32)),
                                msg: C::Node::make_request(req.clone()),
                            }
                        );
                    }
                    push_event!(
                        now + config.client_timeout,
                        Queued::ClientTimer { client, op_seq }
                    );
                }
            }
            Queued::FloodTick { flood, k } => {
                let f = fault.scenario.floods[flood as usize];
                if f.window.contains(now) {
                    // A well-formed request from a non-workload client id:
                    // replicas order and execute it like any other (that is
                    // the attack — it consumes agreement and egress
                    // capacity), but no reply quorum is tallied for it.
                    let seq = k + 1;
                    let client = ClientId(config.clients + flood);
                    let text = format!("SET f{flood}.{seq} v{seq}");
                    let mut payload = text.into_bytes();
                    payload.resize(payload.len().max(f.payload_size), b'_');
                    let req = Arc::new(Request { op: OpId { client, seq }, payload });
                    for i in 0..n {
                        let to = Endpoint::Replica(ReplicaId(i as u32));
                        let delay =
                            config.latency.sample(Endpoint::Client(client), to, &mut fault.rng);
                        messages_total += 1;
                        push_event!(
                            now + delay,
                            Queued::Deliver {
                                from: Endpoint::Client(client),
                                to,
                                msg: C::Node::make_request(req.clone()),
                            }
                        );
                    }
                    fault.flood_requests += 1;
                    if let Some(next) = f.train().next_after(now) {
                        push_event!(next, Queued::FloodTick { flood, k: seq });
                    }
                }
            }
            Queued::ReplayTick { replica, spec, k } => {
                let s = fault.scripts[replica as usize].replays()[spec as usize];
                if s.window.contains(now) {
                    let burst = s.burst.max(1);
                    let rec_len = fault.recorded[replica as usize].len();
                    let from = Endpoint::Replica(ReplicaId(replica));
                    // Cycle through the recorded ring, oldest first: stale
                    // views, consumed USIG counters, and already-applied
                    // state updates come back from the network's past.
                    for j in 0..burst.min(rec_len) {
                        let idx = (k as usize * burst + j) % rec_len;
                        let (to, msg) = fault.recorded[replica as usize][idx].clone();
                        let delay = config.latency.sample(from, to, &mut fault.rng);
                        messages_total += 1;
                        if matches!(to, Endpoint::Replica(_)) {
                            messages_protocol += 1;
                        }
                        fault.replays += 1;
                        push_event!(now + delay, Queued::Deliver { from, to, msg });
                    }
                    if let Some(next) = s.train().next_after(now) {
                        push_event!(next, Queued::ReplayTick { replica, spec, k: k + 1 });
                    }
                }
            }
            Queued::RejuvTick { replica } => {
                // Leave/wipe/re-join: all volatile state goes; the replica
                // discovers it is behind (its kept stable certificate, or a
                // peer's next checkpoint/view-change) and re-joins through
                // state transfer.
                cluster.nodes_mut()[replica as usize].wipe();
                fault.rejuvenations += 1;
            }
            // Open-loop plane event: never queued by the closed-loop path.
            Queued::Arrival => {}
        }
        // Early exit when all clients have finished.
        if clients.iter().all(|c| c.done >= c.target) {
            break;
        }
    }

    // Quiesce: the workload is over, but messages already in flight (e.g.
    // the final state update or commit round) still reach their replicas,
    // as do the cascades they trigger. Timers are dropped — no new
    // workload can start — and `now` stays frozen at the break point so
    // throughput is measured over the active phase only. Bounded because
    // without timers every protocol's message cascades are finite.
    if clients.iter().all(|c| c.done >= c.target) {
        let mut drained = 0u64;
        while let Some((at, ev)) = queue.pop() {
            if at > config.max_cycles || drained > 5_000_000 {
                break;
            }
            drained += 1;
            let Queued::Deliver { from, to: Endpoint::Replica(r), msg } = ev else { continue };
            step_replica!(r, Input::Message { from, msg }, at, &mut |at2, ev| {
                // Deliveries keep flowing; timers die with the run.
                if matches!(ev, Queued::Deliver { .. }) {
                    queue.push(at2, ev);
                }
            });
        }
    }

    let requested: u64 = clients.iter().map(|c| c.done + c.pending.len() as u64).sum();
    let retries = clients.iter().map(|c| c.retries).sum();
    let safety_ok = check_safety(cluster);

    ScenarioOutcome {
        report: RunReport {
            protocol: cluster.protocol_name(),
            n_replicas: n,
            committed,
            requested,
            commit_latency,
            messages_total,
            messages_protocol,
            client_retries: retries,
            safety_ok,
            duration_cycles: now,
            batch_size: config.batch_size,
        },
        flood_requests: fault.flood_requests,
        script_drops: fault.script_drops,
        duplicates: fault.duplicates,
        replays: fault.replays,
        rejuvenations: fault.rejuvenations,
    }
}

/// Issues the next request for `client`, if the target is not exhausted
/// and the pipeline window has a free slot. Returns the issued client
/// sequence number and the scheduled send tuples.
#[allow(clippy::type_complexity)]
fn client_issue<C: Cluster>(
    client: &mut ClientState,
    n: usize,
    config: &RunConfig,
    rng: &mut SimRng,
    now: u64,
) -> Option<(u64, Vec<(u64, Endpoint, Endpoint, <C::Node as ReplicaNode>::Msg)>)> {
    let issued = client.next_seq - 1;
    if issued >= client.target || client.pending.len() >= client.window {
        return None;
    }
    let seq = client.next_seq;
    client.next_seq += 1;
    let client_id = client.id;
    let payload = client_payload(config.seed, client_id.0, seq, config.payload_size);

    // The op's single allocation: every wire copy below (and every later
    // retransmission) shares this Arc.
    let req = Arc::new(Request { op: OpId { client: client_id, seq }, payload });
    client
        .pending
        .insert(seq, PendingOp { request: req.clone(), sent_at: now, replies: Vec::new() });

    let sends = (0..n)
        .map(|i| {
            let to = Endpoint::Replica(ReplicaId(i as u32));
            let delay = config.latency.sample(Endpoint::Client(client_id), to, rng);
            (now + delay, Endpoint::Client(client_id), to, C::Node::make_request(req.clone()))
        })
        .collect();
    Some((seq, sends))
}

/// The deterministic payload of request `(client, seq)` under `seed` — a
/// pure function of the request's *identity*, shared by the simulator's
/// clients and the real-transport client driver (`rsoc-client`). Feeding
/// both planes the same `(seed, clients, requests, payload_size)` makes
/// them execute the identical request log, which is what lets a TCP
/// cluster's state digests be checked against a simulator run.
///
/// Filler bytes come from a PRNG keyed by `(seed, client, seq)`, NOT any
/// shared run RNG: runs that interleave differently (batched vs
/// unbatched, different latency models, real sockets) still execute
/// identical commands. The printable `SET k{client}.{seq} v{seq}` prefix
/// makes state machines do real work, and each op writing its own key
/// keeps the final KV state a pure function of the op *set*, independent
/// of commit order.
pub fn client_payload(seed: u64, client: u32, seq: u64, payload_size: usize) -> Vec<u8> {
    let mut payload_rng =
        SimRng::new(seed ^ ((client as u64 + 1) << 40) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut payload = vec![0u8; payload_size];
    for b in payload.iter_mut() {
        *b = payload_rng.next_u32() as u8;
    }
    let text = format!("SET k{client}.{seq} v{seq}");
    let tlen = text.len().min(payload.len().max(text.len()));
    payload.resize(tlen.max(payload_size), b'_');
    let copy_len = text.len().min(payload.len());
    payload[..copy_len].copy_from_slice(&text.as_bytes()[..copy_len]);
    payload
}

// ------------------------------------------------------------- open loop

/// Users per page of the dense per-user sequence table.
const USER_PAGE: usize = 4096;

/// Dense per-user sequence counters, paged so a million-user population
/// costs memory proportional to the pages actually *touched* — no
/// per-user allocation, no hashing on the arrival hot path. A `u32`
/// per user bounds each user at 2^32 ops, far beyond any finite run.
struct UserTable {
    pages: Vec<Option<Box<[u32; USER_PAGE]>>>,
    /// Users that have issued at least one op.
    distinct: u64,
}

impl UserTable {
    fn new(users: u32) -> Self {
        let n_pages = (users.max(1) as usize).div_ceil(USER_PAGE);
        UserTable { pages: (0..n_pages).map(|_| None).collect(), distinct: 0 }
    }

    /// Bumps and returns user `u`'s next 1-based sequence number.
    fn bump(&mut self, u: u32) -> u64 {
        let (p, i) = (u as usize / USER_PAGE, u as usize % USER_PAGE);
        let page = self.pages[p].get_or_insert_with(|| Box::new([0u32; USER_PAGE]));
        page[i] += 1;
        if page[i] == 1 {
            self.distinct += 1;
        }
        page[i] as u64
    }
}

/// The open-loop workload: an arrival process (modulated by rate
/// envelopes) decides *when* ops are injected, a key distribution decides
/// *which user* issues each one. Unlike the closed-loop clients, arrivals
/// never wait for replies — a saturated cluster accumulates in-flight ops
/// instead of back-pressuring the generator, which is what exposes
/// queueing-delay tails (and long-run state like the MinBFT resend ring)
/// that a closed loop structurally cannot reach.
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// Inter-arrival process.
    pub arrival: Arrival,
    /// Rate envelopes composed on top of `arrival` (diurnal ramps, flash
    /// crowds). Empty = the bare process.
    pub mods: Vec<RateMod>,
    /// User-identity distribution: its keyspace is the client population,
    /// its shape the access skew (hot users issue more traffic).
    pub users: KeyDist,
    /// Total ops to inject; the run ends when all are committed (or
    /// `max_cycles` strikes).
    pub total_ops: u64,
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Replica count used.
    pub n_replicas: usize,
    /// Ops injected by the arrival process.
    pub issued: u64,
    /// Ops acknowledged (reply quorum reached).
    pub committed: u64,
    /// Users that issued at least one op.
    pub distinct_users: u64,
    /// Commit latencies in virtual cycles, log-bucketed and mergeable.
    pub latency: LogHistogram,
    /// All messages sent (client + protocol + replies).
    pub messages_total: u64,
    /// Replica→replica protocol messages only.
    pub messages_protocol: u64,
    /// Client retransmissions observed.
    pub retries: u64,
    /// Whether all correct replicas' logs were prefix-compatible.
    pub safety_ok: bool,
    /// Virtual duration of the run.
    pub duration_cycles: u64,
    /// Batch size the run was configured with (for reports).
    pub batch_size: usize,
}

/// Runs `cluster` under an open-loop workload, optionally scripted by
/// `scenario`. Deterministic for identical `(cluster, config, spec,
/// scenario)` — the workload draws from its own RNG streams
/// (`seed ^ 0x0A22_17A1`), so the arrival schedule and user sequence are
/// invariant across protocols and batch sizes.
///
/// Scenario support covers replica scripts (crash/silence/content
/// attacks, rejuvenation), partitions, and link faults. Flood and replay
/// schedules are closed-loop-plane constructs and are not interpreted
/// here (the open loop *is* the traffic source).
pub fn run_open_loop<C: Cluster>(
    cluster: &mut C,
    config: &RunConfig,
    spec: &OpenLoopSpec,
    scenario: &Scenario,
) -> OpenLoopReport {
    let n = cluster.nodes().len();
    for (r, s) in &scenario.replicas {
        if (*r as usize) < n {
            cluster.set_script(ReplicaId(*r), s.clone());
        }
    }
    let mut fault: FaultCtx<<C::Node as ReplicaNode>::Msg> =
        FaultCtx::new(scenario, n, config.seed);
    let mut rng = SimRng::new(config.seed ^ 0xB07_F00D);
    // Dedicated workload streams: other subsystems' draws (latencies,
    // faults) never perturb the arrival schedule or the user sequence.
    let workload_rng = SimRng::new(config.seed ^ 0x0A22_17A1);
    let mut arrivals = ArrivalGen::new(spec.arrival, spec.mods.clone(), workload_rng.fork(0));
    let mut pick_rng = workload_rng.fork(1);
    let picker = KeyPicker::new(spec.users);
    let mut table = UserTable::new(picker.keyspace());

    let mut queue: TimingWheel<Queued<<C::Node as ReplicaNode>::Msg>> = TimingWheel::new();
    let mut now: u64 = 0;
    let mut egress_free: Vec<u64> = vec![0; n];

    let mut messages_total = 0u64;
    let mut messages_protocol = 0u64;
    let mut latency = LogHistogram::new();
    let mut committed = 0u64;
    let mut issued = 0u64;
    let mut retries = 0u64;

    // In-flight ops, keyed sparsely by identity: a hot user may have many
    // ops outstanding at once, and a million-user population must not pay
    // per-user state for the idle majority.
    let mut pending: crate::dense::OpIndex<PendingOp> = crate::dense::OpIndex::new();

    let quorum = cluster.reply_quorum();
    let mut out: Outbox<<C::Node as ReplicaNode>::Msg> = Outbox::new();

    macro_rules! push_event {
        ($at:expr, $ev:expr) => {{
            queue.push($at, $ev);
        }};
    }

    macro_rules! step_replica {
        ($r:expr, $input:expr, $now:expr, $push:expr) => {{
            let mut plane = SimPlane {
                config,
                rng: &mut rng,
                egress_free: &mut egress_free,
                messages_total: &mut messages_total,
                messages_protocol: &mut messages_protocol,
                fault: &mut fault,
                push: $push,
            };
            step_node(&mut cluster.nodes_mut()[$r.0 as usize], $input, $now, &mut out, &mut plane);
        }};
    }

    // Fan one wire copy of `req` to every replica, latency-sampled.
    macro_rules! broadcast_request {
        ($req:expr, $client:expr, $now:expr) => {{
            for i in 0..n {
                let to = Endpoint::Replica(ReplicaId(i as u32));
                let delay = config.latency.sample(Endpoint::Client($client), to, &mut rng);
                messages_total += 1;
                push_event!(
                    $now + delay,
                    Queued::Deliver {
                        from: Endpoint::Client($client),
                        to,
                        msg: C::Node::make_request($req.clone()),
                    }
                );
            }
        }};
    }

    if spec.total_ops > 0 {
        push_event!(arrivals.next_arrival(), Queued::Arrival);
    }
    if fault.active {
        for (r, script) in fault.scripts.iter().enumerate() {
            for &at in script.rejuvenations() {
                push_event!(at, Queued::RejuvTick { replica: r as u32 });
            }
        }
    }

    while let Some((at, ev)) = queue.pop() {
        if at > config.max_cycles {
            now = config.max_cycles;
            break;
        }
        now = at;
        match ev {
            Queued::Arrival => {
                let user = picker.pick(&mut pick_rng);
                let seq = table.bump(user);
                let client = ClientId(user);
                let op = OpId { client, seq };
                let payload = client_payload(config.seed, user, seq, config.payload_size);
                let req = Arc::new(Request { op, payload });
                pending.insert(
                    op,
                    PendingOp { request: req.clone(), sent_at: now, replies: Vec::new() },
                );
                issued += 1;
                broadcast_request!(req, client, now);
                push_event!(
                    now + config.client_timeout,
                    Queued::ClientTimer { client, op_seq: seq }
                );
                if issued < spec.total_ops {
                    // Absolute times: the generator's clock *is* the
                    // arrival schedule, strictly increasing past `now`.
                    push_event!(arrivals.next_arrival(), Queued::Arrival);
                }
            }
            Queued::Deliver { from, to, msg } => match to {
                Endpoint::Replica(r) => {
                    step_replica!(r, Input::Message { from, msg }, now, &mut |at, ev| {
                        queue.push(at, ev)
                    });
                }
                Endpoint::Client(c) => {
                    let Some(reply) = C::Node::as_reply(&msg) else { continue };
                    if reply.op.client != c {
                        continue;
                    }
                    let Some(op) = pending.get_mut(&reply.op) else { continue };
                    let voters = match op.replies.iter_mut().find(|(r, _)| *r == reply.result) {
                        Some((_, v)) => v,
                        None => {
                            op.replies.push((reply.result.clone(), 0));
                            &mut op.replies.last_mut().expect("just pushed").1
                        }
                    };
                    *voters |= 1u64 << (reply.replica.0 & 63);
                    if voters.count_ones() as usize >= quorum {
                        committed += 1;
                        latency.record(now - op.sent_at);
                        pending.remove(&reply.op);
                    }
                }
            },
            Queued::ReplicaTimer { replica, kind, token } => {
                step_replica!(replica, Input::Timer { kind, token }, now, &mut |at, ev| {
                    queue.push(at, ev)
                });
            }
            Queued::ClientTimer { client, op_seq } => {
                let op = OpId { client, seq: op_seq };
                if let Some(p) = pending.get(&op) {
                    retries += 1;
                    let req = p.request.clone();
                    broadcast_request!(req, client, now);
                    push_event!(
                        now + config.client_timeout,
                        Queued::ClientTimer { client, op_seq }
                    );
                }
            }
            Queued::RejuvTick { replica } => {
                cluster.nodes_mut()[replica as usize].wipe();
                fault.rejuvenations += 1;
            }
            // Closed-loop-plane scenario events: never scheduled here.
            Queued::FloodTick { .. } | Queued::ReplayTick { .. } => {}
        }
        if issued >= spec.total_ops && pending.is_empty() {
            break;
        }
    }

    // Quiesce: drain in-flight deliveries (and the cascades they trigger)
    // so checkpoint/state-transfer exchanges settle before the safety
    // check; timers die with the run. Same bound as the closed loop.
    if issued >= spec.total_ops && pending.is_empty() {
        let mut drained = 0u64;
        while let Some((at, ev)) = queue.pop() {
            if at > config.max_cycles || drained > 5_000_000 {
                break;
            }
            drained += 1;
            let Queued::Deliver { from, to: Endpoint::Replica(r), msg } = ev else { continue };
            step_replica!(r, Input::Message { from, msg }, at, &mut |at2, ev| {
                if matches!(ev, Queued::Deliver { .. }) {
                    queue.push(at2, ev);
                }
            });
        }
    }

    OpenLoopReport {
        protocol: cluster.protocol_name(),
        n_replicas: n,
        issued,
        committed,
        distinct_users: table.distinct,
        latency,
        messages_total,
        messages_protocol,
        retries,
        safety_ok: check_safety(cluster),
        duration_cycles: now,
        batch_size: config.batch_size,
    }
}

/// The simulator's side of the sans-io boundary: the first (and
/// reference) [`Transport`] implementation. It owns delivery — latency
/// sampling, egress serialization, baseline loss, and every scripted
/// transport fault — and timer scheduling, pushing both back into the
/// run's [`TimingWheel`] through `push`.
///
/// A `SimPlane` is rebuilt per dispatched event (it borrows the routing
/// state, and the wheel itself is borrowed through the closure), which
/// keeps the carve-out byte-identical: the operation and RNG-draw order
/// is exactly the pre-trait harness's.
struct SimPlane<'a, 'b, M> {
    config: &'a RunConfig,
    rng: &'a mut SimRng,
    egress_free: &'a mut [u64],
    messages_total: &'a mut u64,
    messages_protocol: &'a mut u64,
    fault: &'a mut FaultCtx<'b, M>,
    push: &'a mut dyn FnMut(u64, Queued<M>),
}

impl<M: Clone> Transport<M> for SimPlane<'_, '_, M> {
    fn dispatch(&mut self, from: ReplicaId, out: &mut Outbox<M>, now: u64) {
        // A reorder window flips the departure order of this whole burst —
        // later-queued messages grab the egress port (and their latency
        // samples) first. Only taken when a scenario scripts it.
        if self.fault.active && self.fault.scripts[from.0 as usize].reorders_at(now) {
            let mut msgs: Vec<_> = out.msgs.drain(..).collect();
            msgs.reverse();
            for (to, msg) in msgs {
                self.route_one(from, to, msg, now);
            }
        } else {
            for (to, msg) in out.msgs.drain(..) {
                self.route_one(from, to, msg, now);
            }
        }
        for (delay, kind, token) in out.timers.drain(..) {
            (self.push)(now + delay, Queued::ReplicaTimer { replica: from, kind, token });
        }
    }
}

impl<M: Clone> SimPlane<'_, '_, M> {
    /// Routes one outgoing message: egress serialization, baseline loss,
    /// then — only under an active scenario — partition severing,
    /// link-fault drop/delay, per-replica send delay, duplication, and
    /// replay recording. The fault-free tail is exactly the pre-scenario
    /// harness (same main-RNG draws in the same order).
    fn route_one(&mut self, from: ReplicaId, to: Endpoint, msg: M, now: u64) {
        let config = self.config;
        // Sender-side serialization: each message occupies the replica's
        // egress port for `link_occupancy` cycles, so a burst departs
        // back-to-back rather than simultaneously. This charges the
        // per-message fixed cost that batching amortizes; lost messages
        // still occupy the port (they were physically sent).
        let depart = if config.link_occupancy > 0 {
            let free = self.egress_free[from.0 as usize].max(now) + config.link_occupancy;
            self.egress_free[from.0 as usize] = free;
            free
        } else {
            now
        };
        if let Endpoint::Replica(_) = to {
            *self.messages_protocol += 1;
            if self.rng.chance(config.drop_rate) {
                *self.messages_total += 1; // sent but lost
                return;
            }
        }
        if self.fault.active {
            let script = &self.fault.scripts[from.0 as usize];
            // Record protocol sends for stale-replay schedules (oldest kept).
            if !script.replays().is_empty()
                && matches!(to, Endpoint::Replica(_))
                && self.fault.recorded[from.0 as usize].len() < REPLAY_RECORD_CAP
            {
                self.fault.recorded[from.0 as usize].push((to, msg.clone()));
            }
            // Partition severing, judged at departure time: the message was
            // sent (and charged) but never crosses the boundary.
            if let Endpoint::Replica(dst) = to {
                if self.fault.severed(depart, from, dst) {
                    self.fault.script_drops += 1;
                    *self.messages_total += 1;
                    return;
                }
            }
            // Link faults: probabilistic drops plus fixed extra delay on
            // matching (source, dest) pairs. All randomness from the fault
            // stream — the main RNG's draw order is scenario-independent.
            let mut extra = script.send_delay_at(now);
            let duplicate = script.duplicates_at(now);
            for l in &self.fault.scenario.links {
                let src_match = l.source.is_none_or(|s| s == from.0);
                let dst_match = match (l.dest, to) {
                    (None, _) => true,
                    (Some(d), Endpoint::Replica(r)) => d == r.0,
                    (Some(_), Endpoint::Client(_)) => false,
                };
                if src_match && dst_match && l.window.contains(depart) {
                    if l.drop_rate > 0.0 && self.fault.rng.chance(l.drop_rate) {
                        self.fault.script_drops += 1;
                        *self.messages_total += 1;
                        return;
                    }
                    extra += l.extra_delay;
                }
            }
            *self.messages_total += 1;
            let delay = config.latency.sample(Endpoint::Replica(from), to, self.rng);
            (self.push)(
                depart + delay + extra,
                Queued::Deliver { from: Endpoint::Replica(from), to, msg: msg.clone() },
            );
            if duplicate {
                // The copy takes its own (fault-stream) latency draw: the
                // two arrivals interleave arbitrarily with other traffic.
                let dup_delay =
                    config.latency.sample(Endpoint::Replica(from), to, &mut self.fault.rng);
                *self.messages_total += 1;
                if matches!(to, Endpoint::Replica(_)) {
                    *self.messages_protocol += 1;
                }
                self.fault.duplicates += 1;
                (self.push)(
                    depart + dup_delay + extra,
                    Queued::Deliver { from: Endpoint::Replica(from), to, msg },
                );
            }
            return;
        }
        *self.messages_total += 1;
        let delay = config.latency.sample(Endpoint::Replica(from), to, self.rng);
        (self.push)(depart + delay, Queued::Deliver { from: Endpoint::Replica(from), to, msg });
    }
}

/// Checks that all correct replicas' committed logs agree: for every pair,
/// entries at the same sequence number have the same op and digest (prefix
/// compatibility — one replica may simply be behind). Comparison is
/// **sequence-aligned**, not index-aligned: with checkpointing enabled a
/// log is a contiguous suffix of history (truncated below the stable
/// watermark, at possibly different watermarks per replica), so only the
/// overlap of the retained ranges is comparable.
pub fn check_safety<C: Cluster>(cluster: &C) -> bool {
    let correct = cluster.correct_replicas();
    for (i, &a) in correct.iter().enumerate() {
        for &b in &correct[i + 1..] {
            let la = cluster.nodes()[a.0 as usize].committed_log();
            let lb = cluster.nodes()[b.0 as usize].committed_log();
            let (Some(fa), Some(fb)) = (la.first(), lb.first()) else { continue };
            // Retained entries are dense in seq, so the overlap range maps
            // to index offsets directly.
            let lo = fa.seq.max(fb.seq);
            let hi = (fa.seq + la.len() as u64 - 1).min(fb.seq + lb.len() as u64 - 1);
            for seq in lo..=hi {
                // bounds: lo..=hi is the intersection of both retained ranges
                let ea = &la[(seq - fa.seq) as usize];
                // bounds: lo..=hi is the intersection of both retained ranges
                let eb = &lb[(seq - fb.seq) as usize];
                if ea.seq != eb.seq || ea.op != eb.op || ea.digest != eb.digest {
                    return false;
                }
            }
        }
    }
    true
}
