//! Deterministic state machines replicated by the protocols.
//!
//! The paper's SMR claims are payload-agnostic; these machines give the
//! examples and experiments realistic commands (a key-value store for
//! generic services, a counter for quick tests, and an actuator-command
//! arbiter for the automotive scenario).

use std::collections::BTreeMap;

/// A deterministic state machine: same command sequence → same results.
pub trait StateMachine: std::fmt::Debug {
    /// Applies a command, returning its result. Must be deterministic.
    fn apply(&mut self, command: &[u8]) -> Vec<u8>;

    /// A digest of current state (for divergence checks in tests).
    fn state_digest(&self) -> [u8; 32];
}

/// A simple ordered key-value store.
///
/// Wire format (text, for debuggability):
/// `SET key value` | `GET key` | `DEL key`.
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Serializes the store for state transfer. The framing is **exactly**
    /// the byte stream [`state_digest`](StateMachine::state_digest) hashes
    /// (length-framed `(key, value)` pairs in `BTreeMap` order), so
    /// `sha256(snapshot) == state_digest()` — a checkpoint certificate
    /// over the digest certifies the snapshot bytes directly, with no
    /// second serialization format to keep in sync.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (k, v) in &self.map {
            bytes.extend_from_slice(&(k.len() as u64).to_le_bytes());
            bytes.extend_from_slice(k);
            bytes.extend_from_slice(&(v.len() as u64).to_le_bytes());
            bytes.extend_from_slice(v);
        }
        bytes
    }

    // lint: ingress
    /// Parses a transferred snapshot (adversarial input: the bytes come
    /// from a peer). Returns `None` for any malformed framing — truncated
    /// lengths, trailing bytes, or keys out of order (order is part of the
    /// digest contract, so an honest snapshot is always sorted).
    pub fn install_snapshot(bytes: &[u8]) -> Option<KvStore> {
        let mut map = BTreeMap::new();
        let mut at = 0usize;
        let mut prev_key: Option<Vec<u8>> = None;
        let read_chunk = |at: &mut usize| -> Option<Vec<u8>> {
            let len_end = at.checked_add(8)?;
            let len_bytes = bytes.get(*at..len_end)?;
            // lint: allow(ingress-expect) -- get() above proved the slice is 8 bytes
            let len = u64::from_le_bytes(len_bytes.try_into().expect("8-byte slice"));
            let len = usize::try_from(len).ok()?;
            let end = len_end.checked_add(len)?;
            let chunk = bytes.get(len_end..end)?.to_vec();
            *at = end;
            Some(chunk)
        };
        while at < bytes.len() {
            let key = read_chunk(&mut at)?;
            let value = read_chunk(&mut at)?;
            if let Some(prev) = &prev_key {
                if *prev >= key {
                    return None; // unsorted or duplicate: not digest framing
                }
            }
            prev_key = Some(key.clone());
            map.insert(key, value);
        }
        Some(KvStore { map })
    }
    // lint: end
}

impl StateMachine for KvStore {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        let parts: Vec<&[u8]> = command.splitn(3, |b| *b == b' ').collect();
        match parts.as_slice() {
            [op, key, value] if *op == b"SET" => {
                let old = self.map.insert(key.to_vec(), value.to_vec());
                old.unwrap_or_else(|| b"(nil)".to_vec())
            }
            [op, key] if *op == b"GET" => {
                self.map.get(*key).cloned().unwrap_or_else(|| b"(nil)".to_vec())
            }
            [op, key] if *op == b"DEL" => match self.map.remove(*key) {
                Some(_) => b"1".to_vec(),
                None => b"0".to_vec(),
            },
            _ => b"ERR".to_vec(),
        }
    }

    fn state_digest(&self) -> [u8; 32] {
        let mut h = rsoc_crypto::Sha256::new();
        for (k, v) in &self.map {
            h.update(&(k.len() as u64).to_le_bytes());
            h.update(k);
            h.update(&(v.len() as u64).to_le_bytes());
            h.update(v);
        }
        h.finalize()
    }
}

/// A saturating counter machine: `ADD n` / `READ`.
#[derive(Debug, Clone, Default)]
pub struct CounterMachine {
    value: u64,
}

impl CounterMachine {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        CounterMachine::default()
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl StateMachine for CounterMachine {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        let text = std::str::from_utf8(command).unwrap_or("");
        if let Some(rest) = text.strip_prefix("ADD ") {
            if let Ok(n) = rest.trim().parse::<u64>() {
                self.value = self.value.saturating_add(n);
                return self.value.to_string().into_bytes();
            }
        } else if text == "READ" {
            return self.value.to_string().into_bytes();
        }
        b"ERR".to_vec()
    }

    fn state_digest(&self) -> [u8; 32] {
        rsoc_crypto::sha256(&self.value.to_le_bytes())
    }
}

/// Actuator-command arbiter for the automotive example: keeps the latest
/// command per actuator and rejects stale timestamps (`CMD actuator ts value`).
#[derive(Debug, Clone, Default)]
pub struct ActuatorArbiter {
    latest: BTreeMap<String, (u64, String)>,
}

impl ActuatorArbiter {
    /// Creates an empty arbiter.
    pub fn new() -> Self {
        ActuatorArbiter::default()
    }

    /// Latest accepted (timestamp, value) for an actuator.
    pub fn current(&self, actuator: &str) -> Option<&(u64, String)> {
        self.latest.get(actuator)
    }
}

impl StateMachine for ActuatorArbiter {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        let text = match std::str::from_utf8(command) {
            Ok(t) => t,
            Err(_) => return b"ERR".to_vec(),
        };
        let mut it = text.split(' ');
        match (it.next(), it.next(), it.next(), it.next()) {
            (Some("CMD"), Some(act), Some(ts), Some(value)) => {
                let Ok(ts) = ts.parse::<u64>() else { return b"ERR".to_vec() };
                match self.latest.get(act) {
                    Some((cur, _)) if *cur >= ts => b"STALE".to_vec(),
                    _ => {
                        self.latest.insert(act.to_string(), (ts, value.to_string()));
                        b"OK".to_vec()
                    }
                }
            }
            _ => b"ERR".to_vec(),
        }
    }

    fn state_digest(&self) -> [u8; 32] {
        let mut h = rsoc_crypto::Sha256::new();
        for (k, (ts, v)) in &self.latest {
            h.update(k.as_bytes());
            h.update(&ts.to_le_bytes());
            h.update(v.as_bytes());
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_set_get_del() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(b"GET x"), b"(nil)");
        assert_eq!(kv.apply(b"SET x 42"), b"(nil)");
        assert_eq!(kv.apply(b"GET x"), b"42");
        assert_eq!(kv.apply(b"SET x 43"), b"42");
        assert_eq!(kv.apply(b"DEL x"), b"1");
        assert_eq!(kv.apply(b"DEL x"), b"0");
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_values_may_contain_spaces() {
        let mut kv = KvStore::new();
        kv.apply(b"SET msg hello world");
        assert_eq!(kv.apply(b"GET msg"), b"hello world");
    }

    #[test]
    fn kv_bad_commands_err() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(b"FROB x"), b"ERR");
        assert_eq!(kv.apply(b""), b"ERR");
    }

    #[test]
    fn determinism_and_digest() {
        let commands: &[&[u8]] = &[b"SET a 1", b"SET b 2", b"DEL a", b"SET c 3"];
        let mut kv1 = KvStore::new();
        let mut kv2 = KvStore::new();
        for c in commands {
            assert_eq!(kv1.apply(c), kv2.apply(c));
        }
        assert_eq!(kv1.state_digest(), kv2.state_digest());
        kv2.apply(b"SET d 4");
        assert_ne!(kv1.state_digest(), kv2.state_digest());
    }

    #[test]
    fn snapshot_roundtrips_and_matches_the_digest() {
        let mut kv = KvStore::new();
        kv.apply(b"SET a 1");
        kv.apply(b"SET msg hello world");
        kv.apply(b"SET b 2");
        kv.apply(b"DEL a");
        let snap = kv.snapshot();
        // The snapshot IS the digest pre-image: a certificate over the
        // state digest certifies the snapshot bytes.
        assert_eq!(rsoc_crypto::sha256(&snap), kv.state_digest());
        let restored = KvStore::install_snapshot(&snap).expect("well-formed");
        assert_eq!(restored.state_digest(), kv.state_digest());
        assert_eq!(restored.len(), kv.len());
        // Empty store: empty snapshot, still round-trips.
        let empty = KvStore::new();
        assert_eq!(empty.snapshot(), Vec::<u8>::new());
        assert!(KvStore::install_snapshot(&[]).is_some());
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        let mut kv = KvStore::new();
        kv.apply(b"SET a 1");
        kv.apply(b"SET b 2");
        let snap = kv.snapshot();
        assert!(KvStore::install_snapshot(&snap[..snap.len() - 1]).is_none(), "truncated value");
        assert!(KvStore::install_snapshot(&snap[..9]).is_none(), "truncated key length");
        let mut trailing = snap.clone();
        trailing.push(0);
        assert!(KvStore::install_snapshot(&trailing).is_none(), "trailing bytes");
        let mut absurd = snap.clone();
        absurd[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(KvStore::install_snapshot(&absurd).is_none(), "absurd length field");
        // Out-of-order pairs can't have come from digest framing.
        let mut unsorted = Vec::new();
        for key in [b"b", b"a"] {
            unsorted.extend_from_slice(&1u64.to_le_bytes());
            unsorted.extend_from_slice(key);
            unsorted.extend_from_slice(&1u64.to_le_bytes());
            unsorted.extend_from_slice(b"x");
        }
        assert!(KvStore::install_snapshot(&unsorted).is_none(), "unsorted keys");
    }

    #[test]
    fn counter_machine() {
        let mut c = CounterMachine::new();
        assert_eq!(c.apply(b"ADD 5"), b"5");
        assert_eq!(c.apply(b"ADD 3"), b"8");
        assert_eq!(c.apply(b"READ"), b"8");
        assert_eq!(c.apply(b"ADD x"), b"ERR");
        assert_eq!(c.value(), 8);
    }

    #[test]
    fn arbiter_rejects_stale() {
        let mut a = ActuatorArbiter::new();
        assert_eq!(a.apply(b"CMD brake 10 engage"), b"OK");
        assert_eq!(a.apply(b"CMD brake 9 release"), b"STALE");
        assert_eq!(a.apply(b"CMD brake 10 release"), b"STALE");
        assert_eq!(a.apply(b"CMD brake 11 release"), b"OK");
        assert_eq!(a.current("brake").unwrap().1, "release");
        assert_eq!(a.apply(b"CMD brake nope x"), b"ERR");
    }
}
