//! Hybrid-backed Byzantine consistent broadcast (§II-A: "several works
//! make use of hardware hybrids as root-of-trust to simplify these
//! protocols to build resilient **broadcast** and agreement abstractions
//! for embedded real-time systems ... requiring only 2f+1 replicas").
//!
//! Without hybrids, Byzantine consistent broadcast needs echo quorums of
//! size ⌈(n+f+1)/2⌉ over n ≥ 3f+1 nodes. With a USIG at the sender, the
//! certificate itself rules out equivocation: a receiver delivers a message
//! as soon as the UI verifies and is the sender's next counter value —
//! n = 2f+1 suffices and delivery takes a single message delay. Echoes are
//! only needed for *completeness* (making sure everyone delivers even if
//! the sender omits sends), which f+1 relays provide.
//!
//! This module implements the primitive over an in-memory round
//! simulation, independent of the SMR harness, with pluggable sender
//! misbehaviour.

use crate::api::ReplicaId;
use rsoc_crypto::Tag;
use rsoc_hw::PlainRegister;
use rsoc_hybrid::{KeyRing, UiWindow, Usig, UsigId, UI};
use std::collections::BTreeMap;

/// A broadcast message with its sender certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcastMsg {
    /// Originating node.
    pub sender: ReplicaId,
    /// Opaque payload.
    pub payload: Vec<u8>,
    /// Sender's USIG certificate over the payload.
    pub ui: UI,
}

/// How the sender misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SenderBehavior {
    /// Sends the same certified message to everyone.
    #[default]
    Correct,
    /// Sends the message only to the first `k` receivers (omission);
    /// completeness must come from relaying.
    PartialSend(usize),
    /// Attempts equivocation: a genuine certificate for payload A to half
    /// the receivers, a *forged* certificate for payload B to the rest.
    Equivocate,
}

/// Outcome of one broadcast instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcastReport {
    /// Payload delivered by each correct receiver (`None` = not delivered).
    pub delivered: Vec<Option<Vec<u8>>>,
    /// Whether all correct receivers that delivered agree (consistency).
    pub consistent: bool,
    /// Whether all correct receivers delivered (completeness/totality).
    pub complete: bool,
    /// Messages exchanged.
    pub messages: u64,
}

/// One receiver's state: verifies certificates through its own USIG view
/// and enforces the sender's counter contiguity.
#[derive(Debug)]
struct Receiver {
    id: ReplicaId,
    usig: Usig,
    window: UiWindow,
    delivered: Option<Vec<u8>>,
}

impl Receiver {
    /// Validates and (maybe) delivers; returns `true` if newly delivered —
    /// in which case the caller relays the message to everyone once.
    fn on_message(&mut self, msg: &BcastMsg) -> bool {
        if self.delivered.is_some() {
            return false;
        }
        if !self.usig.verify_ui(UsigId(msg.sender.0), &msg.ui, &msg.payload) {
            return false; // forged certificate
        }
        if !self.window.accept(&msg.ui) {
            return false; // replayed or out-of-order counter
        }
        self.delivered = Some(msg.payload.clone());
        true
    }
}

/// Runs one broadcast instance: sender node 0 broadcasts `payload` to
/// receivers `1..n` under `behavior`; delivered messages are relayed once
/// by each correct receiver (completeness amplification).
///
/// # Panics
/// Panics if `n < 2` (need at least one receiver).
pub fn run_broadcast(n: u32, payload: &[u8], behavior: SenderBehavior) -> BcastReport {
    assert!(n >= 2, "need a sender and at least one receiver");
    let ring = KeyRing::provision(0x00B0_C457, n);
    let mut sender_usig = Usig::new(UsigId(0), ring.clone(), Box::new(PlainRegister::new(64)));
    let mut receivers: Vec<Receiver> = (1..n)
        .map(|i| Receiver {
            id: ReplicaId(i),
            usig: Usig::new(UsigId(i), ring.clone(), Box::new(PlainRegister::new(64))),
            window: UiWindow::new(),
            delivered: None,
        })
        .collect();
    let mut messages = 0u64;

    // Sender emits per its behaviour.
    let genuine = {
        let ui = sender_usig.create_ui(payload).expect("healthy usig");
        BcastMsg { sender: ReplicaId(0), payload: payload.to_vec(), ui }
    };
    let mut initial: BTreeMap<u32, BcastMsg> = BTreeMap::new();
    match behavior {
        SenderBehavior::Correct => {
            for r in &receivers {
                initial.insert(r.id.0, genuine.clone());
            }
        }
        SenderBehavior::PartialSend(k) => {
            for r in receivers.iter().take(k) {
                initial.insert(r.id.0, genuine.clone());
            }
        }
        SenderBehavior::Equivocate => {
            // Same counter, different payload: the USIG refuses to sign
            // twice, so the second certificate must be forged.
            let mut evil_payload = payload.to_vec();
            evil_payload.reverse();
            let forged = BcastMsg {
                sender: ReplicaId(0),
                payload: evil_payload,
                ui: UI { id: UsigId(0), counter: genuine.ui.counter, tag: Tag([0xEE; 32]) },
            };
            let half = receivers.len() / 2;
            for (i, r) in receivers.iter().enumerate() {
                initial.insert(r.id.0, if i < half { genuine.clone() } else { forged.clone() });
            }
        }
    }

    // Round 1: direct deliveries; collect relays.
    let mut relay_queue: Vec<BcastMsg> = Vec::new();
    for r in receivers.iter_mut() {
        if let Some(msg) = initial.get(&r.id.0) {
            messages += 1;
            if r.on_message(msg) {
                relay_queue.push(msg.clone());
            }
        }
    }
    // Round 2: each delivering receiver relays once to everyone.
    while let Some(msg) = relay_queue.pop() {
        for r in receivers.iter_mut() {
            messages += 1;
            if r.on_message(&msg) {
                relay_queue.push(msg.clone());
            }
        }
    }

    let delivered: Vec<Option<Vec<u8>>> = receivers.iter().map(|r| r.delivered.clone()).collect();
    let delivered_values: Vec<&Vec<u8>> = delivered.iter().flatten().collect();
    let consistent = delivered_values.windows(2).all(|w| w[0] == w[1]);
    let complete = delivered.iter().all(|d| d.is_some());
    BcastReport { delivered, consistent, complete, messages }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_sender_delivers_everywhere_in_one_hop_each() {
        let report = run_broadcast(4, b"launch checklist", SenderBehavior::Correct);
        assert!(report.complete);
        assert!(report.consistent);
        assert!(report
            .delivered
            .iter()
            .all(|d| d.as_deref() == Some(b"launch checklist".as_ref())));
    }

    #[test]
    fn single_receiver_case() {
        let report = run_broadcast(2, b"x", SenderBehavior::Correct);
        assert!(report.complete && report.consistent);
    }

    #[test]
    fn omission_is_healed_by_relays() {
        // Sender reaches only 1 of 3 receivers; relaying completes delivery.
        let report = run_broadcast(4, b"partial", SenderBehavior::PartialSend(1));
        assert!(report.complete, "relays must heal the omission");
        assert!(report.consistent);
    }

    #[test]
    fn total_omission_delivers_nowhere_consistently() {
        let report = run_broadcast(4, b"silent", SenderBehavior::PartialSend(0));
        assert!(!report.complete);
        assert!(report.consistent, "nobody delivered — trivially consistent");
        assert!(report.delivered.iter().all(|d| d.is_none()));
    }

    #[test]
    fn equivocation_cannot_split_receivers() {
        for n in [3u32, 4, 5, 7] {
            let report = run_broadcast(n, b"the real value", SenderBehavior::Equivocate);
            assert!(
                report.consistent,
                "n={n}: forged second certificate must not create disagreement"
            );
            // The genuine half delivers; relays spread it to the forged half.
            assert!(report.complete, "n={n}: relays heal the forged half");
            assert!(report
                .delivered
                .iter()
                .all(|d| d.as_deref() == Some(b"the real value".as_ref())));
        }
    }

    #[test]
    fn message_complexity_is_linearish() {
        // n-1 sends + (n-1) relays of (n-1) each = O(n^2) worst case, but
        // the direct-delivery path dominates and stays small.
        let r4 = run_broadcast(4, b"m", SenderBehavior::Correct);
        let r8 = run_broadcast(8, b"m", SenderBehavior::Correct);
        assert!(r4.messages < r8.messages);
        assert!(r8.messages <= (8u64 - 1) * 8);
    }
}
