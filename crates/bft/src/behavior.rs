//! Faulty replica behaviours (§I: benign *and* malicious/Byzantine faults).
//!
//! [`Behavior`] is the *preset* layer: six named one-fault configurations
//! kept for ergonomic cluster setup (`cluster.set_behavior(id, ...)`) and
//! API compatibility. Since PR 5 every preset lowers to a one-window
//! [`ReplicaScript`](crate::adversary::ReplicaScript) — the composable,
//! time-phased fault scripts of the adversarial scenario engine — via
//! `From<Behavior>`; the protocols interpret only scripts. Content attacks
//! (equivocation, UI forgery) are still realized per protocol — an
//! "equivocating" PBFT primary actually sends conflicting pre-prepares,
//! and a MinBFT attacker actually fabricates USIG certificates (which then
//! fail verification — the hybrid at work) — while every transport-level
//! fault is interpreted uniformly by the runner.

/// What kind of (mis)behaviour a replica exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Crashed from the start: ignores everything, sends nothing.
    Crashed,
    /// Crashes at the given virtual time (benign fail-stop).
    CrashAt(u64),
    /// Receives but never sends (omission fault / kill-switch silence).
    Silent,
    /// Byzantine: when primary, sends conflicting proposals to different
    /// backups; when backup, votes for bogus digests.
    Equivocate,
    /// Byzantine (MinBFT-specific): attempts to reuse a USIG counter by
    /// forging a certificate for a second conflicting message.
    ForgeUi,
}

impl Behavior {
    /// Whether the replica is crashed at time `now`.
    pub fn crashed_at(&self, now: u64) -> bool {
        match self {
            Behavior::Crashed => true,
            Behavior::CrashAt(t) => now >= *t,
            _ => false,
        }
    }

    /// Whether the replica ever sends messages at time `now`.
    pub fn sends_at(&self, now: u64) -> bool {
        !self.crashed_at(now) && *self != Behavior::Silent
    }

    /// Whether the behaviour is Byzantine (arbitrary) rather than benign.
    /// Byzantine replicas are excluded from cross-replica safety checks.
    pub fn is_byzantine(&self) -> bool {
        matches!(self, Behavior::Equivocate | Behavior::ForgeUi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_semantics() {
        assert!(Behavior::Crashed.crashed_at(0));
        assert!(!Behavior::CrashAt(10).crashed_at(9));
        assert!(Behavior::CrashAt(10).crashed_at(10));
        assert!(!Behavior::Correct.crashed_at(u64::MAX));
    }

    #[test]
    fn send_semantics() {
        assert!(Behavior::Correct.sends_at(5));
        assert!(!Behavior::Silent.sends_at(5));
        assert!(!Behavior::CrashAt(3).sends_at(4));
        assert!(Behavior::Equivocate.sends_at(0));
    }

    #[test]
    fn byzantine_classification() {
        assert!(Behavior::Equivocate.is_byzantine());
        assert!(Behavior::ForgeUi.is_byzantine());
        assert!(!Behavior::Crashed.is_byzantine());
        assert!(!Behavior::Silent.is_byzantine());
        assert!(!Behavior::Correct.is_byzantine());
    }
}
