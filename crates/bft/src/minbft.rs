//! MinBFT (Veronese et al., "Efficient Byzantine Fault-Tolerance", IEEE
//! ToC 2011) — the hybrid 2f+1 protocol the paper holds up as the payoff of
//! architectural hybridization (§II-A, §III).
//!
//! Each replica owns a [`rsoc_hybrid::Usig`]; every PREPARE (primary) and
//! COMMIT (backup) carries a USIG certificate. Because the USIG counter is
//! monotonic and certified, a Byzantine primary cannot assign the same
//! counter to two different messages — equivocation is structurally
//! impossible — which is what shrinks the replica requirement from 3f+1 to
//! 2f+1 and the commit quorum to f+1.
//!
//! Out-of-order delivery is handled with a per-sender hold-back queue (the
//! USIG contiguity window only advances in counter order). The view change
//! follows the same operational shape as our PBFT: request-patience timers,
//! `ReqViewChange` votes (carrying prepared-but-unexecuted entries), and a
//! re-proposal round by the new primary.
//!
//! Wire format: PREPARE and COMMIT carry [`Arc<Batch>`] — the broadcast
//! fan-out bumps a refcount per peer instead of deep-cloning the batch.

use crate::adversary::ReplicaScript;
use crate::api::{
    noop_batch, Batch, BatchDecision, Batcher, Cluster, Endpoint, Input, LogEntry, OpId, Outbox,
    ReplicaId, ReplicaNode, Reply, Request, VcRound,
};
use crate::checkpoint::{
    decode_image, encode_image, snapshot_matches, tamper_suffix, CheckpointCert, CheckpointStats,
    CheckpointStore, CheckpointVoucher, CkptKeys, ClientSessions, CommittedLog, CstBuffer,
    CstInstall, StateTransfer,
};
use crate::dense::{op_token, token_op, OpIndex, ReplicaSet, SeqWindow};
use crate::durable::{DurableEvent, RecoveredState, RecoveryReport};
use crate::runner::RunConfig;
use crate::statemachine::{KvStore, StateMachine};
use rsoc_crypto::Tag;
use rsoc_hw::{EccRegister, PlainRegister, RegisterCell};
use rsoc_hybrid::{KeyRing, Usig, UsigId, UI};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Timer kind: request patience expired.
const TIMER_REQUEST: u32 = 1;
/// Timer kind: the primary's partially filled batch waited long enough.
const TIMER_FLUSH: u32 = 2;
/// Default backup patience before suspecting the primary (see
/// [`RunConfig::request_patience`]).
const REQUEST_PATIENCE: u64 = 1_500;

/// Prepared-but-unexecuted `(seq, batch)` entries carried by view changes.
type PreparedSet = Vec<(u64, Arc<Batch>)>;

/// A backup's UI-certified commit vote (carries the batch so replicas
/// that missed the PREPARE can still execute on a commit quorum).
///
/// Shared behind an [`Arc`] in [`MinBftMsg::Commit`]: the vote carries
/// *two* 48-byte USIG certificates, and inlining them made `Commit` the
/// enum's largest variant by far — every event memcpy'd through the
/// simulator's timing-wheel arena paid for it. Behind the `Arc`, the
/// per-peer broadcast clone is a refcount bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitVote {
    /// View.
    pub view: u64,
    /// Sequence.
    pub seq: u64,
    /// Full request batch (shared across the fan-out).
    pub batch: Arc<Batch>,
    /// The primary's UI from the PREPARE (evidence of assignment).
    pub primary_ui: UI,
    /// Voting replica.
    pub from: ReplicaId,
    /// Voter's own USIG certificate.
    pub ui: UI,
}

/// MinBFT wire messages.
///
/// Rare, bulky variants (commit votes, checkpoint vouchers/certs, state
/// transfers) live behind `Arc`/`Box` so the enum's size — and with it
/// every per-event memcpy through the timing-wheel arena — is pinned by
/// the hot `Prepare` variant (see `message_enums_stay_small`).
#[derive(Debug, Clone, PartialEq)]
pub enum MinBftMsg {
    /// Client request (shared across the fan-out).
    Request(Arc<Request>),
    /// Primary's UI-certified ordering proposal: one slot per *batch*.
    Prepare {
        /// View.
        view: u64,
        /// Global sequence number.
        seq: u64,
        /// Full request batch (shared across the fan-out).
        batch: Arc<Batch>,
        /// Primary's USIG certificate over `(view, seq, batch digest)`.
        ui: UI,
    },
    /// Backup's UI-certified commit vote (see [`CommitVote`]).
    Commit(Arc<CommitVote>),
    /// Execution result (replica → client).
    Reply(Reply),
    /// Vote to replace the primary.
    ReqViewChange {
        /// Proposed view.
        new_view: u64,
        /// Voter.
        from: ReplicaId,
        /// Prepared-but-unexecuted entries that must survive.
        prepared: Vec<(u64, Arc<Batch>)>,
        /// The voter's execution watermark (the hole-filling floor — see
        /// the PBFT `ViewChange` twin).
        executed_upto: u64,
        /// The voter's stable checkpoint certificate, if any: the new
        /// primary verifies it and refuses to re-propose below it.
        /// Boxed — certificates are rare and bulky.
        cert: Option<Box<CheckpointCert>>,
    },
    /// New primary's installation message (re-proposals follow as normal
    /// UI-certified PREPAREs).
    NewView {
        /// Installed view.
        view: u64,
        /// Re-proposed entries.
        preprepares: Vec<(u64, Arc<Batch>)>,
    },
    /// Reliable-FIFO-channel emulation: `from` asks `sender` to resend its
    /// UI-certified messages with counters in `[from_counter, upto]`.
    ///
    /// MinBFT's system model assumes eventually-reliable channels; a
    /// dropped PREPARE/COMMIT otherwise poisons the sender's counter
    /// stream at the receiver forever (the contiguity hold-back can never
    /// advance, and USIGs cannot re-sign old counters). The F5 drop-storm
    /// scenario exposed exactly that wedge. Resends are the *original*
    /// stored messages, so their UIs re-verify unchanged.
    FillGap {
        /// Whose counter stream has the gap.
        sender: ReplicaId,
        /// First missing counter.
        from_counter: u64,
        /// Last missing counter (inclusive; responders cap the burst).
        upto: u64,
        /// The requesting replica (resends go only to it).
        from: ReplicaId,
    },
    /// FillGap answer for counters already retired from the resend ring:
    /// the responder cannot resend (USIGs never re-sign old counters), so
    /// it hands over its stable checkpoint certificate instead. The
    /// requester adopts the certificate, resyncs the responder's counter
    /// stream at `ring_base`, and escalates to state transfer — the only
    /// path that can close a gap older than `SENT_RETENTION`.
    CheckpointHint {
        /// The responder's stable checkpoint certificate (f+1 vouchers).
        /// Boxed — certificates are rare and bulky.
        cert: Box<CheckpointCert>,
        /// Lowest counter still in the responder's resend ring; the
        /// requester fast-forwards `accepted[from]` to just below it.
        ring_base: u64,
        /// The responder (whose counter stream the requester resyncs).
        from: ReplicaId,
    },
    /// A replica's MAC'd vouch for its state digest at a watermark.
    /// Boxed — vouchers are periodic, not per-request.
    Checkpoint(Box<CheckpointVoucher>),
    /// A laggard asks peers for the latest certified state.
    StateRequest {
        /// The requester's execution watermark.
        have: u64,
        /// The requester.
        from: ReplicaId,
    },
    /// Certificate + certified snapshot + committed suffix (see
    /// [`StateTransfer`]). Boxed — transfers are rare and huge.
    StateResponse(Box<StateTransfer>),
}

/// One agreement slot; executed slots are *retired* from the window
/// instead of flagged (see [`SeqWindow::retire_below`]).
#[derive(Debug, Default)]
struct Slot {
    batch: Option<Arc<Batch>>,
    digest: Option<[u8; 32]>,
    prepare_ok: bool,
    commits: ReplicaSet,
    sent_commit: bool,
}

/// How many of its own UI-certified sends a replica keeps for gap-fill
/// resends (older counters have long been accepted everywhere in any
/// realistic window; a gap below the retention horizon stays a laggard,
/// which quorums already tolerate).
const SENT_RETENTION: u64 = 512;
/// Cycles between gap-fill requests for the same sender (the request or
/// the resend can itself be lost — re-ask, but do not spam every packet).
const GAP_REQ_BACKOFF: u64 = 100;
/// Maximum counters resent per gap-fill request.
const GAP_FILL_BURST: u64 = 32;

/// The UI-signed PREPARE statement, on the stack: certificates are
/// created and verified on every protocol message, so this must not
/// allocate.
fn prepare_bytes(view: u64, seq: u64, digest: &[u8; 32]) -> [u8; 56] {
    let mut b = [0u8; 56];
    b[..8].copy_from_slice(b"PREPARE|");
    b[8..16].copy_from_slice(&view.to_le_bytes());
    b[16..24].copy_from_slice(&seq.to_le_bytes());
    b[24..].copy_from_slice(digest);
    b
}

/// The UI-signed COMMIT statement, on the stack (see [`prepare_bytes`]).
fn commit_bytes(view: u64, seq: u64, digest: &[u8; 32], primary_counter: u64) -> [u8; 63] {
    let mut b = [0u8; 63];
    b[..7].copy_from_slice(b"COMMIT|");
    b[7..15].copy_from_slice(&view.to_le_bytes());
    b[15..23].copy_from_slice(&seq.to_le_bytes());
    b[23..31].copy_from_slice(&primary_counter.to_le_bytes());
    b[31..].copy_from_slice(digest);
    b
}

/// Which register protects each replica's USIG counter (experiment E2 /
/// ablations swap this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterProtection {
    /// Unprotected flip-flops.
    Plain,
    /// Hamming SEC-DED.
    #[default]
    SecDed,
}

impl CounterProtection {
    fn build(self) -> Box<dyn RegisterCell> {
        match self {
            CounterProtection::Plain => Box::new(PlainRegister::new(64)),
            CounterProtection::SecDed => Box::new(EccRegister::new(64)),
        }
    }
}

/// One MinBFT replica.
#[derive(Debug)]
pub struct MinBftReplica {
    id: ReplicaId,
    n: u32,
    f: u32,
    view: u64,
    script: ReplicaScript,
    /// Virtual time of the input being handled (scripts are time-phased).
    now: u64,
    usig: Usig,
    /// Hold-back ingress: per-sender buffered UI-bearing messages, each a
    /// counter-keyed window anchored just past the accepted counter.
    ingress: Vec<SeqWindow<MinBftMsg>>,
    /// Messages for views we have not installed yet (a NewView may still be
    /// in flight); re-dispatched on installation.
    future: Vec<MinBftMsg>,
    /// Last accepted USIG counter per sender (dense by replica id).
    accepted: Vec<u64>,
    /// This replica's own UI-certified sends, keyed by counter — the
    /// resend store behind [`MinBftMsg::FillGap`] (bounded retention).
    sent_ui: SeqWindow<MinBftMsg>,
    /// Per-sender time of the last gap-fill request (rate limiter).
    gap_req_at: Vec<u64>,
    next_seq: u64,
    /// Agreement slots, watermarked at `exec_upto + 1`.
    slots: SeqWindow<Slot>,
    assigned: OpIndex<u64>,
    stored_prepares: SeqWindow<MinBftMsg>,
    /// Exactly-once dedup: op → shared execution result.
    executed: OpIndex<Arc<Vec<u8>>>,
    /// Backup watchlist: requests awaiting commit, with patience timers.
    pending: OpIndex<Arc<Request>>,
    log: CommittedLog,
    exec_upto: u64,
    machine: KvStore,
    /// Certified checkpoints + state-transfer bookkeeping (disabled at
    /// interval 0 — the byte-identical legacy configuration).
    ckpt: CheckpointStore,
    /// Executed batches by agreement slot, retained above the stable
    /// checkpoint — the replay source for serving state-transfer suffixes.
    replay_ring: SeqWindow<Arc<Batch>>,
    /// Buffered state-transfer responses awaiting an f+1 install quorum.
    cst: CstBuffer,
    /// Latest executed `(seq, reply)` per client — snapshotted into the
    /// checkpoint image so retry dedup survives a wipe + CST re-join.
    /// Maintained only while checkpointing is enabled (byte-invisible
    /// otherwise).
    sessions: ClientSessions,
    /// True once the embedding plane persists [`DurableEvent`]s (never in
    /// the simulator — see [`crate::durable`]).
    durability: bool,
    /// Events awaiting [`ReplicaNode::drain_durable`].
    durable: Vec<DurableEvent>,
    /// Highest stable watermark already emitted as a
    /// [`DurableEvent::Stable`] (dedup across truncation call sites).
    durable_stable_seq: u64,
    vc_votes: Vec<VcRound>,
    vc_sent_for: u64,
    /// When `vc_sent_for` was last raised — the escalation rate limiter.
    vc_demanded_at: u64,
    /// Set while a crash window swallows inputs; the first input after
    /// recovery re-arms the per-op patience chains killed in the outage.
    in_outage: bool,
    /// Batching front-end (primary only).
    batcher: Batcher,
    /// Backup patience before suspecting the primary.
    patience: u64,
}

impl MinBftReplica {
    /// Creates replica `id` of an `n = 2f+1` cluster sharing `ring`
    /// (a refcount bump, not a key-material copy).
    pub fn new(id: ReplicaId, f: u32, ring: Arc<KeyRing>, protection: CounterProtection) -> Self {
        MinBftReplica {
            id,
            n: 2 * f + 1,
            f,
            view: 0,
            script: ReplicaScript::correct(),
            now: 0,
            usig: Usig::new(UsigId(id.0), ring, protection.build()),
            ingress: (0..2 * f + 1).map(|_| SeqWindow::with_base(1)).collect(),
            future: Vec::new(),
            accepted: vec![0; (2 * f + 1) as usize],
            sent_ui: SeqWindow::with_base(1),
            gap_req_at: vec![0; (2 * f + 1) as usize],
            next_seq: 1,
            slots: SeqWindow::with_base(1),
            assigned: OpIndex::new(),
            stored_prepares: SeqWindow::with_base(1),
            executed: OpIndex::new(),
            pending: OpIndex::new(),
            log: CommittedLog::new(),
            exec_upto: 0,
            machine: KvStore::new(),
            ckpt: CheckpointStore::new(id, (f + 1) as usize, 0, CkptKeys::provision(0, 1)),
            replay_ring: SeqWindow::with_base(1),
            cst: CstBuffer::new(),
            sessions: ClientSessions::new(),
            durability: false,
            durable: Vec::new(),
            durable_stable_seq: 0,
            vc_votes: Vec::new(),
            vc_sent_for: 0,
            vc_demanded_at: 0,
            in_outage: false,
            batcher: Batcher::new(),
            patience: REQUEST_PATIENCE,
        }
    }

    /// Configures the batching front-end: seal a batch at `batch_size`
    /// requests, or after `batch_flush` cycles, whichever comes first.
    pub fn set_batching(&mut self, batch_size: usize, batch_flush: u64) {
        self.batcher.configure(batch_size, batch_flush);
    }

    /// Sets the backup's request patience (clamped to ≥ 1).
    pub fn set_patience(&mut self, cycles: u64) {
        self.patience = cycles.max(1);
    }

    /// Enables certified checkpoints every `interval` executed slots
    /// (0 disables — the default, byte-identical to the legacy protocol).
    /// MinBFT's f+1 matching vouchers certify a watermark.
    pub fn set_checkpointing(&mut self, interval: u64, keys: Arc<CkptKeys>) {
        self.ckpt = CheckpointStore::new(self.id, (self.f + 1) as usize, interval, keys);
    }

    /// Digest of the replica's current state-machine state (for
    /// batched-vs-unbatched equivalence checks).
    pub fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    /// `(created, verified)` USIG certificate counts — the replica's MAC
    /// operations, for authentication-cost accounting.
    pub fn mac_ops(&self) -> (u64, u64) {
        (self.usig.issued(), self.usig.verified())
    }

    /// Installs a composable, time-phased fault script.
    pub fn set_script(&mut self, script: ReplicaScript) {
        self.script = script;
    }

    /// The active fault script.
    pub fn script(&self) -> &ReplicaScript {
        &self.script
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// SEU injection into the USIG counter register (E2 / F1).
    pub fn inject_usig_flip(&mut self, bit: u32) {
        self.usig.inject_counter_flip(bit);
    }

    fn primary_of(&self, view: u64) -> ReplicaId {
        ReplicaId((view % self.n as u64) as u32)
    }

    fn is_primary(&self) -> bool {
        self.primary_of(self.view) == self.id
    }

    fn commit_quorum(&self) -> usize {
        (self.f + 1) as usize
    }

    /// Remembers one of this replica's own UI-certified sends so a peer
    /// with a counter gap can ask for a verbatim resend.
    fn record_sent(&mut self, counter: u64, msg: MinBftMsg) {
        self.sent_ui.insert(counter, msg);
        if counter > SENT_RETENTION {
            self.sent_ui.retire_below(counter - SENT_RETENTION);
        }
        if self.durability {
            // Every honest UI issue passes through here, so the persisted
            // counter watermark tracks the USIG exactly: a restart resumes
            // *above* it and can never certify two statements under one
            // counter value.
            self.durable.push(DurableEvent::UsigCounter(counter));
        }
    }

    /// Verifies a UI and enforces per-sender counter contiguity, buffering
    /// out-of-order arrivals. Returns `true` when `msg` should be processed
    /// now; queued messages are drained by the caller via
    /// [`Self::take_ready`]. Buffering a counter gap emits a rate-limited
    /// [`MinBftMsg::FillGap`] so a *lost* message (the channels are not
    /// reliable) cannot poison the sender's stream forever.
    // Everything below is reachable from adversarial input: a Byzantine
    // peer (or a forged client) picks the message contents, so a panic
    // here is a remote crash. `rsoc_lint` enforces the no-panic contract;
    // the reasoned allows mark invariants the window/USIG layer holds.
    // lint: ingress
    fn ingest_ui(
        &mut self,
        sender: ReplicaId,
        ui: &UI,
        signed: &[u8],
        msg: &MinBftMsg,
        out: &mut Outbox<MinBftMsg>,
    ) -> bool {
        if !self.usig.verify_ui(UsigId(sender.0), ui, signed) {
            return false; // forged or corrupted certificate
        }
        let s = sender.0 as usize;
        // bounds: verify_ui above rejects senders without a ring key, so
        // s < n for every line that indexes the per-sender arrays here.
        let last = self.accepted[s];
        match ui.counter.cmp(&(last + 1)) {
            std::cmp::Ordering::Equal => {
                self.accepted[s] = ui.counter; // bounds: s < n (verify_ui)
                self.ingress[s].retire_below(ui.counter + 1); // bounds: s < n (verify_ui)
                true
            }
            std::cmp::Ordering::Greater => {
                // bounds: s < n (verify_ui)
                self.ingress[s].insert(ui.counter, msg.clone());
                // bounds: s < n (verify_ui)
                if self.now >= self.gap_req_at[s].saturating_add(GAP_REQ_BACKOFF) {
                    // bounds: s < n (verify_ui)
                    self.gap_req_at[s] = self.now;
                    out.send(
                        Endpoint::Replica(sender),
                        MinBftMsg::FillGap {
                            sender,
                            from_counter: last + 1,
                            upto: ui.counter - 1,
                            from: self.id,
                        },
                    );
                }
                false
            }
            std::cmp::Ordering::Less => false, // replay / duplicate counter
        }
    }

    /// Pops the next contiguous buffered message from any sender, if ready
    /// (ascending sender order, matching the old map-keyed scan).
    fn take_ready(&mut self) -> Option<MinBftMsg> {
        for s in 0..self.ingress.len() {
            // bounds: s iterates 0..len; accepted/ingress share length n
            let next = self.accepted[s] + 1;
            // bounds: s iterates 0..len
            if let Some(msg) = self.ingress[s].remove(next) {
                // bounds: s iterates 0..len
                self.accepted[s] = next;
                // bounds: s iterates 0..len
                self.ingress[s].retire_below(next + 1);
                return Some(msg);
            }
        }
        None
    }

    fn handle_request(&mut self, req: Arc<Request>, out: &mut Outbox<MinBftMsg>) {
        if let Some(result) = self.executed.get(&req.op) {
            out.send(
                Endpoint::Client(req.op.client),
                MinBftMsg::Reply(Reply { replica: self.id, op: req.op, result: result.clone() }),
            );
            return;
        }
        if self.is_primary() {
            if let Some(seq) = self.assigned.get(&req.op).copied() {
                // Retransmit the stored PREPARE (heals backups with counter gaps).
                if let Some(prep) = self.stored_prepares.get(seq).cloned() {
                    out.broadcast(self.n, self.id, prep);
                }
                return;
            }
            match self.batcher.offer(req) {
                BatchDecision::Seal => self.flush_batch(out),
                BatchDecision::ArmTimer(token) => {
                    out.arm(self.batcher.flush_cycles(), TIMER_FLUSH, token)
                }
                BatchDecision::Wait | BatchDecision::Duplicate => {}
            }
        } else {
            if !self.pending.contains_key(&req.op) && !self.executed.contains_key(&req.op) {
                let token = op_token(req.op);
                self.pending.insert(req.op, req);
                out.arm(self.patience, TIMER_REQUEST, token);
            }
        }
    }

    /// Seals the accumulated requests into one batch and proposes it under
    /// a single USIG certificate — MAC creation and verification are
    /// amortized `1/B` across the batch.
    fn flush_batch(&mut self, out: &mut Outbox<MinBftMsg>) {
        // Requests can go stale in the accumulator across a view change.
        let executed = &self.executed;
        let assigned = &self.assigned;
        let reqs =
            self.batcher.drain(|r| !executed.contains_key(&r.op) && !assigned.contains_key(&r.op));
        if reqs.is_empty() {
            return;
        }
        let batch = Arc::new(Batch::new(reqs));
        let seq = self.next_seq;
        self.next_seq += 1;
        for r in batch.requests() {
            self.assigned.insert(r.op, seq);
        }
        if self.script.forges_ui_at(self.now) {
            self.forge_equivocation(seq, batch, out);
            return;
        }
        let digest = batch.digest();
        let Ok(ui) = self.usig.create_ui(&prepare_bytes(self.view, seq, &digest)) else {
            return; // fail-stopped USIG: replica can no longer lead
        };
        let prep = MinBftMsg::Prepare { view: self.view, seq, batch: batch.clone(), ui };
        self.stored_prepares.insert(seq, prep.clone());
        self.record_sent(ui.counter, prep.clone());
        let me = self.id;
        // lint: allow(ingress-expect) -- seq is freshly drawn from next_seq, strictly above exec_upto
        let slot = self.slots.get_or_insert_default(seq).expect("fresh seq is above watermark");
        slot.batch = Some(batch);
        slot.digest = Some(digest);
        slot.prepare_ok = true;
        slot.commits.insert(me); // the PREPARE is the primary's commit
        slot.sent_commit = true;
        out.broadcast(self.n, self.id, prep);
    }

    /// Byzantine primary attempting equivocation: a valid PREPARE for the
    /// batch to half the backups and a *forged* certificate (same counter,
    /// fabricated tag — the USIG refuses to sign twice) for a conflicting
    /// batch to the rest. The hybrid makes the forgery detectable.
    fn forge_equivocation(&mut self, seq: u64, batch: Arc<Batch>, out: &mut Outbox<MinBftMsg>) {
        let digest = batch.digest();
        let Ok(ui) = self.usig.create_ui(&prepare_bytes(self.view, seq, &digest)) else {
            return;
        };
        let evil_reqs: Vec<Arc<Request>> = batch
            .requests()
            .iter()
            .map(|r| {
                let mut e = Request::clone(r);
                e.payload.reverse();
                Arc::new(e)
            })
            .collect();
        let evil = Arc::new(Batch::new(evil_reqs));
        let forged_ui = UI { id: UsigId(self.id.0), counter: ui.counter, tag: Tag([0xEE; 32]) };
        let half = self.n / 2 + 1;
        for i in 0..self.n {
            if i == self.id.0 {
                continue;
            }
            let msg = if i < half {
                MinBftMsg::Prepare { view: self.view, seq, batch: batch.clone(), ui }
            } else {
                MinBftMsg::Prepare { view: self.view, seq, batch: evil.clone(), ui: forged_ui }
            };
            out.send(Endpoint::Replica(ReplicaId(i)), msg);
        }
        let me = self.id;
        // lint: allow(ingress-expect) -- seq is freshly drawn from next_seq, strictly above exec_upto
        let slot = self.slots.get_or_insert_default(seq).expect("fresh seq is above watermark");
        slot.batch = Some(batch);
        slot.digest = Some(digest);
        slot.prepare_ok = true;
        slot.commits.insert(me);
        slot.sent_commit = true;
    }

    fn handle_prepare(
        &mut self,
        view: u64,
        seq: u64,
        batch: Arc<Batch>,
        ui: UI,
        out: &mut Outbox<MinBftMsg>,
    ) {
        if view != self.view {
            return;
        }
        // One content check per batch: the cached digest (which the UI
        // certifies) must match the carried requests.
        if batch.is_empty() || !batch.verify() {
            return;
        }
        let digest = batch.digest();
        let primary = self.primary_of(view);
        let me = self.id;
        // Below the watermark = already executed: rejected, not resurrected.
        let Some(slot) = self.slots.get_or_insert_default(seq) else { return };
        if let Some(d) = slot.digest {
            if d != digest {
                return; // conflicts with already-evidenced assignment
            }
        }
        for r in batch.requests() {
            self.assigned.insert(r.op, seq);
        }
        // lint: allow(ingress-expect) -- get_or_insert_default above returned Some for this seq
        let slot = self.slots.get_mut(seq).expect("slot just ensured");
        slot.batch = Some(batch.clone());
        slot.digest = Some(digest);
        slot.prepare_ok = true;
        slot.commits.insert(primary);
        if !slot.sent_commit {
            slot.sent_commit = true;
            slot.commits.insert(me);
            let Ok(my_ui) = self.usig.create_ui(&commit_bytes(view, seq, &digest, ui.counter))
            else {
                return;
            };
            let commit = MinBftMsg::Commit(Arc::new(CommitVote {
                view,
                seq,
                batch,
                primary_ui: ui,
                from: self.id,
                ui: my_ui,
            }));
            self.record_sent(my_ui.counter, commit.clone());
            out.broadcast(self.n, self.id, commit);
        }
        self.try_execute(out);
    }

    fn handle_commit(
        &mut self,
        view: u64,
        seq: u64,
        batch: Arc<Batch>,
        primary_ui: UI,
        from: ReplicaId,
        out: &mut Outbox<MinBftMsg>,
    ) {
        if view != self.view {
            return;
        }
        // The commit must reference a genuine primary certificate.
        let digest = batch.digest();
        if !self.usig.verify_ui(
            UsigId(self.primary_of(view).0),
            &primary_ui,
            &prepare_bytes(view, seq, &digest),
        ) {
            return;
        }
        let primary = self.primary_of(view);
        let Some(slot) = self.slots.get_or_insert_default(seq) else { return };
        if let Some(d) = slot.digest {
            if d != digest {
                return;
            }
        }
        if slot.batch.is_none() {
            // Adopting content we never saw a PREPARE for: check it against
            // the certified digest once.
            if !batch.verify() {
                return;
            }
            slot.batch = Some(batch);
        }
        slot.digest = Some(digest);
        slot.commits.insert(from);
        slot.commits.insert(primary);
        self.try_execute(out);
    }

    fn try_execute(&mut self, out: &mut Outbox<MinBftMsg>) {
        let quorum = self.commit_quorum();
        loop {
            let next = self.exec_upto + 1;
            let ready = match self.slots.get(next) {
                Some(s) => s.batch.is_some() && s.commits.len() >= quorum,
                None => false,
            };
            if !ready {
                break;
            }
            // Execution consumes the slot; the watermark retirement below
            // makes the sequence number permanently dead.
            // lint: allow(ingress-expect) -- `ready` above proved the slot exists in the window
            let slot = self.slots.remove(next).expect("checked");
            // lint: allow(ingress-expect) -- `ready` above proved batch.is_some()
            let batch = slot.batch.expect("checked");
            // lint: allow(ingress-expect) -- the digest is stored alongside the batch, never alone
            let digest = slot.digest.expect("digest follows batch");
            self.exec_upto = next;
            // Per-request log entries (dense global sequence) out of one
            // agreement slot.
            for req in batch.requests() {
                let log_seq = self.log.committed() + 1;
                let result = Arc::new(self.machine.apply(&req.payload));
                self.log.push(LogEntry { seq: log_seq, op: req.op, digest });
                self.executed.insert(req.op, result.clone());
                if self.ckpt.enabled() {
                    self.sessions.note(req.op.client, req.op.seq, result.clone());
                }
                self.pending.remove(&req.op);
                self.assigned.insert(req.op, next);
                out.send(
                    Endpoint::Client(req.op.client),
                    MinBftMsg::Reply(Reply { replica: self.id, op: req.op, result }),
                );
            }
            if self.ckpt.enabled() {
                self.replay_ring.insert(next, batch.clone());
            }
            if self.durability {
                self.durable.push(DurableEvent::Commit { seq: next, batch });
            }
            self.maybe_checkpoint(next, out);
        }
        self.slots.retire_below(self.exec_upto + 1);
        self.stored_prepares.retire_below(self.exec_upto + 1);
    }

    /// Takes a certified checkpoint when execution crosses a watermark
    /// boundary (see the PBFT twin; MinBFT needs only f+1 matching
    /// vouchers, mirroring its commit quorum).
    fn maybe_checkpoint(&mut self, exec_seq: u64, out: &mut Outbox<MinBftMsg>) {
        if !self.ckpt.due(exec_seq) {
            return;
        }
        if self.script.forges_checkpoint_at(self.now) {
            // Byzantine: one outsider forgery (garbage MAC) and one
            // properly MAC'd lie (isolated in its own digest group).
            let lie = rsoc_crypto::sha256(b"forged-checkpoint-state");
            let mut garbage = CheckpointVoucher {
                seq: exec_seq,
                digest: lie,
                from: self.id,
                tag: Tag([0xEE; 32]),
            };
            out.broadcast(self.n, self.id, MinBftMsg::Checkpoint(Box::new(garbage.clone())));
            // The locally retained image stays honest (only the vouched
            // digest lies) so the forger can still serve honest-certified
            // checkpoints.
            garbage = self.ckpt.record_local(
                exec_seq,
                lie,
                self.log.committed(),
                Arc::new(encode_image(&self.machine.snapshot(), &self.sessions)),
            );
            out.broadcast(self.n, self.id, MinBftMsg::Checkpoint(Box::new(garbage)));
            return;
        }
        let image = Arc::new(encode_image(&self.machine.snapshot(), &self.sessions));
        let digest = rsoc_crypto::sha256(&image);
        let voucher = self.ckpt.record_local(exec_seq, digest, self.log.committed(), image);
        out.broadcast(self.n, self.id, MinBftMsg::Checkpoint(Box::new(voucher.clone())));
        if self.ckpt.record(&voucher).is_some() {
            self.apply_truncation();
        }
    }

    /// Truncates the log and replay ring below the stable checkpoint
    /// (no-op while this replica has no locally recorded watermark). With
    /// durability on, a newly stable certificate we hold the snapshot for
    /// is also emitted once as a [`DurableEvent::Stable`].
    fn apply_truncation(&mut self) {
        if let Some(log_len) = self.ckpt.stable_log_len() {
            self.log.truncate_below(log_len);
            self.replay_ring.retire_below(self.ckpt.stable_seq() + 1);
        }
        if self.durability && self.ckpt.stable_seq() > self.durable_stable_seq {
            if let Some((cert, log_len, snapshot)) = self.ckpt.serve() {
                self.durable_stable_seq = cert.seq;
                let cert = cert.clone();
                self.durable.push(DurableEvent::Stable { cert, log_len, snapshot });
            }
        }
    }

    /// Ingests a peer's checkpoint voucher (MAC-verified by the store).
    fn handle_checkpoint(&mut self, voucher: CheckpointVoucher, out: &mut Outbox<MinBftMsg>) {
        if self.ckpt.record(&voucher).is_some() {
            self.apply_truncation();
        }
        self.maybe_request_transfer(out);
    }

    /// Broadcasts a state-transfer request if the stable certificate is
    /// ahead of local execution (rate-limited by the CST backoff).
    fn maybe_request_transfer(&mut self, out: &mut Outbox<MinBftMsg>) {
        if self.ckpt.behind(self.exec_upto) && self.ckpt.may_request(self.now) {
            out.broadcast(
                self.n,
                self.id,
                MinBftMsg::StateRequest { have: self.exec_upto, from: self.id },
            );
        }
    }

    /// Serves a state-transfer request: stable certificate + certified
    /// snapshot + the committed suffix above it (see the PBFT twin).
    fn handle_state_request(&mut self, have: u64, from: ReplicaId, out: &mut Outbox<MinBftMsg>) {
        let Some((cert, log_base, snapshot)) = self.ckpt.serve() else { return };
        if cert.seq <= have {
            return; // requester is not behind our certificate
        }
        let cert = cert.clone();
        let mut suffix = Vec::new();
        for slot in cert.seq + 1..=self.exec_upto {
            match self.replay_ring.get(slot) {
                Some(batch) => suffix.push((slot, batch.clone())),
                None => return, // suffix gap (mid-install): let another peer serve
            }
        }
        let mut snapshot = snapshot;
        if self.script.corrupts_snapshot_at(self.now) {
            // Byzantine responder: the requester's digest cross-check
            // against the certificate must catch the flipped byte.
            let mut bytes = (*snapshot).clone();
            match bytes.first_mut() {
                Some(b) => *b ^= 0xFF,
                None => bytes.push(0xFF),
            }
            snapshot = Arc::new(bytes);
        }
        if self.script.corrupts_suffix_at(self.now) {
            // Byzantine responder: a suffix the cluster never committed,
            // under an honest certificate and snapshot — only the
            // requester's f+1 slot-by-slot vote can out-vote it.
            tamper_suffix(&mut suffix, cert.seq);
        }
        let transfer = StateTransfer {
            cert,
            snapshot,
            log_base,
            suffix: Arc::new(suffix),
            view: self.view,
            from: self.id,
        };
        out.send(Endpoint::Replica(from), MinBftMsg::StateResponse(Box::new(transfer)));
    }

    /// Validates a transfer response (certificate verifies, snapshot
    /// digest matches, snapshot parses — everything in the response is
    /// adversarial input until those checks pass) and buffers it;
    /// installs once f+1 distinct responders agree on the watermark, with
    /// the log suffix voted slot by slot (see [`CstBuffer`]).
    fn handle_state_response(&mut self, st: StateTransfer, out: &mut Outbox<MinBftMsg>) {
        if !self.ckpt.enabled() || st.cert.seq <= self.exec_upto {
            return; // not ahead of us: nothing to install
        }
        if !self.ckpt.verify_cert(&st.cert) {
            self.ckpt.note_rejected();
            return;
        }
        if !snapshot_matches(&st.cert, &st.snapshot) {
            self.ckpt.note_rejected();
            return; // corrupted snapshot: digest does not match the cert
        }
        let parses = decode_image(&st.snapshot)
            .is_some_and(|(kv, _)| KvStore::install_snapshot(kv).is_some());
        if !parses {
            self.ckpt.note_rejected();
            return;
        }
        self.cst.admit(st, self.exec_upto);
        let Some(plan) = self.cst.install_plan((self.f + 1) as usize) else { return };
        self.cst.clear();
        self.install_transfer(plan, out);
    }

    /// Installs a quorum-voted transfer: snapshot, certificate, voted log
    /// suffix; then rejoins the cluster's view and resumes execution.
    fn install_transfer(&mut self, plan: CstInstall, out: &mut Outbox<MinBftMsg>) {
        let Some((kv, sessions)) = decode_image(&plan.snapshot) else { return };
        let Some(machine) = KvStore::install_snapshot(kv) else { return };
        self.ckpt.adopt_cert(&plan.cert);
        self.machine = machine;
        self.sessions = sessions;
        // Repopulate the dedup index from the snapshotted sessions: a
        // client retrying an op committed below the watermark still gets
        // its byte-identical reply instead of a re-execution.
        for (client, seq, result) in self.sessions.iter() {
            self.executed.insert(OpId { client, seq }, result.clone());
        }
        self.log.reset_to(plan.log_base);
        self.replay_ring = SeqWindow::with_base(plan.cert.seq + 1);
        self.exec_upto = plan.cert.seq;
        if self.durability && plan.cert.seq > self.durable_stable_seq {
            self.durable_stable_seq = plan.cert.seq;
            self.durable.push(DurableEvent::Stable {
                cert: plan.cert.clone(),
                log_len: plan.log_base,
                snapshot: Arc::clone(&plan.snapshot),
            });
        }
        // Replay the voted suffix: every slot here matched at f+1
        // responders, at least one of them honest.
        for (slot, batch) in &plan.suffix {
            self.replay_commit(*slot, batch);
        }
        self.slots.retire_below(self.exec_upto + 1);
        self.stored_prepares.retire_below(self.exec_upto + 1);
        self.next_seq = self.next_seq.max(self.exec_upto + 1);
        if plan.view > self.view {
            // The cluster moved on while we were down; join its view.
            self.view = plan.view;
            self.vc_sent_for = self.vc_sent_for.max(plan.view);
            self.vc_votes.retain(|r| r.view > plan.view);
        }
        self.ckpt.note_transfer();
        let tokens: Vec<u64> =
            self.pending.iter_canonical().into_iter().map(|(op, _)| op_token(op)).collect();
        for token in tokens {
            out.arm(self.patience, TIMER_REQUEST, token);
        }
        self.try_execute(out);
    }

    /// Applies one committed batch without emitting client replies —
    /// shared by CST suffix install and WAL recovery replay.
    fn replay_commit(&mut self, seq: u64, batch: &Arc<Batch>) {
        let digest = batch.digest();
        self.exec_upto = seq;
        for req in batch.requests() {
            let log_seq = self.log.committed() + 1;
            let result = Arc::new(self.machine.apply(&req.payload));
            self.log.push(LogEntry { seq: log_seq, op: req.op, digest });
            self.executed.insert(req.op, result.clone());
            if self.ckpt.enabled() {
                self.sessions.note(req.op.client, req.op.seq, result);
            }
            self.pending.remove(&req.op);
            self.assigned.insert(req.op, seq);
        }
        if self.ckpt.enabled() {
            self.replay_ring.insert(seq, batch.clone());
        }
        if self.durability {
            self.durable.push(DurableEvent::Commit { seq, batch: batch.clone() });
        }
    }

    /// Ingests a [`MinBftMsg::CheckpointHint`] — the FillGap escalation
    /// for counters older than the resend ring. A verified certificate is
    /// adopted (state transfer chases it from the dispatch tail) and the
    /// responder's counter stream is resynced at its ring base; lying
    /// about one's own `ring_base` only disrupts one's own stream.
    fn handle_checkpoint_hint(
        &mut self,
        from: Endpoint,
        cert: CheckpointCert,
        ring_base: u64,
        sender: ReplicaId,
    ) {
        if from != Endpoint::Replica(sender) {
            return; // a replica may resync only its own stream
        }
        if self.ckpt.adopt_cert(&cert) {
            self.apply_truncation();
        } else if !self.ckpt.verify_cert(&cert) {
            return; // forged hint (adopt_cert counted the rejection)
        }
        let s = sender.0 as usize;
        let Some(accepted) = self.accepted.get_mut(s) else { return };
        if ring_base > 0 && *accepted + 1 < ring_base {
            // Counters below the ring can never be resent; skip to the
            // resendable range so the stream un-wedges. The certificate
            // (plus state transfer) covers what those counters ordered.
            *accepted = ring_base - 1;
            // bounds: accepted and ingress share length n; s indexed accepted above
            self.ingress[s].retire_below(ring_base);
            self.ckpt.note_hint_resync();
        }
    }

    fn prepared_uncommitted(&self) -> Vec<(u64, Arc<Batch>)> {
        // Every slot still in the window is unexecuted (execution retires).
        self.slots
            .iter()
            .filter(|(_, s)| s.prepare_ok)
            .filter_map(|(seq, s)| s.batch.clone().map(|b| (seq, b)))
            .collect()
    }

    /// The vote round for `view`, created on first use (linear scan: view
    /// changes are rare and the live round count is tiny).
    fn vc_round_mut(&mut self, view: u64) -> &mut VcRound {
        let n = self.n as usize;
        let idx = match self.vc_votes.iter().position(|r| r.view == view) {
            Some(i) => i,
            None => {
                self.vc_votes.push(VcRound::new(view, n));
                self.vc_votes.len() - 1
            }
        };
        // bounds: idx is either a position() hit or the just-pushed last element
        &mut self.vc_votes[idx]
    }

    fn record_vc_vote(
        &mut self,
        view: u64,
        from: ReplicaId,
        prepared: PreparedSet,
        executed_upto: u64,
        cert_seq: u64,
    ) {
        self.vc_round_mut(view).record(from, prepared, executed_upto, cert_seq);
    }

    fn start_view_change(&mut self, new_view: u64, out: &mut Outbox<MinBftMsg>) {
        if new_view <= self.view || self.vc_sent_for >= new_view {
            return;
        }
        self.vc_sent_for = new_view;
        self.vc_demanded_at = self.now;
        let prepared = self.prepared_uncommitted();
        self.record_vc_vote(
            new_view,
            self.id,
            prepared.clone(),
            self.exec_upto,
            self.ckpt.stable_seq(),
        );
        out.broadcast(
            self.n,
            self.id,
            MinBftMsg::ReqViewChange {
                new_view,
                from: self.id,
                prepared,
                executed_upto: self.exec_upto,
                cert: self.ckpt.stable().cloned().map(Box::new),
            },
        );
        self.maybe_install_view(new_view, out);
    }

    fn handle_req_view_change(
        &mut self,
        new_view: u64,
        from: ReplicaId,
        prepared: Vec<(u64, Arc<Batch>)>,
        executed_upto: u64,
        cert: Option<CheckpointCert>,
        out: &mut Outbox<MinBftMsg>,
    ) {
        if new_view <= self.view {
            return;
        }
        // A carried certificate is verified before it influences anything
        // (see the PBFT twin): fresh-and-valid is adopted, valid-but-stale
        // still floors at its seq, forged contributes 0.
        let cert_seq = match cert {
            Some(c) => {
                if self.ckpt.adopt_cert(&c) {
                    self.apply_truncation();
                    c.seq
                } else if self.ckpt.verify_cert(&c) {
                    c.seq
                } else {
                    0
                }
            }
            None => 0,
        };
        self.record_vc_vote(new_view, from, prepared, executed_upto, cert_seq);
        // In MinBFT a single valid suspicion suffices to join, because
        // UI certificates make false accusations non-amplifiable; we
        // require our own patience timer OR f+1 votes, matching the
        // conservative reading:
        if self.vc_round_mut(new_view).count >= (self.f + 1) as usize {
            self.start_view_change(new_view, out);
        }
        self.maybe_install_view(new_view, out);
    }

    fn maybe_install_view(&mut self, new_view: u64, out: &mut Outbox<MinBftMsg>) {
        let Some(round) = self.vc_votes.iter().find(|r| r.view == new_view) else { return };
        if round.count < (self.f + 1) as usize || self.primary_of(new_view) != self.id {
            return;
        }
        // Votes merge in voter-id order (canonical and deterministic).
        let mut repropose: BTreeMap<u64, Arc<Batch>> = BTreeMap::new();
        for entries in round.votes.iter().flatten() {
            for (seq, batch) in entries {
                repropose.entry(*seq).or_insert_with(|| batch.clone());
            }
        }
        for (seq, batch) in self.prepared_uncommitted() {
            repropose.entry(seq).or_insert(batch);
        }
        // Fill sequence holes with no-op batches above the vote quorum's
        // execution floor (see the PBFT twin for the argument; watermark
        // claims are trusted as honest per [`VcRound`]'s trust boundary —
        // with MinBFT's f+1 quorums, full defense of the view change
        // itself needs the USIG-signed view-change messages of the
        // original protocol, a ROADMAP next step). The *certified* floor
        // is proven, though: prepared entries at or below a verified
        // checkpoint certificate are certified history and are discarded.
        let cert_floor = round.cert_floor;
        if cert_floor > 0 {
            repropose.retain(|seq, _| *seq > cert_floor);
        }
        let floor = round.exec_floor.max(self.exec_upto).max(cert_floor);
        let max_seq = repropose.keys().max().copied().unwrap_or(self.exec_upto);
        for seq in floor.saturating_add(1)..max_seq {
            repropose.entry(seq).or_insert_with(|| noop_batch(seq));
        }
        self.view = new_view;
        self.vc_votes.retain(|r| r.view > new_view);
        // Fresh proposals start above both the re-proposed entries and the
        // quorum's execution floor (see the PBFT twin: a laggard primary
        // proposing below its peers' watermarks stalls every pending op).
        self.next_seq = self.next_seq.max(max_seq + 1).max(floor.saturating_add(1));
        let covered: BTreeSet<OpId> =
            repropose.values().flat_map(|b| b.requests().iter().map(|r| r.op)).collect();
        let pending: Vec<Arc<Request>> = self
            .pending
            .iter_canonical()
            .into_iter()
            .map(|(_, r)| r)
            .filter(|r| !covered.contains(&r.op) && !self.executed.contains_key(&r.op))
            .cloned()
            .collect();
        for chunk in pending.chunks(self.batcher.batch_size()) {
            let seq = self.next_seq;
            self.next_seq += 1;
            repropose.insert(seq, Arc::new(Batch::new(chunk.to_vec())));
        }
        let preprepares: Vec<(u64, Arc<Batch>)> =
            repropose.iter().map(|(s, b)| (*s, b.clone())).collect();
        out.broadcast(self.n, self.id, MinBftMsg::NewView { view: new_view, preprepares });
        // Re-propose everything with fresh UIs as the new primary.
        self.install_as_primary(repropose, out);
        self.replay_future(out);
    }

    fn install_as_primary(
        &mut self,
        entries: BTreeMap<u64, Arc<Batch>>,
        out: &mut Outbox<MinBftMsg>,
    ) {
        for (seq, batch) in entries {
            if self.slots.is_retired(seq) {
                continue; // already executed: dead, not resurrectable
            }
            let digest = batch.digest();
            let Ok(ui) = self.usig.create_ui(&prepare_bytes(self.view, seq, &digest)) else {
                return;
            };
            let prep = MinBftMsg::Prepare { view: self.view, seq, batch: batch.clone(), ui };
            self.stored_prepares.insert(seq, prep.clone());
            self.record_sent(ui.counter, prep.clone());
            for r in batch.requests() {
                self.assigned.insert(r.op, seq);
            }
            let me = self.id;
            // lint: allow(ingress-expect) -- is_retired() continued the loop just above
            let slot = self.slots.get_or_insert_default(seq).expect("not retired");
            // Reset stale votes from the old view.
            slot.commits.clear();
            slot.batch = Some(batch);
            slot.digest = Some(digest);
            slot.prepare_ok = true;
            slot.commits.insert(me);
            slot.sent_commit = true;
            out.broadcast(self.n, self.id, prep);
        }
        self.try_execute(out);
    }

    fn handle_new_view(&mut self, view: u64, from: Endpoint, out: &mut Outbox<MinBftMsg>) {
        if view <= self.view {
            return;
        }
        if from != Endpoint::Replica(self.primary_of(view)) {
            return;
        }
        // Adopt the view; actual agreement re-runs via the primary's fresh
        // PREPAREs (which carry verifiable UIs). Clear stale votes.
        self.view = view;
        self.vc_sent_for = self.vc_sent_for.max(view);
        self.vc_votes.retain(|r| r.view > view);
        for slot in self.slots.values_mut() {
            slot.commits.clear();
            slot.prepare_ok = false;
            slot.sent_commit = false;
        }
        let tokens: Vec<u64> =
            self.pending.iter_canonical().into_iter().map(|(op, _)| op_token(op)).collect();
        for token in tokens {
            out.arm(self.patience, TIMER_REQUEST, token);
        }
        self.replay_future(out);
    }

    /// Re-dispatches messages stashed for views we had not installed yet.
    fn replay_future(&mut self, out: &mut Outbox<MinBftMsg>) {
        let current = self.view;
        let stash = std::mem::take(&mut self.future);
        for msg in stash {
            let msg_view = match &msg {
                MinBftMsg::Prepare { view, .. } => *view,
                MinBftMsg::Commit(vote) => vote.view,
                _ => continue,
            };
            if msg_view > current {
                self.future.push(msg); // still ahead of us
            } else {
                // From a generic peer endpoint: dispatch re-checks everything.
                self.dispatch(Endpoint::Replica(self.primary_of(msg_view)), msg, out);
            }
        }
    }

    fn dispatch(&mut self, from: Endpoint, msg: MinBftMsg, out: &mut Outbox<MinBftMsg>) {
        match msg {
            MinBftMsg::Request(req) => self.handle_request(req, out),
            MinBftMsg::Prepare { view, seq, batch, ui } => {
                if view > self.view {
                    // The installing NewView may still be in flight. Do NOT
                    // consume the sender's UI counter yet — stash verbatim.
                    self.future.push(MinBftMsg::Prepare { view, seq, batch, ui });
                    return;
                }
                // The cached batch digest is what the UI certifies; content
                // is checked against it once, in handle_prepare.
                let digest = batch.digest();
                let msg_copy = MinBftMsg::Prepare { view, seq, batch: batch.clone(), ui };
                let sender = self.primary_of(view);
                if self.ingest_ui(sender, &ui, &prepare_bytes(view, seq, &digest), &msg_copy, out) {
                    self.handle_prepare(view, seq, batch, ui, out);
                    self.drain_ready(out);
                }
            }
            MinBftMsg::Commit(vote) => {
                if vote.view > self.view {
                    self.future.push(MinBftMsg::Commit(vote));
                    return;
                }
                let digest = vote.batch.digest();
                let msg_copy = MinBftMsg::Commit(vote.clone());
                if self.ingest_ui(
                    vote.from,
                    &vote.ui,
                    &commit_bytes(vote.view, vote.seq, &digest, vote.primary_ui.counter),
                    &msg_copy,
                    out,
                ) {
                    self.handle_commit(
                        vote.view,
                        vote.seq,
                        vote.batch.clone(),
                        vote.primary_ui,
                        vote.from,
                        out,
                    );
                    self.drain_ready(out);
                }
            }
            MinBftMsg::ReqViewChange { new_view, from: voter, prepared, executed_upto, cert } => {
                let cert = cert.map(|c| *c);
                self.handle_req_view_change(new_view, voter, prepared, executed_upto, cert, out)
            }
            MinBftMsg::NewView { view, preprepares } => {
                let _ = preprepares; // re-proposals arrive as fresh PREPAREs
                self.handle_new_view(view, from, out)
            }
            MinBftMsg::FillGap { sender, from_counter, upto, from: requester } => {
                // Serve only gaps in OUR stream, with a bounded burst; the
                // resends are the original UI-certified messages, which the
                // requester re-verifies and ingests in counter order.
                if sender == self.id && requester != self.id {
                    if from_counter < self.sent_ui.base() {
                        // The gap starts below the resend ring: those
                        // counters are gone and USIGs never re-sign them.
                        // Hand over the stable certificate (if any) so the
                        // requester resyncs and escalates to state
                        // transfer instead of backing off forever.
                        if let Some(cert) = self.ckpt.stable() {
                            out.send(
                                Endpoint::Replica(requester),
                                MinBftMsg::CheckpointHint {
                                    cert: Box::new(cert.clone()),
                                    ring_base: self.sent_ui.base(),
                                    from: self.id,
                                },
                            );
                        }
                    }
                    let hi = upto.min(from_counter.saturating_add(GAP_FILL_BURST - 1));
                    for counter in from_counter..=hi {
                        if let Some(m) = self.sent_ui.get(counter) {
                            out.send(Endpoint::Replica(requester), m.clone());
                        }
                    }
                }
            }
            MinBftMsg::CheckpointHint { cert, ring_base, from: sender } => {
                self.handle_checkpoint_hint(from, *cert, ring_base, sender)
            }
            MinBftMsg::Checkpoint(voucher) => self.handle_checkpoint(*voucher, out),
            MinBftMsg::StateRequest { have, from: requester } => {
                self.handle_state_request(have, requester, out)
            }
            MinBftMsg::StateResponse(st) => self.handle_state_response(*st, out),
            MinBftMsg::Reply(_) => {}
        }
    }

    /// Routes one input to its handler, emitting effects into `staged`.
    fn dispatch_input(&mut self, input: Input<MinBftMsg>, staged: &mut Outbox<MinBftMsg>) {
        match input {
            Input::Message { from, msg } => self.dispatch(from, msg, staged),
            Input::Timer { kind: TIMER_REQUEST, token } => {
                if self.pending.contains_key(&token_op(token)) {
                    // Demand at most one new view per full patience period,
                    // escalating past a demanded-but-never-installed one
                    // (see the PBFT twin of this branch for the full
                    // rationale: the escalation un-wedges a CrashAt firing
                    // mid view-change; the rate limit prevents the per-op
                    // timers from outrunning installation entirely).
                    if self.now >= self.vc_demanded_at.saturating_add(self.patience) {
                        let next = self.view.max(self.vc_sent_for) + 1;
                        self.start_view_change(next, staged);
                    }
                    staged.arm(self.patience, TIMER_REQUEST, token);
                }
            }
            Input::Timer { kind: TIMER_FLUSH, token } => {
                if self.batcher.on_flush_timer(token) && self.is_primary() {
                    self.flush_batch(staged);
                }
            }
            Input::Timer { .. } => {}
        }
        if self.ckpt.enabled() {
            // Any input may have revealed a stable certificate ahead of us
            // (post-wipe, or crashed past retention): chase it,
            // rate-limited by the CST backoff.
            self.maybe_request_transfer(staged);
        }
    }

    fn drain_ready(&mut self, out: &mut Outbox<MinBftMsg>) {
        while let Some(msg) = self.take_ready() {
            match msg {
                MinBftMsg::Prepare { view, seq, batch, ui } => {
                    self.handle_prepare(view, seq, batch, ui, out)
                }
                MinBftMsg::Commit(vote) => self.handle_commit(
                    vote.view,
                    vote.seq,
                    vote.batch.clone(),
                    vote.primary_ui,
                    vote.from,
                    out,
                ),
                _ => {}
            }
        }
    }
    // lint: end
}

// The node-facing input surface: every simulator event enters here.
// lint: ingress
impl ReplicaNode for MinBftReplica {
    type Msg = MinBftMsg;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_input(&mut self, input: Input<MinBftMsg>, now: u64, out: &mut Outbox<MinBftMsg>) {
        self.now = now;
        if self.script.crashed_at(now) {
            self.in_outage = true;
            return;
        }
        if self.in_outage {
            // Fail-recover: revive the per-op patience chains killed while
            // the outage swallowed their firings (see the PBFT twin).
            self.in_outage = false;
            let tokens: Vec<u64> =
                self.pending.iter_canonical().into_iter().map(|(op, _)| op_token(op)).collect();
            for token in tokens {
                out.arm(self.patience, TIMER_REQUEST, token);
            }
        }
        if self.script.unconstrained() {
            // Fast path: a correct replica's outputs are never gated, so
            // handlers write the caller's outbox directly.
            self.dispatch_input(input, out);
            return;
        }
        let mut staged = Outbox::new();
        self.dispatch_input(input, &mut staged);
        if self.script.sends_at(now) {
            out.msgs.extend(staged.msgs);
        }
        out.timers.extend(staged.timers);
    }

    fn committed_log(&self) -> &[LogEntry] {
        self.log.entries()
    }

    fn committed_seq(&self) -> u64 {
        self.log.committed()
    }

    fn wipe(&mut self) {
        // Rejuvenation: volatile protocol + application state goes; the
        // replica's identity, keys, fault script, the stable certificate
        // (trusted persistent store), and — crucially — the USIG stay.
        // The trusted counter is hardware-monotonic: it survives software
        // rejuvenation, and resuming it (rather than resetting) is what
        // keeps the replica's counter stream acceptable to peers.
        self.view = 0;
        self.ingress = (0..self.n).map(|_| SeqWindow::with_base(1)).collect();
        self.future = Vec::new();
        self.accepted = vec![0; self.n as usize];
        self.sent_ui = SeqWindow::with_base(1);
        self.gap_req_at = vec![0; self.n as usize];
        self.next_seq = 1;
        self.slots = SeqWindow::with_base(1);
        self.assigned = OpIndex::new();
        self.stored_prepares = SeqWindow::with_base(1);
        self.executed = OpIndex::new();
        self.pending = OpIndex::new();
        self.log = CommittedLog::new();
        self.exec_upto = 0;
        self.machine = KvStore::new();
        self.replay_ring = SeqWindow::with_base(1);
        self.cst.clear();
        self.sessions.clear();
        self.durable.clear();
        self.vc_votes.clear();
        self.vc_sent_for = 0;
        self.vc_demanded_at = 0;
        self.in_outage = false;
        let (size, flush) = (self.batcher.batch_size(), self.batcher.flush_cycles());
        self.batcher = Batcher::new();
        self.batcher.configure(size, flush);
        self.ckpt.wipe();
    }

    fn checkpoint_stats(&self) -> CheckpointStats {
        self.ckpt.stats()
    }

    fn checkpoint_history(&self) -> &[(u64, [u8; 32])] {
        self.ckpt.history()
    }

    fn make_request(req: Arc<Request>) -> MinBftMsg {
        MinBftMsg::Request(req)
    }

    fn as_reply(msg: &MinBftMsg) -> Option<&Reply> {
        match msg {
            MinBftMsg::Reply(r) => Some(r),
            _ => None,
        }
    }

    fn state_digest(&self) -> [u8; 32] {
        self.machine.state_digest()
    }

    fn current_view(&self) -> u64 {
        self.view
    }

    fn enable_durability(&mut self) {
        self.durability = true;
    }

    fn drain_durable(&mut self, out: &mut Vec<DurableEvent>) {
        out.append(&mut self.durable);
    }

    fn recover(&mut self, state: RecoveredState) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        // Resume the USIG at or above the highest persisted counter: the
        // restarted process must never certify two statements under one
        // counter value. Anchoring the resend ring *above* that watermark
        // makes peers' FillGap requests for pre-crash counters escalate
        // to CheckpointHint (exactly as after a rejuvenation wipe), so
        // their streams resync instead of wedging.
        if state.usig_counter > 0 {
            self.usig.resume(state.usig_counter);
            self.sent_ui = SeqWindow::with_base(state.usig_counter + 1);
        }
        if let Some((cert, log_len, snapshot)) = state.snapshot {
            // Disk contents are ingress: the certificate and snapshot are
            // re-verified exactly as a transfer response would be.
            if self.ckpt.verify_cert(&cert) && snapshot_matches(&cert, &snapshot) {
                if let Some((kv, sessions)) = decode_image(&snapshot) {
                    if let Some(machine) = KvStore::install_snapshot(kv) {
                        self.ckpt.adopt_cert(&cert);
                        self.machine = machine;
                        self.sessions = sessions;
                        for (client, seq, result) in self.sessions.iter() {
                            self.executed.insert(OpId { client, seq }, result.clone());
                        }
                        self.log.reset_to(log_len);
                        self.replay_ring = SeqWindow::with_base(cert.seq + 1);
                        self.exec_upto = cert.seq;
                        self.slots.retire_below(cert.seq + 1);
                        self.stored_prepares.retire_below(cert.seq + 1);
                        report.installed_seq = cert.seq;
                    }
                }
            }
        }
        // Replay the contiguous commit run above the snapshot; the first
        // gap or garbage batch abandons the rest to state transfer.
        for (seq, batch) in &state.commits {
            if *seq <= self.exec_upto {
                continue;
            }
            if *seq != self.exec_upto + 1 || batch.is_empty() || !batch.verify() {
                break;
            }
            self.replay_commit(*seq, batch);
            report.replayed += 1;
        }
        self.next_seq = self.next_seq.max(self.exec_upto + 1);
        report.committed = self.log.committed();
        report
    }
}
// lint: end

/// A MinBFT cluster of `2f+1` replicas sharing a provisioned key ring.
#[derive(Debug)]
pub struct MinBftCluster {
    nodes: Vec<MinBftReplica>,
    f: u32,
}

impl MinBftCluster {
    /// Builds the cluster for `config.f` with SEC-DED-protected USIGs.
    pub fn new(config: &RunConfig) -> Self {
        Self::with_protection(config, CounterProtection::SecDed)
    }

    /// Builds the cluster with an explicit USIG counter protection level.
    pub fn with_protection(config: &RunConfig, protection: CounterProtection) -> Self {
        let n = 2 * config.f + 1;
        // One provisioning pass (key derivation + HMAC key-schedule
        // precomputation) shared by every replica via Arc.
        let ring = KeyRing::provision(config.seed, n);
        let keys = CkptKeys::provision(config.seed, n as usize);
        MinBftCluster {
            nodes: (0..n)
                .map(|i| {
                    let mut r =
                        MinBftReplica::new(ReplicaId(i), config.f, ring.clone(), protection);
                    r.set_batching(config.batch_size, config.batch_flush);
                    r.set_patience(config.request_patience);
                    r.set_checkpointing(config.checkpoint_interval, Arc::clone(&keys));
                    r
                })
                .collect(),
            f: config.f,
        }
    }

    /// Fault threshold.
    pub fn f(&self) -> u32 {
        self.f
    }
}

impl Cluster for MinBftCluster {
    type Node = MinBftReplica;

    fn nodes_mut(&mut self) -> &mut [MinBftReplica] {
        &mut self.nodes
    }

    fn nodes(&self) -> &[MinBftReplica] {
        &self.nodes
    }

    fn into_nodes(self) -> Vec<MinBftReplica> {
        self.nodes
    }

    fn reply_quorum(&self) -> usize {
        (self.f + 1) as usize
    }

    fn protocol_name(&self) -> &'static str {
        "minbft"
    }

    fn correct_replicas(&self) -> Vec<ReplicaId> {
        self.nodes.iter().filter(|n| !n.script().is_byzantine()).map(|n| n.id()).collect()
    }

    fn set_script(&mut self, id: ReplicaId, script: ReplicaScript) {
        self.nodes[id.0 as usize].set_script(script);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Behavior;
    use crate::runner::{run, RunConfig};

    fn config(f: u32, clients: u32, reqs: u64, seed: u64) -> RunConfig {
        RunConfig { f, clients, requests_per_client: reqs, seed, ..Default::default() }
    }

    #[test]
    fn fault_free_commits_with_2f_plus_1() {
        let cfg = config(1, 2, 10, 21);
        let mut cluster = MinBftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.n_replicas, 3, "MinBFT needs only 2f+1 replicas");
        assert_eq!(report.committed, 20);
        assert!(report.safety_ok);
    }

    #[test]
    fn cheaper_than_pbft_in_messages() {
        let cfg = config(1, 1, 10, 23);
        let minbft = run(&mut MinBftCluster::new(&cfg), &cfg);
        let pbft = run(&mut crate::pbft::PbftCluster::new(&cfg), &cfg);
        assert!(
            minbft.messages_per_commit() < pbft.messages_per_commit(),
            "minbft {:.1} msgs/op must beat pbft {:.1}",
            minbft.messages_per_commit(),
            pbft.messages_per_commit()
        );
    }

    #[test]
    fn batching_amortizes_usig_certificates() {
        let unbatched = config(1, 8, 8, 71);
        let batched = RunConfig { batch_size: 8, batch_flush: 100, ..unbatched.clone() };
        let mut c1 = MinBftCluster::new(&unbatched);
        let r1 = run(&mut c1, &unbatched);
        let mut c2 = MinBftCluster::new(&batched);
        let r2 = run(&mut c2, &batched);
        assert_eq!(r1.committed, 64);
        assert_eq!(r2.committed, 64);
        assert!(r1.safety_ok && r2.safety_ok);
        let macs = |c: &MinBftCluster| -> u64 {
            c.nodes()
                .iter()
                .map(|n| {
                    let (i, v) = n.mac_ops();
                    i + v
                })
                .sum()
        };
        let (m1, m2) = (macs(&c1), macs(&c2));
        assert!(m2 * 2 < m1, "batch=8 must cut MAC operations by well over half: {m2} vs {m1}");
        assert_eq!(c1.nodes()[0].state_digest(), c2.nodes()[0].state_digest());
    }

    #[test]
    fn pipelined_clients_amortize_usig_further() {
        // Same client count, batch 8: windowed clients raise concurrent
        // demand, so batches actually fill and per-op USIG work drops.
        let base = RunConfig {
            batch_size: 8,
            batch_flush: 100,
            link_occupancy: 8,
            ..config(1, 4, 16, 77)
        };
        let piped_cfg = RunConfig { client_window: 4, ..base.clone() };
        let mut c1 = MinBftCluster::new(&base);
        let r1 = run(&mut c1, &base);
        let mut c2 = MinBftCluster::new(&piped_cfg);
        let r2 = run(&mut c2, &piped_cfg);
        assert_eq!(r1.committed, 64);
        assert_eq!(r2.committed, 64);
        assert!(r1.safety_ok && r2.safety_ok);
        let macs = |c: &MinBftCluster| -> u64 {
            c.nodes()
                .iter()
                .map(|n| {
                    let (i, v) = n.mac_ops();
                    i + v
                })
                .sum()
        };
        assert!(
            macs(&c2) < macs(&c1),
            "fuller batches mean fewer USIG ops: {} vs {}",
            macs(&c2),
            macs(&c1)
        );
        assert_eq!(c1.nodes()[0].state_digest(), c2.nodes()[0].state_digest());
    }

    #[test]
    fn forged_ui_equivocation_is_contained_with_batching() {
        let cfg = RunConfig {
            batch_size: 4,
            batch_flush: 80,
            max_cycles: 8_000_000,
            ..config(1, 4, 4, 73)
        };
        let mut cluster = MinBftCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::ForgeUi.into());
        let report = run(&mut cluster, &cfg);
        assert!(report.safety_ok, "forged batch certificates must not split logs");
        assert_eq!(report.committed, 16);
    }

    #[test]
    fn tolerates_silent_backup() {
        let cfg = config(1, 1, 10, 25);
        let mut cluster = MinBftCluster::new(&cfg);
        cluster.set_script(ReplicaId(2), Behavior::Silent.into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 10);
        assert!(report.safety_ok);
    }

    #[test]
    fn primary_crash_recovers_via_view_change() {
        let cfg = RunConfig { max_cycles: 8_000_000, ..config(1, 1, 8, 27) };
        let mut cluster = MinBftCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(150).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 8);
        assert!(report.safety_ok);
        assert!(cluster.nodes()[1].view() >= 1, "view advanced past the dead primary");
    }

    #[test]
    fn crash_at_mid_view_change_still_elects_and_commits() {
        // Same cascading-failure regression as PBFT's: the view-0 primary
        // crashes, then the view-1 primary's CrashAt fires mid view-change.
        // With f=2 (n=5) the remaining f+1=3 replicas are exactly a commit
        // quorum: view 2 must install and the pending batches must commit.
        let cfg = RunConfig {
            batch_size: 4,
            batch_flush: 80,
            max_cycles: 30_000_000,
            ..config(2, 4, 4, 85)
        };
        let mut cluster = MinBftCluster::new(&cfg);
        // Crash the primary *during* the proposal burst (cycle 40) so
        // batches are genuinely pending when the failover chain starts.
        cluster.set_script(ReplicaId(0), Behavior::CrashAt(40).into());
        cluster.set_script(ReplicaId(1), Behavior::CrashAt(1525).into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 16, "pending batches must commit after the double failover");
        assert!(report.safety_ok);
        for id in 2..5usize {
            assert!(
                cluster.nodes()[id].view() >= 2,
                "replica {id} stuck at view {}",
                cluster.nodes()[id].view()
            );
        }
    }

    #[test]
    fn forged_ui_equivocation_is_contained() {
        let cfg = RunConfig { max_cycles: 8_000_000, ..config(1, 2, 6, 29) };
        let mut cluster = MinBftCluster::new(&cfg);
        cluster.set_script(ReplicaId(0), Behavior::ForgeUi.into());
        let report = run(&mut cluster, &cfg);
        assert!(report.safety_ok, "forged certificates must not split the log");
        assert_eq!(report.committed, 12, "correct replicas still make progress");
    }

    #[test]
    fn message_loss_recovered_by_prepare_retransmission() {
        let cfg = RunConfig { drop_rate: 0.05, max_cycles: 8_000_000, ..config(1, 1, 8, 31) };
        let mut cluster = MinBftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 8);
        assert!(report.safety_ok);
    }

    #[test]
    fn f2_scales_to_five_replicas() {
        let cfg = config(2, 1, 6, 33);
        let mut cluster = MinBftCluster::new(&cfg);
        cluster.set_script(ReplicaId(4), Behavior::Crashed.into());
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.n_replicas, 5);
        assert_eq!(report.committed, 6);
        assert!(report.safety_ok);
    }

    #[test]
    fn fillgap_below_ring_escalates_via_checkpoint_hint() {
        // Satellite path of the checkpoint subsystem: a FillGap for
        // counters older than the resend ring cannot be served (USIGs
        // never re-sign), so the responder hands over its stable
        // certificate and the requester resyncs the stream and escalates
        // to state transfer. The ring never ages out in short runs, so
        // the retirement is staged white-box here.
        let cfg = RunConfig { checkpoint_interval: 3, ..config(1, 2, 12, 29) };
        let mut cluster = MinBftCluster::new(&cfg);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 24);

        // Responder side: age replica 1's ring past its early counters
        // and ask for a gap entirely below the new base.
        let ring_base = 5;
        let requester = ReplicaId(2);
        let responder = &mut cluster.nodes_mut()[1];
        responder.sent_ui.retire_below(ring_base);
        let mut out = Outbox::new();
        responder.on_input(
            Input::Message {
                from: Endpoint::Replica(requester),
                msg: MinBftMsg::FillGap {
                    sender: ReplicaId(1),
                    from_counter: 1,
                    upto: 4,
                    from: requester,
                },
            },
            10_000,
            &mut out,
        );
        let hint = out
            .msgs
            .iter()
            .find_map(|(to, m)| match m {
                MinBftMsg::CheckpointHint { cert, ring_base: rb, from } => {
                    Some((*to, cert.clone(), *rb, *from))
                }
                _ => None,
            })
            .expect("a gap below the ring must answer with a checkpoint hint");
        let (to, cert, rb, from) = hint;
        assert_eq!(to, Endpoint::Replica(requester));
        assert_eq!(from, ReplicaId(1));
        assert_eq!(rb, ring_base);
        assert!(cert.seq > 0, "the hint must carry the stable certificate");

        // Requester side: a freshly wiped replica ingests the hint — it
        // must resync the responder's stream at the ring base and chase
        // the certificate with a state-transfer request.
        let node = &mut cluster.nodes_mut()[2];
        node.wipe();
        let mut out = Outbox::new();
        node.on_input(
            Input::Message {
                from: Endpoint::Replica(ReplicaId(1)),
                msg: MinBftMsg::CheckpointHint {
                    cert: cert.clone(),
                    ring_base,
                    from: ReplicaId(1),
                },
            },
            10_001,
            &mut out,
        );
        assert_eq!(node.accepted[1], ring_base - 1, "stream resynced at the ring base");
        assert!(
            out.msgs.iter().any(|(_, m)| matches!(m, MinBftMsg::StateRequest { .. })),
            "the adopted certificate must trigger a state-transfer request"
        );

        // A spoofed hint (relayed for someone else's stream) is inert.
        let accepted_before = node.accepted[0];
        let mut out = Outbox::new();
        node.on_input(
            Input::Message {
                from: Endpoint::Replica(ReplicaId(1)),
                msg: MinBftMsg::CheckpointHint { cert, ring_base: 400, from: ReplicaId(0) },
            },
            10_002,
            &mut out,
        );
        assert_eq!(node.accepted[0], accepted_before, "only the sender may resync its stream");
    }

    #[test]
    fn plain_counter_protection_is_available_for_e2() {
        let cfg = config(1, 1, 4, 35);
        let mut cluster = MinBftCluster::with_protection(&cfg, CounterProtection::Plain);
        let report = run(&mut cluster, &cfg);
        assert_eq!(report.committed, 4);
        assert_eq!(cluster.nodes()[0].usig.protection_name(), "plain");
    }

    /// Every queued event memcpys the whole message enum through the
    /// timing-wheel arena, so the enum's size is a hot-path constant. The
    /// rare bulky variants (commit votes with two 48-byte UIs, checkpoint
    /// vouchers/certs, state transfers) are boxed to pin the ceiling at
    /// the hot agreement variants; this test keeps it pinned.
    #[test]
    fn message_enums_stay_small() {
        use std::mem::size_of;
        // MinBFT's ceiling is Prepare { u64, u64, Arc<Batch>, UI } — two
        // words of header, one pointer, one 48-byte certificate.
        assert!(size_of::<MinBftMsg>() <= 88, "MinBftMsg grew to {}", size_of::<MinBftMsg>());
        assert!(
            size_of::<CommitVote>() > size_of::<MinBftMsg>(),
            "boxing CommitVote is earning its keep"
        );
        assert!(
            size_of::<crate::pbft::PbftMsg>() <= 88,
            "PbftMsg grew to {}",
            size_of::<crate::pbft::PbftMsg>()
        );
        assert!(
            size_of::<crate::passive::PassiveMsg>() <= 88,
            "PassiveMsg grew to {}",
            size_of::<crate::passive::PassiveMsg>()
        );
    }
}
