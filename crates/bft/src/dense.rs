//! Dense replica-state containers for the protocol hot path.
//!
//! PR 3 profiling left per-message replica bookkeeping as the largest
//! non-crypto cost on the mesh cells (~5–7 µs/op): every protocol phase
//! touched `BTreeMap`s keyed by sequence numbers and [`OpId`]s, paying a
//! pointer-chasing tree walk plus a node allocation per insert. The three
//! containers here replace those maps with flat storage:
//!
//! * [`SeqWindow`] — a ring-buffer map for *dense, monotonically
//!   advancing* sequence-number keys (agreement slots, stored proposals,
//!   hold-back queues). Anchored at a low-watermark: entries below it are
//!   *retired* and can never be resurrected, which doubles as slot GC.
//! * [`OpIndex`] — an open-addressed hash index for *sparse* [`OpId`]
//!   keys (exactly-once dedup, op→slot assignment, pending watchlists).
//!   Linear probing with tombstones, power-of-two capacity, vendored so
//!   the workspace keeps its no-external-deps invariant.
//! * [`ReplicaSet`] — a bitset over replica ids for quorum tallies
//!   (prepare/commit certificates), replacing per-vote `BTreeSet` nodes
//!   with a single word.
//!
//! All three are deterministic: iteration order is a pure function of the
//! operation history, never of pointer values or random hash seeds.

use crate::api::{ClientId, OpId};

// ---------------------------------------------------------------- SeqWindow

/// A map from `u64` sequence numbers to `T`, backed by a ring buffer and
/// anchored at a *low-watermark* (`base`).
///
/// Keys at or above `base` live in a power-of-two ring indexed by
/// `seq & mask`; the window grows automatically when a key beyond the
/// current capacity arrives. Keys below `base` are **retired**: lookups
/// miss, and inserts are rejected (`get_or_insert_default` returns
/// `None`). Advancing the watermark with [`retire_below`](Self::retire_below)
/// drops every entry underneath it — this is how replicas garbage-collect
/// executed agreement slots while structurally refusing to resurrect them.
#[derive(Debug, Clone)]
pub struct SeqWindow<T> {
    /// Ring storage; capacity is always a power of two (or zero).
    ring: Vec<Option<T>>,
    /// Low-watermark: keys below this are retired.
    base: u64,
    /// One past the highest key ever occupied (iteration bound).
    high: u64,
    /// Occupied entry count.
    len: usize,
}

impl<T> Default for SeqWindow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SeqWindow<T> {
    /// An empty window with watermark 0.
    pub fn new() -> Self {
        SeqWindow { ring: Vec::new(), base: 0, high: 0, len: 0 }
    }

    /// An empty window whose watermark starts at `base` (keys below it are
    /// retired from the start — e.g. USIG counters start at 1).
    pub fn with_base(base: u64) -> Self {
        SeqWindow { ring: Vec::new(), base, high: base, len: 0 }
    }

    /// The low-watermark: the smallest key that can still be stored.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// True when `seq` is below the watermark (rejected forever).
    pub fn is_retired(&self, seq: u64) -> bool {
        seq < self.base
    }

    /// Occupied entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> u64 {
        self.ring.len() as u64 - 1
    }

    /// Grows the ring so `seq` is representable alongside every live key.
    fn grow_for(&mut self, seq: u64) {
        let needed = (seq - self.base + 1).max(8);
        let new_cap = needed.next_power_of_two() as usize;
        let mut ring: Vec<Option<T>> = Vec::with_capacity(new_cap);
        ring.resize_with(new_cap, || None);
        let old = std::mem::replace(&mut self.ring, ring);
        if !old.is_empty() {
            let old_mask = old.len() as u64 - 1;
            let new_mask = self.mask();
            for (i, slot) in old.into_iter().enumerate() {
                if slot.is_some() {
                    // Recover the key: within the old window, the low bits
                    // identify the slot and base..high brackets the key.
                    let mut key = (self.base & !old_mask) + i as u64;
                    if key < self.base {
                        key += old_mask + 1;
                    }
                    debug_assert!(key >= self.base && key < self.high);
                    self.ring[(key & new_mask) as usize] = slot;
                }
            }
        }
    }

    fn in_window(&self, seq: u64) -> bool {
        !self.ring.is_empty() && seq >= self.base && seq - self.base < self.ring.len() as u64
    }

    // The window probe path runs once per protocol message; `rsoc_lint`
    // keeps it allocation-free (growth lives in `grow_for`, off-path).
    // lint: hot-path
    /// Shared-ref lookup; `None` for vacant or retired keys.
    pub fn get(&self, seq: u64) -> Option<&T> {
        if !self.in_window(seq) {
            return None;
        }
        self.ring[(seq & self.mask()) as usize].as_ref()
    }

    /// Mutable lookup; `None` for vacant or retired keys.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        if !self.in_window(seq) {
            return None;
        }
        let mask = self.mask();
        self.ring[(seq & mask) as usize].as_mut()
    }

    /// Inserts `value` at `seq`, returning the previous occupant. Retired
    /// keys are rejected (`None`, value dropped).
    pub fn insert(&mut self, seq: u64, value: T) -> Option<T> {
        if seq < self.base {
            return None;
        }
        if !self.in_window(seq) {
            self.grow_for(seq);
        }
        let mask = self.mask();
        let old = self.ring[(seq & mask) as usize].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        self.high = self.high.max(seq + 1);
        old
    }

    /// Removes and returns the entry at `seq` (watermark unchanged).
    pub fn remove(&mut self, seq: u64) -> Option<T> {
        if !self.in_window(seq) {
            return None;
        }
        let mask = self.mask();
        let old = self.ring[(seq & mask) as usize].take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The occupied entry at `seq`, default-initializing a vacant slot.
    /// Returns `None` — and stores nothing — when `seq` is retired.
    pub fn get_or_insert_default(&mut self, seq: u64) -> Option<&mut T>
    where
        T: Default,
    {
        if seq < self.base {
            return None;
        }
        if !self.in_window(seq) {
            self.grow_for(seq);
        }
        let mask = self.mask();
        let slot = &mut self.ring[(seq & mask) as usize];
        if slot.is_none() {
            *slot = Some(T::default());
            self.len += 1;
            self.high = self.high.max(seq + 1);
        }
        slot.as_mut()
    }
    // lint: end

    /// Advances the watermark to `new_base`, dropping every entry below it.
    /// A watermark never moves backwards.
    pub fn retire_below(&mut self, new_base: u64) {
        if new_base <= self.base {
            return;
        }
        if !self.ring.is_empty() {
            let mask = self.mask();
            let stop = new_base.min(self.high);
            for seq in self.base..stop {
                if self.ring[(seq & mask) as usize].take().is_some() {
                    self.len -= 1;
                }
            }
        }
        self.base = new_base;
        self.high = self.high.max(new_base);
    }

    /// Iterates occupied `(seq, &value)` pairs in ascending sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let mask = if self.ring.is_empty() { 0 } else { self.mask() };
        (self.base..self.high).filter_map(move |seq| {
            if self.ring.is_empty() {
                return None;
            }
            self.ring[(seq & mask) as usize].as_ref().map(|v| (seq, v))
        })
    }

    /// Iterates occupied values mutably, in ring order (NOT sequence
    /// order) — for order-insensitive passes like vote resets.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.ring.iter_mut().filter_map(|s| s.as_mut())
    }
}

// ------------------------------------------------------------------ OpIndex

/// Hashes an [`OpId`] to a well-mixed 64-bit value (SplitMix64 finalizer
/// over the packed identity). Fixed, seedless: determinism across runs and
/// processes is a feature here (sweep JSON must be byte-identical).
#[inline]
fn hash_op(op: OpId) -> u64 {
    let mut x = ((op.client.0 as u64) << 48) ^ op.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Debug, Clone)]
enum Bucket<V> {
    Empty,
    /// A deleted entry: probe chains continue through it, inserts reuse it.
    Tombstone,
    Full(OpId, V),
}

/// An open-addressed hash map from [`OpId`] to `V` — the replica-side
/// index for exactly-once dedup (`executed`), op→slot assignment
/// (`assigned`), and backup watchlists (`pending`).
///
/// Linear probing over a power-of-two table with tombstone deletion:
/// removals leave a tombstone so later probes keep walking, and the
/// next insert along the chain reuses the grave. The table
/// rehashes (dropping all tombstones) when live + dead entries exceed 7/8
/// of capacity. No SipHash, no random state: the same operation history
/// always produces the same table — callers may iterate, but any
/// result that feeds protocol decisions must be order-canonicalized
/// first (sorted), which the view-change paths do.
#[derive(Debug, Clone)]
pub struct OpIndex<V> {
    buckets: Vec<Bucket<V>>,
    /// Live entries.
    len: usize,
    /// Tombstones (graves still blocking probe chains).
    graves: usize,
}

impl<V> Default for OpIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> OpIndex<V> {
    /// An empty index (allocates on first insert).
    pub fn new() -> Self {
        OpIndex { buckets: Vec::new(), len: 0, graves: 0 }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    /// Grows (or initially allocates) to `cap` buckets and rehashes every
    /// live entry, dropping tombstones.
    fn rehash_to(&mut self, cap: usize) {
        let mut buckets: Vec<Bucket<V>> = Vec::with_capacity(cap);
        buckets.resize_with(cap, || Bucket::Empty);
        let old = std::mem::replace(&mut self.buckets, buckets);
        self.graves = 0;
        let mask = self.mask();
        for b in old {
            if let Bucket::Full(op, v) = b {
                let mut i = (hash_op(op) as usize) & mask;
                loop {
                    if matches!(self.buckets[i], Bucket::Empty) {
                        self.buckets[i] = Bucket::Full(op, v);
                        break;
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    fn ensure_capacity(&mut self) {
        if self.buckets.is_empty() {
            self.rehash_to(16);
        } else if (self.len + self.graves + 1) * 8 > self.buckets.len() * 7 {
            // Live entries drive the new size; tombstones evaporate in the
            // rehash, so a delete-heavy workload shrinks back naturally.
            let cap = ((self.len + 1) * 2).next_power_of_two().max(16);
            self.rehash_to(cap);
        }
    }

    // The probe chains run once per request lookup; `rsoc_lint` keeps
    // them allocation-free (growth lives in `rehash_to`, off-path).
    // lint: hot-path
    /// Index of `op`'s bucket if present.
    fn find(&self, op: OpId) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (hash_op(op) as usize) & mask;
        loop {
            match &self.buckets[i] {
                Bucket::Empty => return None,
                Bucket::Full(k, _) if *k == op => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Shared-ref lookup.
    pub fn get(&self, op: &OpId) -> Option<&V> {
        self.find(*op).map(|i| match &self.buckets[i] {
            Bucket::Full(_, v) => v,
            _ => unreachable!("find returns full buckets"),
        })
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, op: &OpId) -> Option<&mut V> {
        let i = self.find(*op)?;
        match &mut self.buckets[i] {
            Bucket::Full(_, v) => Some(v),
            _ => unreachable!("find returns full buckets"),
        }
    }

    /// True when `op` has a live entry.
    pub fn contains_key(&self, op: &OpId) -> bool {
        self.find(*op).is_some()
    }

    /// Inserts `op → value`, returning the displaced value if any. The
    /// first tombstone along the probe chain is reused for new keys.
    pub fn insert(&mut self, op: OpId, value: V) -> Option<V> {
        self.ensure_capacity();
        let mask = self.mask();
        let mut i = (hash_op(op) as usize) & mask;
        let mut grave: Option<usize> = None;
        loop {
            match &mut self.buckets[i] {
                Bucket::Full(k, v) if *k == op => {
                    return Some(std::mem::replace(v, value));
                }
                Bucket::Tombstone => {
                    if grave.is_none() {
                        grave = Some(i);
                    }
                    i = (i + 1) & mask;
                }
                Bucket::Empty => {
                    let slot = match grave {
                        Some(g) => {
                            self.graves -= 1;
                            g
                        }
                        None => i,
                    };
                    self.buckets[slot] = Bucket::Full(op, value);
                    self.len += 1;
                    return None;
                }
                Bucket::Full(..) => i = (i + 1) & mask,
            }
        }
    }

    /// Removes `op`, leaving a tombstone so probe chains stay intact.
    pub fn remove(&mut self, op: &OpId) -> Option<V> {
        let i = self.find(*op)?;
        let old = std::mem::replace(&mut self.buckets[i], Bucket::Tombstone);
        self.len -= 1;
        self.graves += 1;
        match old {
            Bucket::Full(_, v) => Some(v),
            _ => unreachable!("find returns full buckets"),
        }
    }

    // lint: end

    /// Iterates live `(OpId, &V)` entries in *table* order — deterministic
    /// for a given operation history, but NOT canonical. Callers whose
    /// results depend on order must sort (see `OpIndex` docs).
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &V)> {
        self.buckets.iter().filter_map(|b| match b {
            Bucket::Full(k, v) => Some((*k, v)),
            _ => None,
        })
    }

    /// Live `(OpId, &V)` entries sorted by `(client, seq)` — the canonical
    /// order for protocol decisions (view-change re-batching).
    pub fn iter_canonical(&self) -> Vec<(OpId, &V)> {
        let mut all: Vec<(OpId, &V)> = self.iter().collect();
        all.sort_unstable_by_key(|(op, _)| (op.client.0, op.seq));
        all
    }
}

/// Packs an `OpId` into the `u64` timer-token space (client in the high
/// 32 bits). Client sequence numbers stay far below 2^32 in any finite
/// run; the debug assert enforces the assumption instead of letting a
/// truncated token silently dead-letter a patience timer.
pub fn op_token(op: OpId) -> u64 {
    debug_assert!(op.seq >> 32 == 0, "client sequence exceeds the token space");
    ((op.client.0 as u64) << 32) | (op.seq & 0xFFFF_FFFF)
}

/// Recovers the [`OpId`] a timer token was minted from.
pub fn token_op(token: u64) -> OpId {
    OpId { client: ClientId((token >> 32) as u32), seq: token & 0xFFFF_FFFF }
}

// --------------------------------------------------------------- ReplicaSet

/// A set of replica ids as a 64-bit mask — quorum tallies without a heap
/// allocation per vote. Supports clusters up to 64 replicas (f ≤ 21 for
/// PBFT), far beyond any on-chip configuration in the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaSet(u64);

impl ReplicaSet {
    /// The empty set.
    pub fn new() -> Self {
        ReplicaSet(0)
    }

    /// Adds replica `id`; returns `true` when newly inserted.
    ///
    /// # Panics
    /// Debug-panics for ids ≥ 64.
    pub fn insert(&mut self, id: crate::api::ReplicaId) -> bool {
        debug_assert!(id.0 < 64, "ReplicaSet supports up to 64 replicas");
        let bit = 1u64 << (id.0 & 63);
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// True when `id` is in the set.
    pub fn contains(&self, id: crate::api::ReplicaId) -> bool {
        self.0 & (1u64 << (id.0 & 63)) != 0
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True for the empty set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.0 = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ClientId, ReplicaId};

    fn op(client: u32, seq: u64) -> OpId {
        OpId { client: ClientId(client), seq }
    }

    // ---------------- SeqWindow ----------------

    #[test]
    fn seq_window_basic_ops() {
        let mut w: SeqWindow<String> = SeqWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.insert(3, "three".into()), None);
        assert_eq!(w.insert(1, "one".into()), None);
        assert_eq!(w.get(3).map(String::as_str), Some("three"));
        assert_eq!(w.get(2), None);
        assert_eq!(w.insert(3, "THREE".into()).as_deref(), Some("three"));
        assert_eq!(w.len(), 2);
        assert_eq!(w.remove(1).as_deref(), Some("one"));
        assert_eq!(w.remove(1), None);
        assert_eq!(w.len(), 1);
        *w.get_mut(3).unwrap() = "iii".into();
        assert_eq!(w.get(3).map(String::as_str), Some("iii"));
    }

    #[test]
    fn seq_window_grows_preserving_entries() {
        let mut w: SeqWindow<u64> = SeqWindow::new();
        for seq in 1..=200 {
            w.insert(seq, seq * 10);
        }
        assert_eq!(w.len(), 200);
        for seq in 1..=200 {
            assert_eq!(w.get(seq), Some(&(seq * 10)), "seq {seq} lost in growth");
        }
        let collected: Vec<u64> = w.iter().map(|(s, _)| s).collect();
        let expected: Vec<u64> = (1..=200).collect();
        assert_eq!(collected, expected, "iteration is ascending and complete");
    }

    #[test]
    fn seq_window_watermark_rejects_not_resurrects() {
        let mut w: SeqWindow<u32> = SeqWindow::new();
        for seq in 1..=10 {
            w.insert(seq, seq as u32);
        }
        w.retire_below(6);
        assert_eq!(w.base(), 6);
        assert_eq!(w.len(), 5);
        for seq in 1..=5 {
            assert!(w.is_retired(seq));
            assert_eq!(w.get(seq), None, "retired entry visible");
            // A late message for a retired slot must be rejected, not
            // resurrected into a fresh slot.
            assert_eq!(w.insert(seq, 99), None);
            assert_eq!(w.get(seq), None, "retired slot resurrected");
            assert!(w.get_or_insert_default(seq).is_none());
        }
        for seq in 6..=10 {
            assert_eq!(w.get(seq), Some(&(seq as u32)));
        }
        // Watermark never regresses.
        w.retire_below(2);
        assert_eq!(w.base(), 6);
    }

    #[test]
    fn seq_window_reuses_ring_slots_after_retirement() {
        let mut w: SeqWindow<u64> = SeqWindow::new();
        // Sliding-window usage: the ring capacity must stay bounded by the
        // window span, not the total key count.
        for seq in 0..10_000u64 {
            w.insert(seq, seq);
            if seq >= 8 {
                w.retire_below(seq - 7);
            }
        }
        assert!(w.ring.len() <= 32, "ring grew unbounded: {}", w.ring.len());
        assert_eq!(w.len(), 8, "final window spans keys 9992..=9999");
    }

    #[test]
    fn seq_window_with_base_and_default_entry() {
        let mut w: SeqWindow<Vec<u8>> = SeqWindow::with_base(1);
        assert!(w.get_or_insert_default(0).is_none(), "below initial base");
        w.get_or_insert_default(4).unwrap().push(7);
        assert_eq!(w.get(4), Some(&vec![7]));
        w.get_or_insert_default(4).unwrap().push(8);
        assert_eq!(w.get(4), Some(&vec![7, 8]));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn seq_window_values_mut_visits_all() {
        let mut w: SeqWindow<u32> = SeqWindow::new();
        for seq in [2u64, 5, 9] {
            w.insert(seq, 1);
        }
        for v in w.values_mut() {
            *v += 1;
        }
        assert_eq!(w.iter().map(|(_, v)| *v).sum::<u32>(), 6);
    }

    // ---------------- OpIndex ----------------

    #[test]
    fn op_index_basic_ops() {
        let mut m: OpIndex<u64> = OpIndex::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&op(1, 1)), None);
        assert_eq!(m.insert(op(1, 1), 10), None);
        assert_eq!(m.insert(op(2, 1), 20), None);
        assert_eq!(m.insert(op(1, 1), 11), Some(10));
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&op(1, 1)));
        assert!(!m.contains_key(&op(3, 1)));
        *m.get_mut(&op(2, 1)).unwrap() += 5;
        assert_eq!(m.get(&op(2, 1)), Some(&25));
        assert_eq!(m.remove(&op(2, 1)), Some(25));
        assert_eq!(m.remove(&op(2, 1)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn op_index_tombstones_are_reused_and_chains_survive() {
        let mut m: OpIndex<u64> = OpIndex::new();
        // Build a cluster of keys, then punch holes in it: lookups past the
        // graves must still succeed (probe chains run through tombstones).
        for seq in 1..=12 {
            m.insert(op(7, seq), seq);
        }
        let cap_before = m.buckets.len();
        for seq in [2u64, 5, 8, 11] {
            assert_eq!(m.remove(&op(7, seq)), Some(seq));
        }
        assert_eq!(m.graves, 4, "removals leave tombstones");
        for seq in [1u64, 3, 4, 6, 7, 9, 10, 12] {
            assert_eq!(m.get(&op(7, seq)), Some(&seq), "chain broken at {seq}");
        }
        // Re-inserting reuses graves instead of consuming fresh buckets.
        for seq in [2u64, 5, 8, 11] {
            m.insert(op(7, seq), seq * 100);
        }
        assert_eq!(m.graves, 0, "graves reused by inserts");
        assert_eq!(m.buckets.len(), cap_before, "no growth needed");
        for seq in 1..=12 {
            assert!(m.contains_key(&op(7, seq)));
        }
    }

    #[test]
    fn op_index_growth_rehash_preserves_entries_and_drops_graves() {
        let mut m: OpIndex<u64> = OpIndex::new();
        for seq in 1..=500 {
            m.insert(op((seq % 13) as u32, seq), seq);
            if seq % 3 == 0 {
                m.remove(&op((seq % 13) as u32, seq));
            }
        }
        let live = 500 - 500 / 3;
        assert_eq!(m.len(), live);
        assert!(m.buckets.len().is_power_of_two());
        assert!(m.len() * 8 <= m.buckets.len() * 7, "load factor respected");
        for seq in 1..=500u64 {
            let key = op((seq % 13) as u32, seq);
            if seq % 3 == 0 {
                assert!(!m.contains_key(&key));
            } else {
                assert_eq!(m.get(&key), Some(&seq), "entry lost in rehash");
            }
        }
    }

    #[test]
    fn op_index_iteration_order_does_not_leak_into_results() {
        // Two different operation histories with the same final content:
        // raw iteration order may differ, but any order-canonicalized
        // result (and all lookups) must be identical.
        let keys: Vec<OpId> = (1..=50).map(|s| op((s % 5) as u32, s)).collect();
        let mut a: OpIndex<u64> = OpIndex::new();
        for k in &keys {
            a.insert(*k, k.seq);
        }
        let mut b: OpIndex<u64> = OpIndex::new();
        // History B: insert in reverse with interleaved delete/re-insert
        // churn (different tombstone layout, possibly different capacity).
        for k in keys.iter().rev() {
            b.insert(*k, 0);
            b.remove(k);
            b.insert(*k, k.seq);
        }
        assert_eq!(a.len(), b.len());
        let canon = |m: &OpIndex<u64>| -> Vec<(u32, u64, u64)> {
            m.iter_canonical().iter().map(|(k, v)| (k.client.0, k.seq, **v)).collect()
        };
        assert_eq!(canon(&a), canon(&b), "canonical views must agree");
        for k in &keys {
            assert_eq!(a.get(k), b.get(k));
        }
    }

    #[test]
    fn op_token_roundtrip() {
        let k = op(0xDEAD, 0xBEEF);
        assert_eq!(token_op(op_token(k)), k);
    }

    // ---------------- ReplicaSet ----------------

    #[test]
    fn replica_set_tallies_votes() {
        let mut s = ReplicaSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ReplicaId(3)));
        assert!(!s.insert(ReplicaId(3)), "duplicate vote not double-counted");
        assert!(s.insert(ReplicaId(0)));
        assert!(s.insert(ReplicaId(63)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(ReplicaId(63)));
        assert!(!s.contains(ReplicaId(7)));
        s.clear();
        assert!(s.is_empty());
    }
}
