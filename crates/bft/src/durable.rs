//! The durability boundary between a protocol core and a persistent
//! store.
//!
//! The sans-io cores never touch a disk, exactly as they never touch a
//! socket: a core *emits* [`DurableEvent`]s describing what must survive
//! a crash, the embedding plane (the `rsoc_transport` serve loop, via
//! `rsoc_store`) writes them **before** dispatching the outbox — so no
//! execution ack leaves the replica until the commit it acknowledges is
//! on disk — and on restart the plane feeds the replayed
//! [`RecoveredState`] back through [`ReplicaNode::recover`].
//!
//! The simulator never enables durability, so these hooks are
//! byte-invisible there: `drain_durable` on a core that was never
//! [`enable_durability`]'d is a no-op on an empty buffer.
//!
//! Three event classes cover the three kinds of state a restart must not
//! lose:
//!
//! * [`DurableEvent::Commit`] — one agreement slot's committed batch.
//!   Replaying the contiguous run of these from the last snapshot
//!   reconstructs the committed log, the dedup index, and the state
//!   machine byte-identically (log-entry digests are recomputed from the
//!   batch, which carries its own digest preimage — see
//!   [`Batch`]).
//! * [`DurableEvent::Stable`] — a stable [`CheckpointCert`] with the
//!   snapshot it certifies. Recovery re-*verifies* the certificate and
//!   the snapshot digest before installing: disk contents are ingress,
//!   not trusted state.
//! * [`DurableEvent::UsigCounter`] — the MinBFT USIG's issued counter.
//!   The USIG abstracts a *hardware-monotonic* counter; a process
//!   restart must resume it at or above the highest value ever certified
//!   or the replica would sign two messages under one counter value —
//!   the exact equivocation the hybrid exists to prevent.
//!
//! [`enable_durability`]: crate::api::ReplicaNode::enable_durability
//! [`ReplicaNode::recover`]: crate::api::ReplicaNode::recover

use crate::api::Batch;
use crate::checkpoint::CheckpointCert;
use std::sync::Arc;

/// One fact a protocol core needs persisted before its outbox for the
/// same input is dispatched.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableEvent {
    /// Agreement slot `seq` committed `batch` (slot domain, not log
    /// domain: one event per batch, not per request).
    Commit {
        /// Agreement sequence of the slot.
        seq: u64,
        /// The committed batch (shared with the slot, never copied).
        batch: Arc<Batch>,
    },
    /// A checkpoint certificate became stable with a locally held
    /// snapshot: persist both and let the store garbage-collect the WAL
    /// prefix the snapshot covers.
    Stable {
        /// The stable certificate.
        cert: CheckpointCert,
        /// Committed-log length at the certificate watermark.
        log_len: u64,
        /// The certified snapshot bytes.
        snapshot: Arc<Vec<u8>>,
    },
    /// The USIG issued counter value `0..=counter` (MinBFT only).
    UsigCounter(u64),
}

/// What a store replayed from disk, handed to
/// [`ReplicaNode::recover`](crate::api::ReplicaNode::recover) before the
/// serve loop starts.
///
/// Everything here is **ingress**: the WAL may have been truncated,
/// bit-flipped, or swapped wholesale. The store already dropped records
/// that fail CRC/framing; the core re-verifies the certificate and
/// snapshot digest and replays only the contiguous commit run — anything
/// else is abandoned to collaborative state transfer.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Newest snapshot that decoded cleanly: certificate, log length at
    /// the watermark, snapshot bytes.
    pub snapshot: Option<(CheckpointCert, u64, Vec<u8>)>,
    /// Commit records replayed from the WAL, in write order.
    pub commits: Vec<(u64, Arc<Batch>)>,
    /// Highest persisted USIG counter (0 when none was recorded).
    pub usig_counter: u64,
}

impl RecoveredState {
    /// True when nothing at all was recovered (first boot, or a WAL so
    /// damaged that no record survived).
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.commits.is_empty() && self.usig_counter == 0
    }
}

/// What [`recover`](crate::api::ReplicaNode::recover) actually applied —
/// printed by `rsoc-serve` so the chaos harness can see a restart
/// replayed its WAL rather than silently starting fresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Watermark of the installed snapshot certificate (0 if none
    /// installed).
    pub installed_seq: u64,
    /// Commit records replayed into the core.
    pub replayed: u64,
    /// Total committed operations after recovery.
    pub committed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovered_state_emptiness() {
        assert!(RecoveredState::default().is_empty());
        let with_counter = RecoveredState { usig_counter: 3, ..Default::default() };
        assert!(!with_counter.is_empty());
    }
}
