//! # rsoc-bft — replication protocols for tiles on a chip
//!
//! §II-A of the paper: "Active replication masks faults through building a
//! deterministic replicated state machine, composed of replicas of
//! identical functionality, which execute an agreement protocol, e.g. Paxos
//! or PBFT. The number of required replicas is typically 2f+1/3f+1 in order
//! to tolerate f faults. Interestingly, several works make use of hardware
//! hybrids as root-of-trust to simplify these protocols ... requiring only
//! 2f+1 replicas to tolerate f Byzantine ones."
//!
//! This crate implements, message-precisely and over a deterministic
//! discrete-event harness:
//!
//! * [`pbft`] — PBFT (Castro & Liskov): 3f+1 replicas, three-phase commit,
//!   view change on primary failure;
//! * [`minbft`] — MinBFT (Veronese et al.): 2f+1 replicas, two-phase commit
//!   anchored in the [`rsoc_hybrid::Usig`] trusted component;
//! * [`passive`] — primary-backup (passive) replication with a heartbeat
//!   failure detector — cheap but with a visible failover window;
//! * [`checkpoint`] — certified checkpoints (f+1 MAC'd vouchers),
//!   collaborative state transfer, and checkpoint-keyed log truncation,
//!   shared by all three protocols (enabled via
//!   [`runner::RunConfig::checkpoint_interval`]);
//! * [`adversary`] — composable, time-phased fault scripts (crash/recover
//!   windows, partitions, link degradation, DoS floods, stale replay),
//!   the named one-fault [`adversary::Behavior`] presets that lower onto
//!   them, and the safety/liveness [`adversary::ScenarioOracle`];
//! * [`runner`] — the closed-loop client harness, latency models, message
//!   accounting, the cross-replica safety checker, and the scenario
//!   interpreter ([`runner::run_scenario`]).
//!
//! Experiments **E3** (replica/message cost), **E4** (passive vs active)
//! and the protocol halves of **E5–E7** run on this crate.
//!
//! ## Example: MinBFT committing under a Byzantine backup
//!
//! ```
//! use rsoc_bft::adversary::Behavior;
//! use rsoc_bft::api::Cluster;
//! use rsoc_bft::minbft::MinBftCluster;
//! use rsoc_bft::runner::{RunConfig, run};
//!
//! let config = RunConfig::builder().f(1).clients(2).requests_per_client(5).seed(42).build();
//! let mut cluster = MinBftCluster::new(&config);
//! cluster.set_script(rsoc_bft::api::ReplicaId(2), Behavior::Silent.into());
//! let report = run(&mut cluster, &config);
//! assert!(report.safety_ok);
//! assert_eq!(report.committed, 10);
//! ```

pub mod adversary;
pub mod api;
pub mod broadcast;
pub mod checkpoint;
pub mod codec;
pub mod dense;
pub mod durable;
pub mod harness;
pub mod minbft;
pub mod passive;
pub mod pbft;
pub mod plane;
pub mod runner;
pub mod statemachine;

pub use adversary::{
    Behavior, Flood, LinkFault, OracleVerdict, Partition, ReplaySpec, ReplicaScript, Scenario,
    ScenarioOracle, Window,
};
pub use api::{ClientId, LogEntry, OpId, ReplicaId, Reply, Request};
pub use checkpoint::{CheckpointCert, CheckpointStats, CheckpointVoucher, CkptKeys};
pub use codec::{decode_frame, encode_frame, Wire, WIRE_VERSION};
pub use durable::{DurableEvent, RecoveredState, RecoveryReport};
pub use plane::{step_node, Clock, Transport};
pub use runner::{
    run, run_open_loop, run_scenario, OpenLoopReport, OpenLoopSpec, RunConfig, RunConfigBuilder,
    RunReport, ScenarioOutcome,
};
pub use statemachine::{CounterMachine, KvStore, StateMachine};
