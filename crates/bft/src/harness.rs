//! Stable facade over the run entry points and plane API.
//!
//! Experiments, campaign drivers, and external crates should import from
//! here: the facade re-exports the deterministic-harness entry points
//! ([`run`], [`run_scenario`]), their configuration ([`RunConfig`] and its
//! [builder](RunConfigBuilder)), the sans-io plane boundary ([`Clock`],
//! [`Transport`], [`step_node`]), and the deterministic client workload
//! ([`client_payload`]) behind one path that stays put while the
//! implementing modules evolve. `rsoc_bft::runner` and `rsoc_bft::plane`
//! remain public, but new call sites should prefer this module.

pub use crate::adversary::Scenario;
pub use crate::api::{Cluster, Endpoint, Input, Outbox, ReplicaId, ReplicaNode};
pub use crate::plane::{step_node, Clock, Transport};
pub use crate::runner::{
    check_safety, client_payload, run, run_scenario, LatencyModel, RunConfig, RunConfigBuilder,
    RunReport, ScenarioOutcome,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_builds_and_runs() {
        let config = RunConfig::builder().f(1).clients(1).requests_per_client(3).seed(5).build();
        let mut cluster = crate::pbft::PbftCluster::new(&config);
        let report = run(&mut cluster, &config);
        assert!(report.safety_ok);
        assert_eq!(report.committed, 3);
    }

    #[test]
    fn builder_defaults_match_struct_defaults() {
        let built = RunConfig::builder().build();
        let defaulted = RunConfig::default();
        // Spot-check every knob (RunConfig has no PartialEq because of the
        // latency model's float-free variants; compare field-wise).
        assert_eq!(built.f, defaulted.f);
        assert_eq!(built.clients, defaulted.clients);
        assert_eq!(built.requests_per_client, defaulted.requests_per_client);
        assert_eq!(built.seed, defaulted.seed);
        assert_eq!(built.client_timeout, defaulted.client_timeout);
        assert_eq!(built.max_cycles, defaulted.max_cycles);
        assert_eq!(built.drop_rate, defaulted.drop_rate);
        assert_eq!(built.payload_size, defaulted.payload_size);
        assert_eq!(built.batch_size, defaulted.batch_size);
        assert_eq!(built.batch_flush, defaulted.batch_flush);
        assert_eq!(built.link_occupancy, defaulted.link_occupancy);
        assert_eq!(built.client_window, defaulted.client_window);
        assert_eq!(built.request_patience, defaulted.request_patience);
        assert_eq!(built.checkpoint_interval, defaulted.checkpoint_interval);
    }

    #[test]
    fn builder_setters_override() {
        let config = RunConfig::builder()
            .f(2)
            .clients(6)
            .requests_per_client(40)
            .seed(99)
            .latency(LatencyModel::Fixed(7))
            .client_timeout(9_000)
            .max_cycles(500_000)
            .drop_rate(0.01)
            .payload_size(64)
            .batch_size(8)
            .batch_flush(150)
            .link_occupancy(3)
            .client_window(16)
            .request_patience(2_500)
            .checkpoint_interval(128)
            .build();
        assert_eq!(config.f, 2);
        assert_eq!(config.clients, 6);
        assert_eq!(config.requests_per_client, 40);
        assert_eq!(config.seed, 99);
        assert!(matches!(config.latency, LatencyModel::Fixed(7)));
        assert_eq!(config.client_timeout, 9_000);
        assert_eq!(config.max_cycles, 500_000);
        assert_eq!(config.drop_rate, 0.01);
        assert_eq!(config.payload_size, 64);
        assert_eq!(config.batch_size, 8);
        assert_eq!(config.batch_flush, 150);
        assert_eq!(config.link_occupancy, 3);
        assert_eq!(config.client_window, 16);
        assert_eq!(config.request_patience, 2_500);
        assert_eq!(config.checkpoint_interval, 128);
    }
}
