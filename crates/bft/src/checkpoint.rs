//! Certified checkpoints and collaborative state transfer (CST).
//!
//! The paper's resilience story depends on replicas being able to *leave
//! and come back*: rejuvenated or long-crashed tiles must re-join the
//! quorum with **verified** state, not be trusted or abandoned. This
//! module is the shared half of that machinery, used identically by all
//! three protocols so the certificate format cannot drift:
//!
//! * **Certified checkpoints** (Castro–Liskov): every `interval` executed
//!   watermark units (agreement slots for PBFT/MinBFT, log entries for
//!   passive) a replica digests its state machine and broadcasts a MAC'd
//!   [`CheckpointVoucher`]. `quorum` (= f+1) matching vouchers from
//!   distinct replicas form a [`CheckpointCert`] — proof that at least
//!   one *correct* replica vouches for that state.
//! * **Collaborative state transfer** (the febft CST shape): a replica
//!   that learns of a stable certificate ahead of its own execution
//!   requests `cert + snapshot + log suffix` from its peers, cross-checks
//!   `sha256(snapshot) == cert.digest` **before** installing, replays the
//!   suffix, and rejoins live agreement.
//! * **Log truncation**: once a checkpoint is stable, everything below it
//!   is recoverable via CST, so retention rings (MinBFT `sent_ui`,
//!   passive `shipped`, the per-slot batch replay ring) and the committed
//!   log itself retire below the watermark — replica memory is bounded
//!   by inter-checkpoint traffic instead of run length.
//!
//! With `interval == 0` the subsystem is **disabled** and byte-invisible:
//! no messages, no timers, no RNG draws, no report changes — the
//! fault-free benches (BENCH_2/4/5) stay byte-identical to the
//! checkpoint-less build.
//!
//! # Trust boundary
//!
//! Vouchers are HMAC'd under per-replica keys provisioned from the run
//! seed ([`CkptKeys`]) — the same trusted key-distribution model as the
//! USIG [`rsoc_hybrid::KeyRing`]. A Byzantine replica cannot forge
//! another replica's voucher (no key), and a lone colluder vouching for a
//! fabricated digest never reaches the f+1 quorum. The post-checkpoint
//! *log suffix* of a transfer is cross-checked against **f+1 distinct
//! responders** before any of it replays (PR 9): the snapshot below the
//! watermark is certificate-verified as before, and above it a slot's
//! batch installs only when f+1 responders carried the same batch digest
//! for that slot — at least one of them honest. A lying responder can
//! therefore at worst *stall* a recovering replica (deny it a quorum for
//! the tail) but never *diverge* it; the requester keeps re-requesting
//! on the [`CST_BACKOFF`] cadence until honest responders form the
//! quorum. The responder's `view` claim remains trusted liveness-only
//! metadata, like the view claims in view-change votes.

use crate::api::{Batch, ClientId, LogEntry, ReplicaId};
use rsoc_crypto::{sha256, MacKey, Tag};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cycles a recovering replica waits between state-transfer requests
/// (mirrors the MinBFT `FillGap` backoff: one outstanding round per
/// backoff window, not a request per received message).
pub const CST_BACKOFF: u64 = 200;

/// Domain-separated MAC input for a checkpoint voucher: the watermark and
/// the state digest. The voucher's sender is bound by *which* key MACs it
/// (per-replica keys), not by the payload.
fn voucher_bytes(seq: u64, digest: &[u8; 32]) -> [u8; 48] {
    let mut b = [0u8; 48];
    b[..8].copy_from_slice(b"CKPTVCH\0");
    b[8..16].copy_from_slice(&seq.to_le_bytes());
    b[16..48].copy_from_slice(digest);
    b
}

/// Per-replica checkpoint MAC keys, provisioned from the run seed at
/// cluster construction — the trusted-key-distribution model shared with
/// the USIG key ring (a real SoC would hold these in the tile's trusted
/// perimeter).
#[derive(Debug)]
pub struct CkptKeys {
    keys: Vec<MacKey>,
}

impl CkptKeys {
    /// Derives one key per replica from `seed`.
    pub fn provision(seed: u64, n: usize) -> Arc<Self> {
        let keys =
            (0..n).map(|i| MacKey::derive(seed ^ ((i as u64) << 17), "rsoc-ckpt-key")).collect();
        Arc::new(CkptKeys { keys })
    }

    /// Signs a voucher as replica `from`. (The simulator holds all keys in
    /// one ring; honest replicas only ever sign as themselves.)
    pub fn sign(&self, from: ReplicaId, seq: u64, digest: [u8; 32]) -> CheckpointVoucher {
        let tag = self.keys[from.0 as usize].mac(&voucher_bytes(seq, &digest));
        CheckpointVoucher { seq, digest, from, tag }
    }

    /// Verifies a voucher against its claimed sender's key.
    pub fn verify(&self, v: &CheckpointVoucher) -> bool {
        match self.keys.get(v.from.0 as usize) {
            Some(key) => key.verify(&voucher_bytes(v.seq, &v.digest), &v.tag),
            None => false,
        }
    }
}

/// One replica's MAC'd claim "my state machine digested to `digest` after
/// executing watermark `seq`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointVoucher {
    /// Watermark in the protocol's agreement domain (slot seq for
    /// PBFT/MinBFT, log seq for passive).
    pub seq: u64,
    /// State-machine digest at the watermark.
    pub digest: [u8; 32],
    /// Vouching replica.
    pub from: ReplicaId,
    /// HMAC over `(seq, digest)` under the sender's checkpoint key.
    pub tag: Tag,
}

/// `quorum` matching vouchers from distinct replicas: the stable-checkpoint
/// certificate. Verifiable by anyone holding [`CkptKeys`], including a
/// freshly wiped replica — which is what makes certificate-gated re-join
/// possible after rejuvenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointCert {
    /// Certified watermark.
    pub seq: u64,
    /// Certified state digest.
    pub digest: [u8; 32],
    /// The matching vouchers (distinct senders).
    pub vouchers: Vec<CheckpointVoucher>,
}

/// One peer's answer to a state-transfer request: the stable certificate,
/// the snapshot it certifies, and the committed tail above it.
///
/// The suffix is *slot-grained*: `(agreement seq, batch)` pairs starting
/// at `cert.seq + 1`, dense (passive uses its log seq as the slot
/// domain). Batches carry their own digest preimage (see
/// [`Batch`]), so a requester can compare suffixes from different
/// responders slot by slot and install only slots f+1 of them agree on —
/// the execution watermark and the per-request log entries are *derived*
/// from the voted slots, never taken from a responder's claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTransfer {
    /// The stable checkpoint certificate the snapshot is checked against.
    pub cert: CheckpointCert,
    /// KV snapshot; `sha256(snapshot)` must equal `cert.digest`.
    pub snapshot: Arc<Vec<u8>>,
    /// Committed log length at the certificate watermark — replayed
    /// entries are numbered `log_base + 1 ..` (cross-checked against
    /// f+1 responders like the suffix).
    pub log_base: u64,
    /// Committed `(slot seq, batch)` pairs above the watermark, dense
    /// from `cert.seq + 1` in slot order.
    pub suffix: Arc<Vec<(u64, Arc<Batch>)>>,
    /// Responder's current view/epoch — liveness-only metadata, adopted
    /// from the install quorum's maximum so a laggard joins the view the
    /// cluster moved to while it was down.
    pub view: u64,
    /// Responding replica.
    pub from: ReplicaId,
}

/// Counters the campaign rows record per replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Highest stable (certified) watermark known.
    pub stable_seq: u64,
    /// Completed state-transfer installs.
    pub transfers: u64,
    /// Vouchers/certificates/snapshots rejected by verification.
    pub rejected: u64,
    /// Times a `CheckpointHint` escalation fast-forwarded this replica
    /// past an aged-out retention ring (MinBFT only; stays 0 unless a
    /// run crosses the 512-counter ring).
    pub hint_resyncs: u64,
}

/// Own snapshot taken at a watermark, retained until a certificate forms
/// (then only the stable one is kept, for serving transfers).
#[derive(Debug)]
struct LocalCheckpoint {
    seq: u64,
    log_len: u64,
    snapshot: Arc<Vec<u8>>,
}

/// Vouchers collected for one not-yet-stable watermark, grouped by the
/// digest they vouch for (honest replicas produce one group; a colluder
/// vouching for a fabricated digest sits alone in its own group).
#[derive(Debug)]
struct PendingCheckpoint {
    seq: u64,
    groups: Vec<([u8; 32], Vec<CheckpointVoucher>)>,
}

/// Per-replica checkpoint state: voucher collection, certificate
/// formation, own-snapshot retention, and the transfer-request backoff.
/// Shared by all three protocols.
#[derive(Debug)]
pub struct CheckpointStore {
    me: ReplicaId,
    /// Vouchers needed for a certificate (f+1; 2-of-2 for passive).
    quorum: usize,
    /// Watermark units between checkpoints; 0 disables the subsystem.
    interval: u64,
    keys: Arc<CkptKeys>,
    pending: Vec<PendingCheckpoint>,
    local: Vec<LocalCheckpoint>,
    stable: Option<CheckpointCert>,
    /// Certificates formed/adopted this run, in order: `(seq, digest)`.
    history: Vec<(u64, [u8; 32])>,
    transfers: u64,
    rejected: u64,
    hint_resyncs: u64,
    /// Next cycle a state-transfer request may be sent.
    transfer_req_at: u64,
}

impl CheckpointStore {
    /// A store for replica `me`; `interval == 0` makes every operation a
    /// no-op (the disabled, byte-invisible configuration).
    pub fn new(me: ReplicaId, quorum: usize, interval: u64, keys: Arc<CkptKeys>) -> Self {
        CheckpointStore {
            me,
            quorum: quorum.max(1),
            interval,
            keys,
            pending: Vec::new(),
            local: Vec::new(),
            stable: None,
            history: Vec::new(),
            transfers: 0,
            rejected: 0,
            hint_resyncs: 0,
            transfer_req_at: 0,
        }
    }

    /// Whether checkpointing is enabled at all.
    pub fn enabled(&self) -> bool {
        self.interval > 0
    }

    /// True when execution just crossed a watermark boundary.
    pub fn due(&self, exec_seq: u64) -> bool {
        self.interval > 0 && exec_seq > 0 && exec_seq.is_multiple_of(self.interval)
    }

    /// The stable certificate, if any.
    pub fn stable(&self) -> Option<&CheckpointCert> {
        self.stable.as_ref()
    }

    /// Stable watermark (0 before the first certificate).
    pub fn stable_seq(&self) -> u64 {
        self.stable.as_ref().map(|c| c.seq).unwrap_or(0)
    }

    /// Certificates formed or adopted this run, in order.
    pub fn history(&self) -> &[(u64, [u8; 32])] {
        &self.history
    }

    /// Campaign counters.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            stable_seq: self.stable_seq(),
            transfers: self.transfers,
            rejected: self.rejected,
            hint_resyncs: self.hint_resyncs,
        }
    }

    /// Records this replica's own checkpoint at `seq`: retains the
    /// snapshot (for serving transfers once certified) and returns the
    /// signed voucher to broadcast. The caller also feeds the voucher back
    /// through [`record`](Self::record) to count itself.
    pub fn record_local(
        &mut self,
        seq: u64,
        digest: [u8; 32],
        log_len: u64,
        snapshot: Arc<Vec<u8>>,
    ) -> CheckpointVoucher {
        self.local.retain(|l| l.seq != seq);
        self.local.push(LocalCheckpoint { seq, log_len, snapshot });
        self.keys.sign(self.me, seq, digest)
    }

    // lint: ingress
    /// Ingests one voucher (adversarial input: sender, watermark, and tag
    /// are all attacker-controlled). Returns the newly stable watermark
    /// when this voucher completes a certificate.
    pub fn record(&mut self, v: &CheckpointVoucher) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        if !self.keys.verify(v) {
            self.rejected += 1;
            return None;
        }
        if v.seq <= self.stable_seq() {
            return None; // already covered by a stable certificate
        }
        let pending = match self.pending.iter_mut().find(|p| p.seq == v.seq) {
            Some(p) => p,
            None => {
                self.pending.push(PendingCheckpoint { seq: v.seq, groups: Vec::new() });
                // lint: allow(ingress-expect) -- entry pushed on the line above
                self.pending.last_mut().expect("just pushed")
            }
        };
        let group = match pending.groups.iter_mut().find(|(d, _)| *d == v.digest) {
            Some((_, g)) => g,
            None => {
                pending.groups.push((v.digest, Vec::new()));
                // lint: allow(ingress-expect) -- entry pushed on the line above
                &mut pending.groups.last_mut().expect("just pushed").1
            }
        };
        if group.iter().any(|existing| existing.from == v.from) {
            return None; // one voucher per replica per watermark
        }
        group.push(v.clone());
        if group.len() >= self.quorum {
            let cert =
                CheckpointCert { seq: v.seq, digest: v.digest, vouchers: std::mem::take(group) };
            self.make_stable(cert);
            return Some(self.stable_seq());
        }
        None
    }

    /// Verifies a full certificate: `quorum` vouchers from distinct
    /// senders, each MAC-valid and matching the certificate's watermark
    /// and digest. This is what makes a certificate self-contained — a
    /// wiped replica can validate one with nothing but its keys.
    pub fn verify_cert(&self, cert: &CheckpointCert) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut seen = 0u64;
        let mut distinct = 0usize;
        for v in &cert.vouchers {
            if v.seq != cert.seq || v.digest != cert.digest || !self.keys.verify(v) {
                return false;
            }
            if v.from.0 >= 64 {
                return false;
            }
            let bit = 1u64 << v.from.0;
            if seen & bit == 0 {
                seen |= bit;
                distinct += 1;
            }
        }
        distinct >= self.quorum
    }

    /// Adopts a certificate learned from a peer (FillGap answers, view
    /// changes, transfer responses). Verified before adoption; a bad
    /// certificate bumps `rejected`. Returns `true` if it advanced the
    /// stable watermark.
    pub fn adopt_cert(&mut self, cert: &CheckpointCert) -> bool {
        if cert.seq <= self.stable_seq() {
            return false;
        }
        if !self.verify_cert(cert) {
            if self.enabled() {
                self.rejected += 1;
            }
            return false;
        }
        self.make_stable(cert.clone());
        true
    }
    // lint: end

    fn make_stable(&mut self, cert: CheckpointCert) {
        let seq = cert.seq;
        self.history.push((seq, cert.digest));
        self.stable = Some(cert);
        self.pending.retain(|p| p.seq > seq);
        // Keep the snapshot the certificate covers (if we took one) plus
        // any newer ones still awaiting their own certificates — those are
        // exactly the snapshots future `make_stable` calls will need.
        self.local.retain(|l| l.seq >= seq);
    }

    /// Log length at the stable watermark, known only if this replica took
    /// that checkpoint itself — the bound its committed log and retention
    /// rings truncate below.
    pub fn stable_log_len(&self) -> Option<u64> {
        let stable = self.stable.as_ref()?;
        self.local.iter().find(|l| l.seq == stable.seq).map(|l| l.log_len)
    }

    /// The transfer a peer can serve: stable certificate plus the snapshot
    /// it certifies. `None` while no certificate is stable or the snapshot
    /// predates this replica's own participation (post-wipe).
    pub fn serve(&self) -> Option<(&CheckpointCert, u64, Arc<Vec<u8>>)> {
        let stable = self.stable.as_ref()?;
        let local = self.local.iter().find(|l| l.seq == stable.seq)?;
        Some((stable, local.log_len, Arc::clone(&local.snapshot)))
    }

    /// Whether this replica is behind the stable checkpoint — committed
    /// material below the watermark has been truncated cluster-wide, so
    /// only state transfer can close the gap.
    pub fn behind(&self, exec_seq: u64) -> bool {
        self.stable_seq() > exec_seq
    }

    /// Rate limit for state-transfer requests: at most one broadcast per
    /// [`CST_BACKOFF`] window.
    pub fn may_request(&mut self, now: u64) -> bool {
        if now >= self.transfer_req_at {
            self.transfer_req_at = now.saturating_add(CST_BACKOFF);
            true
        } else {
            false
        }
    }

    /// Counts a completed snapshot install.
    pub fn note_transfer(&mut self) {
        self.transfers += 1;
    }

    /// Counts a rejected snapshot/certificate (verification failure on an
    /// ingress path that lives outside [`record`](Self::record)).
    pub fn note_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Counts a `CheckpointHint` fast-forward past an aged-out retention
    /// ring — the observable proof a run crossed the ring end-to-end.
    pub fn note_hint_resync(&mut self) {
        self.hint_resyncs += 1;
    }

    /// Rejuvenation wipe: volatile collection state is cleared. The stable
    /// certificate and the run counters survive — the certificate because
    /// it is self-verifying (re-checked from `CkptKeys` on every use) and
    /// in a real tile would live in the trusted persistent store, the
    /// counters because they are measurement, not protocol state. Keeping
    /// the certificate is what tells a wiped replica it is behind and must
    /// transfer *before* trusting its empty log.
    pub fn wipe(&mut self) {
        self.pending.clear();
        self.local.clear();
        self.transfer_req_at = 0;
    }
}

/// Checks a transfer's snapshot against its certificate:
/// `sha256(snapshot) == cert.digest`. The one line between "collaborative
/// state transfer" and "installing whatever a peer sent".
pub fn snapshot_matches(cert: &CheckpointCert, snapshot: &[u8]) -> bool {
    sha256(snapshot) == cert.digest
}

/// Latest executed `(seq, reply)` per client — the checkpointable core of
/// the executed-reply dedup index.
///
/// A transfer-recovered or rejuvenated replica rebuilds its dedup index
/// from the suffix replay only, so any op below the checkpoint watermark
/// lost its retry reply: the replica would silently queue a client's
/// retransmit of an already-committed request instead of answering it.
/// Snapshotting this table into the checkpoint image closes that hole.
/// With pipelined clients (window > 1) only the *latest* op per client is
/// retained — a deliberate bound on image size; with window = 1 (every
/// recovery campaign cell) it covers every retryable op exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientSessions {
    sessions: BTreeMap<ClientId, (u64, Arc<Vec<u8>>)>,
}

impl ClientSessions {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an executed op's reply; keeps the highest seq per client.
    pub fn note(&mut self, client: ClientId, seq: u64, result: Arc<Vec<u8>>) {
        match self.sessions.get(&client) {
            Some((have, _)) if *have >= seq => {}
            _ => {
                self.sessions.insert(client, (seq, result));
            }
        }
    }

    /// Latest executed `(seq, reply)` for a client.
    pub fn get(&self, client: ClientId) -> Option<(u64, &Arc<Vec<u8>>)> {
        self.sessions.get(&client).map(|(seq, result)| (*seq, result))
    }

    /// Number of clients with a recorded session.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are recorded.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Drops all sessions (rejuvenation wipe).
    pub fn clear(&mut self) {
        self.sessions.clear();
    }

    /// Sessions in ascending client order.
    pub fn iter(&self) -> impl Iterator<Item = (ClientId, u64, &Arc<Vec<u8>>)> {
        self.sessions.iter().map(|(c, (seq, result))| (*c, *seq, result))
    }
}

/// Leading magic of a checkpoint image (version 1).
pub const IMAGE_MAGIC: &[u8; 8] = b"CKIMG1\0\0";

/// Frames a KV snapshot and the client-session table into one checkpoint
/// image. This is what certificates digest and transfers carry:
/// `magic · kv_len · kv · n_sessions · [client · seq · reply_len · reply]*`
/// with sessions in ascending client order (all integers little-endian),
/// so identical state always produces identical bytes.
pub fn encode_image(kv: &[u8], sessions: &ClientSessions) -> Vec<u8> {
    let body: usize = sessions.iter().map(|(_, _, r)| 4 + 8 + 8 + r.len()).sum();
    let mut out = Vec::with_capacity(8 + 8 + kv.len() + 8 + body);
    out.extend_from_slice(IMAGE_MAGIC);
    out.extend_from_slice(&(kv.len() as u64).to_le_bytes());
    out.extend_from_slice(kv);
    out.extend_from_slice(&(sessions.len() as u64).to_le_bytes());
    for (client, seq, result) in sessions.iter() {
        out.extend_from_slice(&client.0.to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(result.len() as u64).to_le_bytes());
        out.extend_from_slice(result);
    }
    out
}

// lint: ingress
/// Parses a checkpoint image received in a transfer (adversarial bytes —
/// the certificate pins the digest, but a *corrupt* image must still be
/// rejected, not panic). Returns the KV part and the session table, or
/// `None` on any framing violation: bad magic, truncation, trailing
/// bytes, or sessions out of ascending client order.
pub fn decode_image(bytes: &[u8]) -> Option<(&[u8], ClientSessions)> {
    fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Option<&'a [u8]> {
        let end = at.checked_add(n)?;
        let part = bytes.get(*at..end)?;
        *at = end;
        Some(part)
    }
    fn take_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
        Some(u64::from_le_bytes(take(bytes, at, 8)?.try_into().ok()?))
    }
    let mut at = 0usize;
    if take(bytes, &mut at, 8)? != IMAGE_MAGIC {
        return None;
    }
    let kv_len = usize::try_from(take_u64(bytes, &mut at)?).ok()?;
    let kv = take(bytes, &mut at, kv_len)?;
    let n_sessions = take_u64(bytes, &mut at)?;
    let mut sessions = ClientSessions::new();
    let mut prev: Option<u32> = None;
    for _ in 0..n_sessions {
        let client = u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().ok()?);
        if prev.is_some_and(|p| p >= client) {
            return None; // must be strictly ascending: canonical + no dups
        }
        prev = Some(client);
        let seq = take_u64(bytes, &mut at)?;
        let len = usize::try_from(take_u64(bytes, &mut at)?).ok()?;
        let result = take(bytes, &mut at, len)?;
        sessions.note(ClientId(client), seq, Arc::new(result.to_vec()));
    }
    if at != bytes.len() {
        return None; // trailing garbage
    }
    Some((kv, sessions))
}
// lint: end

/// The cross-checked install a [`CstBuffer`] produces once enough
/// responders agree: certificate, snapshot, log numbering base, the
/// slot-by-slot voted suffix (dense from `cert.seq + 1`), and the install
/// quorum's maximum view claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CstInstall {
    /// The certificate the quorum converged on.
    pub cert: CheckpointCert,
    /// The certified snapshot (taken from any quorum member — all carry
    /// digest-identical bytes, pinned by the certificate).
    pub snapshot: Arc<Vec<u8>>,
    /// Committed-log length at the watermark (quorum-agreed).
    pub log_base: u64,
    /// Slots with an f+1-matching batch digest, dense from
    /// `cert.seq + 1`; the install stops at the first non-quorate slot.
    pub suffix: Vec<(u64, Arc<Batch>)>,
    /// Maximum view claimed by the quorum (liveness-only metadata).
    pub view: u64,
}

// lint: ingress
/// Buffers *validated* transfer responses (certificate verified, snapshot
/// digest-matched and parseable — the caller's job) until `quorum`
/// distinct responders agree on a `(cert.seq, log_base)` group, then
/// votes the suffix slot by slot.
///
/// This is the PR 9 closure of the single-responder CST residual: with
/// `quorum = f+1`, every installed slot was vouched for by at least one
/// honest responder, so a lying responder can deny progress (stall until
/// the backoff re-request reaches honest peers) but never make a
/// recovering replica execute a batch the cluster did not commit.
#[derive(Debug, Default)]
pub struct CstBuffer {
    pending: Vec<StateTransfer>,
}

impl CstBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all buffered responses (after an install, or on wipe).
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// Buffered responses (observability/tests).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits one validated response. One response per responder is kept
    /// (latest wins — re-requests refresh a peer's answer); responses at
    /// or below `floor` (the requester's execution watermark) are stale
    /// and dropped.
    pub fn admit(&mut self, st: StateTransfer, floor: u64) {
        self.pending.retain(|p| p.from != st.from);
        self.pending.retain(|p| p.cert.seq > floor);
        if st.cert.seq > floor {
            self.pending.push(st);
        }
    }

    /// Returns the install once some `(cert.seq, log_base)` group has
    /// `quorum` distinct responders (the highest such watermark wins;
    /// deterministic across admission orders). `None` while no group is
    /// quorate.
    pub fn install_plan(&self, quorum: usize) -> Option<CstInstall> {
        let quorum = quorum.max(1);
        // Group keys, best watermark first.
        let mut keys: Vec<(u64, u64)> =
            self.pending.iter().map(|p| (p.cert.seq, p.log_base)).collect();
        keys.sort_unstable_by(|a, b| b.cmp(a));
        keys.dedup();
        for (seq, log_base) in keys {
            let group: Vec<&StateTransfer> = self
                .pending
                .iter()
                .filter(|p| p.cert.seq == seq && p.log_base == log_base)
                .collect();
            if group.len() < quorum {
                continue;
            }
            return Some(Self::vote(&group, quorum, seq, log_base));
        }
        None
    }

    /// Votes the suffix of one quorate group slot by slot: a slot installs
    /// only when `quorum` members carry the same batch digest for it (at
    /// least one of them honest), batches are content-verified, and the
    /// accepted run is dense from the watermark.
    fn vote(group: &[&StateTransfer], quorum: usize, seq: u64, log_base: u64) -> CstInstall {
        // bounds: install_plan only calls with group.len() >= quorum >= 1
        let first = &group[0];
        let cert = first.cert.clone();
        let snapshot = Arc::clone(&first.snapshot);
        let view = group.iter().map(|p| p.view).max().unwrap_or(0);
        let mut suffix = Vec::new();
        let mut slot = seq;
        'slots: loop {
            slot += 1;
            // Tally batch digests claimed for this slot across the group
            // (linear scans: suffixes are bounded by inter-checkpoint
            // traffic and groups by the cluster size).
            let mut tally: Vec<([u8; 32], usize, &Arc<Batch>)> = Vec::new();
            for p in group {
                let Some((_, batch)) = p.suffix.iter().find(|(s, _)| *s == slot) else {
                    continue;
                };
                let digest = batch.digest();
                match tally.iter_mut().find(|(d, _, _)| *d == digest) {
                    Some((_, count, _)) => *count += 1,
                    None => tally.push((digest, 1, batch)),
                }
            }
            for (_, count, batch) in &tally {
                if *count >= quorum && batch.verify() && !batch.is_empty() {
                    suffix.push((slot, Arc::clone(batch)));
                    continue 'slots;
                }
            }
            break; // first non-quorate slot ends the dense run
        }
        CstInstall { cert, snapshot, log_base, suffix, view }
    }
}

/// Byzantine responder helper shared by the protocols' `corrupt_suffix`
/// fault windows: tampers with a suffix about to be served. Replaces the
/// last slot's batch with content the cluster never committed, or
/// fabricates a slot above `after` when the suffix is empty — either way
/// the requester's f+1 cross-check must out-vote it.
pub fn tamper_suffix(suffix: &mut Vec<(u64, Arc<Batch>)>, after: u64) {
    use crate::api::{ClientId, OpId, Request};
    match suffix.last_mut() {
        Some((_, batch)) => {
            let evil: Vec<Arc<Request>> = batch
                .requests()
                .iter()
                .map(|r| {
                    let mut e = Request::clone(r);
                    e.payload.push(0xEE);
                    Arc::new(e)
                })
                .collect();
            *batch = Arc::new(Batch::new(evil));
        }
        None => {
            let op = OpId { client: ClientId(u32::MAX - 1), seq: after + 1 };
            let req = Arc::new(Request { op, payload: b"FABRICATED".to_vec() });
            suffix.push((after + 1, Arc::new(Batch::single(req))));
        }
    }
}
// lint: end

/// A committed log that can truncate below the stable checkpoint: the
/// retained entries are a contiguous *suffix* of the full history,
/// `base` counts the truncated prefix. `committed()` (= base + retained)
/// is the replica's total progress; the safety checker aligns replicas by
/// entry `seq`, so truncation at different watermarks stays comparable.
#[derive(Debug, Default)]
pub struct CommittedLog {
    base: u64,
    entries: Vec<LogEntry>,
}

impl CommittedLog {
    /// An empty, untruncated log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the next committed entry (entry seqs are dense, 1-based).
    pub fn push(&mut self, entry: LogEntry) {
        debug_assert_eq!(entry.seq, self.committed() + 1, "log seqs must stay dense");
        self.entries.push(entry);
    }

    /// Total committed operations, including the truncated prefix.
    pub fn committed(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Sequence number of the first retained entry (== base + 1), or
    /// `committed() + 1` when no suffix is retained.
    pub fn first_retained(&self) -> u64 {
        self.base + 1
    }

    /// The retained suffix, in sequence order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Drops entries with `seq <= watermark` (no-op for watermarks at or
    /// below the current base; never truncates above what is committed).
    pub fn truncate_below(&mut self, watermark: u64) {
        let watermark = watermark.min(self.committed());
        if watermark <= self.base {
            return;
        }
        let drop = (watermark - self.base) as usize;
        self.entries.drain(..drop);
        self.base = watermark;
    }

    /// Resets to a transferred base: the snapshot covers everything up to
    /// `base`; the caller replays the suffix via [`push`](Self::push).
    pub fn reset_to(&mut self, base: u64) {
        self.entries.clear();
        self.base = base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ClientId, OpId};

    fn entry(seq: u64) -> LogEntry {
        LogEntry { seq, op: OpId { client: ClientId(1), seq }, digest: sha256(&seq.to_le_bytes()) }
    }

    fn store(me: u32, quorum: usize, interval: u64, keys: &Arc<CkptKeys>) -> CheckpointStore {
        CheckpointStore::new(ReplicaId(me), quorum, interval, Arc::clone(keys))
    }

    #[test]
    fn quorum_of_matching_vouchers_forms_a_certificate() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 4, &keys);
        let digest = sha256(b"state");
        assert!(s.record(&keys.sign(ReplicaId(1), 4, digest)).is_none());
        assert_eq!(s.record(&keys.sign(ReplicaId(2), 4, digest)), Some(4));
        assert_eq!(s.stable_seq(), 4);
        assert_eq!(s.history(), &[(4, digest)]);
        // The formed certificate verifies as self-contained.
        let cert = s.stable().unwrap().clone();
        assert!(s.verify_cert(&cert));
    }

    #[test]
    fn duplicate_and_stale_vouchers_do_not_count() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 4, &keys);
        let digest = sha256(b"state");
        let v = keys.sign(ReplicaId(1), 4, digest);
        assert!(s.record(&v).is_none());
        assert!(s.record(&v).is_none(), "same replica cannot vouch twice");
        assert_eq!(s.record(&keys.sign(ReplicaId(3), 4, digest)), Some(4));
        // Vouchers at or below the stable watermark are ignored.
        assert!(s.record(&keys.sign(ReplicaId(2), 4, digest)).is_none());
    }

    #[test]
    fn forged_vouchers_are_rejected_and_counted() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 4, &keys);
        let digest = sha256(b"state");
        let mut forged = keys.sign(ReplicaId(1), 4, digest);
        forged.tag = Tag([0xEE; 32]);
        assert!(s.record(&forged).is_none());
        assert_eq!(s.stats().rejected, 1);
        // A colluder's properly-MAC'd voucher for a *different* digest
        // lands in its own group and never reaches quorum alone.
        let lie = keys.sign(ReplicaId(1), 4, sha256(b"fabricated"));
        assert!(s.record(&lie).is_none());
        assert!(s.record(&keys.sign(ReplicaId(2), 4, digest)).is_none());
        assert_eq!(s.record(&keys.sign(ReplicaId(3), 4, digest)), Some(4));
        assert_eq!(s.stable().unwrap().digest, digest, "honest digest wins");
    }

    #[test]
    fn forged_certificates_are_rejected() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 4, &keys);
        let digest = sha256(b"state");
        let good = CheckpointCert {
            seq: 8,
            digest,
            vouchers: vec![keys.sign(ReplicaId(1), 8, digest), keys.sign(ReplicaId(2), 8, digest)],
        };
        assert!(s.adopt_cert(&good));
        assert_eq!(s.stable_seq(), 8);
        // Same voucher twice: not distinct senders.
        let dup = CheckpointCert {
            seq: 12,
            digest,
            vouchers: vec![
                keys.sign(ReplicaId(1), 12, digest),
                keys.sign(ReplicaId(1), 12, digest),
            ],
        };
        assert!(!s.adopt_cert(&dup));
        // Garbage MACs.
        let mut bad = keys.sign(ReplicaId(1), 12, digest);
        bad.tag = Tag([0; 32]);
        let forged = CheckpointCert {
            seq: 12,
            digest,
            vouchers: vec![bad, keys.sign(ReplicaId(2), 12, digest)],
        };
        assert!(!s.adopt_cert(&forged));
        assert_eq!(s.stable_seq(), 8, "stable watermark unchanged by forgeries");
        assert_eq!(s.stats().rejected, 2);
    }

    #[test]
    fn serving_requires_the_certified_snapshot() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(1, 2, 4, &keys);
        let digest = sha256(b"state");
        assert!(s.serve().is_none());
        let snapshot = Arc::new(b"snapshot-bytes".to_vec());
        let v = s.record_local(4, digest, 4, Arc::clone(&snapshot));
        s.record(&v);
        assert!(s.serve().is_none(), "no certificate yet");
        s.record(&keys.sign(ReplicaId(2), 4, digest));
        let (cert, log_len, served) = s.serve().expect("stable + local snapshot");
        assert_eq!((cert.seq, log_len), (4, 4));
        assert!(Arc::ptr_eq(&served, &snapshot));
        // A replica that adopted a cert it never checkpointed (post-wipe)
        // has nothing to serve.
        let mut wiped = store(3, 2, 4, &keys);
        assert!(wiped.adopt_cert(&cert.clone()));
        assert!(wiped.serve().is_none());
        assert!(wiped.behind(0));
    }

    #[test]
    fn wipe_keeps_the_stable_certificate() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 4, &keys);
        let digest = sha256(b"state");
        let v = s.record_local(4, digest, 4, Arc::new(vec![1]));
        s.record(&v);
        s.record(&keys.sign(ReplicaId(2), 4, digest));
        s.wipe();
        assert_eq!(s.stable_seq(), 4, "certificate survives rejuvenation");
        assert!(s.serve().is_none(), "snapshot does not");
        assert!(s.behind(0));
    }

    #[test]
    fn request_backoff_limits_to_one_per_window() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 4, &keys);
        assert!(s.may_request(0));
        assert!(!s.may_request(CST_BACKOFF - 1));
        assert!(s.may_request(CST_BACKOFF));
    }

    #[test]
    fn disabled_store_is_inert() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 0, &keys);
        assert!(!s.enabled());
        assert!(!s.due(8));
        assert!(s.record(&keys.sign(ReplicaId(1), 4, sha256(b"x"))).is_none());
        assert_eq!(s.stats(), CheckpointStats::default());
    }

    #[test]
    fn committed_log_truncates_and_stays_seq_aligned() {
        let mut log = CommittedLog::new();
        for seq in 1..=10 {
            log.push(entry(seq));
        }
        assert_eq!(log.committed(), 10);
        assert_eq!(log.first_retained(), 1);
        log.truncate_below(4);
        assert_eq!(log.committed(), 10);
        assert_eq!(log.first_retained(), 5);
        assert_eq!(log.entries().first().map(|e| e.seq), Some(5));
        // Truncating below the base or above the head is clamped.
        log.truncate_below(2);
        assert_eq!(log.first_retained(), 5);
        log.truncate_below(99);
        assert_eq!(log.committed(), 10);
        assert!(log.entries().is_empty());
        log.push(entry(11));
        assert_eq!(log.committed(), 11);
        // Transfer install: base jumps, suffix replays on top.
        log.reset_to(20);
        assert_eq!(log.committed(), 20);
        log.push(entry(21));
        assert_eq!(log.committed(), 21);
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    fn snapshot_cross_check() {
        let bytes = b"framed snapshot".to_vec();
        let cert = CheckpointCert { seq: 1, digest: sha256(&bytes), vouchers: vec![] };
        assert!(snapshot_matches(&cert, &bytes));
        assert!(!snapshot_matches(&cert, b"corrupted"));
    }

    #[test]
    fn sessions_keep_latest_per_client() {
        let mut s = ClientSessions::new();
        s.note(ClientId(3), 2, Arc::new(b"r2".to_vec()));
        s.note(ClientId(3), 1, Arc::new(b"r1".to_vec()));
        s.note(ClientId(1), 5, Arc::new(b"r5".to_vec()));
        assert_eq!(s.len(), 2);
        let (seq, result) = s.get(ClientId(3)).unwrap();
        assert_eq!((seq, result.as_slice()), (2, b"r2".as_slice()), "older seq must not clobber");
        s.note(ClientId(3), 7, Arc::new(b"r7".to_vec()));
        assert_eq!(s.get(ClientId(3)).unwrap().0, 7);
        let order: Vec<u32> = s.iter().map(|(c, _, _)| c.0).collect();
        assert_eq!(order, vec![1, 3], "iteration is ascending client order");
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn image_roundtrip_is_canonical() {
        let mut s = ClientSessions::new();
        s.note(ClientId(9), 4, Arc::new(b"ok 9.4".to_vec()));
        s.note(ClientId(2), 1, Arc::new(Vec::new())); // empty replies survive
        let kv = b"KV k1 v1\nKV k2 v2\n";
        let image = encode_image(kv, &s);
        let (kv2, s2) = decode_image(&image).expect("well-formed image");
        assert_eq!(kv2, kv);
        assert_eq!(s2, s);
        // Canonical: re-encoding the decoded table gives identical bytes.
        assert_eq!(encode_image(kv2, &s2), image);
        // Empty everything still frames.
        let empty = encode_image(b"", &ClientSessions::new());
        let (kv3, s3) = decode_image(&empty).unwrap();
        assert!(kv3.is_empty() && s3.is_empty());
    }

    #[test]
    fn image_decode_rejects_malformed() {
        let mut s = ClientSessions::new();
        s.note(ClientId(1), 1, Arc::new(b"r".to_vec()));
        let good = encode_image(b"kv", &s);
        assert!(decode_image(&good).is_some());
        assert!(decode_image(b"").is_none(), "empty");
        assert!(decode_image(b"NOTMAGIC").is_none(), "bad magic");
        assert!(decode_image(&good[..good.len() - 1]).is_none(), "truncated");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_image(&trailing).is_none(), "trailing bytes");
        // Absurd kv length claims must not panic or allocate.
        let mut huge = good.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_image(&huge).is_none(), "kv length overruns");
        // Duplicate / descending clients violate canonical order.
        let mut two = ClientSessions::new();
        two.note(ClientId(1), 1, Arc::new(b"a".to_vec()));
        two.note(ClientId(2), 1, Arc::new(b"b".to_vec()));
        let img = encode_image(b"", &two);
        let mut swapped = img.clone();
        // Sessions start after magic(8) + kv_len(8) + kv(0) + count(8) = 24;
        // each entry is 4 + 8 + 8 + 1 = 21 bytes.
        let (a, b) = (24usize, 45usize);
        let first: Vec<u8> = swapped[a..a + 21].to_vec();
        let second: Vec<u8> = swapped[b..b + 21].to_vec();
        swapped[a..a + 21].copy_from_slice(&second);
        swapped[b..b + 21].copy_from_slice(&first);
        assert!(decode_image(&swapped).is_none(), "descending client order");
    }

    #[test]
    fn hint_resyncs_counter_lands_in_stats() {
        let keys = CkptKeys::provision(7, 4);
        let mut s = store(0, 2, 4, &keys);
        assert_eq!(s.stats().hint_resyncs, 0);
        s.note_hint_resync();
        assert_eq!(s.stats().hint_resyncs, 1);
        s.wipe();
        assert_eq!(s.stats().hint_resyncs, 1, "counters are measurement, not protocol state");
    }
}
