//! Register cells with three protection levels (§III of the paper):
//!
//! * [`PlainRegister`] — lowest complexity; a bit-flip silently corrupts the
//!   stored value ("any bitflip in the counter will have catastrophic
//!   effects on the consensus problem").
//! * [`ParityRegister`] — detects an odd number of flips but cannot correct.
//! * [`EccRegister`] — Hamming SEC-DED; corrects one flip, detects two.
//!
//! Each reports a gate-equivalent cost so experiments can reproduce the
//! paper's complexity-vs-resilience middle-ground argument (E2).

use crate::ecc::{DecodeOutcome, Hamming};
use rsoc_sim::SimRng;

/// Result of reading a register that may have experienced upsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// A value was read. For a [`PlainRegister`] it may be silently wrong!
    Value(u64),
    /// The cell detected corruption it could not correct; the reader must
    /// treat the content as lost (fail-stop behaviour).
    Detected,
}

impl LoadOutcome {
    /// The read value, if any.
    pub fn value(self) -> Option<u64> {
        match self {
            LoadOutcome::Value(v) => Some(v),
            LoadOutcome::Detected => None,
        }
    }
}

/// Common interface of protected and unprotected register cells.
///
/// This trait is object-safe so hybrids can be built over `Box<dyn
/// RegisterCell>` and experiments can swap protection levels at runtime.
/// `Send` is a supertrait so replicas owning a boxed cell can move onto
/// transport-plane node threads; every cell is plain data, so the bound
/// costs implementors nothing.
pub trait RegisterCell: std::fmt::Debug + Send {
    /// Writes a value (re-encoding clears any accumulated upsets).
    fn store(&mut self, value: u64);
    /// Reads the value, applying whatever detection/correction the cell has.
    fn load(&mut self) -> LoadOutcome;
    /// Flips one physical storage bit (for SEU injection). `bit` is reduced
    /// modulo the physical width.
    fn inject_flip(&mut self, bit: u32);
    /// Flips a uniformly random physical bit.
    fn inject_random_flip(&mut self, rng: &mut SimRng) {
        let w = self.physical_bits();
        let bit = rng.below(w as u64) as u32;
        self.inject_flip(bit);
    }
    /// Number of physical storage bits (payload + check bits).
    fn physical_bits(&self) -> u32;
    /// Gate-equivalent complexity of the cell including codec logic.
    fn gate_cost(&self) -> u64;
    /// Short name for experiment output rows.
    fn protection_name(&self) -> &'static str;
}

/// Unprotected register: cheapest, silently corruptible.
#[derive(Debug, Clone)]
pub struct PlainRegister {
    width: u32,
    bits: u64,
}

impl PlainRegister {
    /// Creates a zeroed register of `width` bits (1..=64).
    ///
    /// # Panics
    /// Panics if `width` is outside `1..=64`.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        PlainRegister { width, bits: 0 }
    }
}

impl RegisterCell for PlainRegister {
    fn store(&mut self, value: u64) {
        self.bits = mask(value, self.width);
    }

    fn load(&mut self) -> LoadOutcome {
        LoadOutcome::Value(self.bits)
    }

    fn inject_flip(&mut self, bit: u32) {
        self.bits ^= 1 << (bit % self.width);
        self.bits = mask(self.bits, self.width);
    }

    fn physical_bits(&self) -> u32 {
        self.width
    }

    fn gate_cost(&self) -> u64 {
        // ~6 gate equivalents per flip-flop.
        6 * self.width as u64
    }

    fn protection_name(&self) -> &'static str {
        "plain"
    }
}

/// Parity-protected register: detects odd numbers of flips (fail-stop),
/// corrects nothing.
#[derive(Debug, Clone)]
pub struct ParityRegister {
    width: u32,
    bits: u64,
    parity: bool,
}

impl ParityRegister {
    /// Creates a zeroed parity register of `width` payload bits (1..=64).
    ///
    /// # Panics
    /// Panics if `width` is outside `1..=64`.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        ParityRegister { width, bits: 0, parity: false }
    }
}

impl RegisterCell for ParityRegister {
    fn store(&mut self, value: u64) {
        self.bits = mask(value, self.width);
        self.parity = self.bits.count_ones() % 2 == 1;
    }

    fn load(&mut self) -> LoadOutcome {
        let now = self.bits.count_ones() % 2 == 1;
        if now == self.parity {
            LoadOutcome::Value(self.bits)
        } else {
            LoadOutcome::Detected
        }
    }

    fn inject_flip(&mut self, bit: u32) {
        let phys = self.physical_bits();
        let bit = bit % phys;
        if bit < self.width {
            self.bits ^= 1 << bit;
        } else {
            self.parity = !self.parity;
        }
    }

    fn physical_bits(&self) -> u32 {
        self.width + 1
    }

    fn gate_cost(&self) -> u64 {
        // Flip-flops plus an XOR parity tree on each side.
        6 * (self.width as u64 + 1) + 2 * self.width as u64
    }

    fn protection_name(&self) -> &'static str {
        "parity"
    }
}

/// Hamming-SEC-DED-protected register: corrects one flip, detects two.
#[derive(Debug, Clone)]
pub struct EccRegister {
    code: Hamming,
    codeword: u128,
}

impl EccRegister {
    /// Creates a zeroed ECC register of `width` payload bits (1..=64).
    ///
    /// # Panics
    /// Panics if `width` is outside `1..=64`.
    pub fn new(width: u32) -> Self {
        let code = Hamming::new(width);
        EccRegister { code, codeword: code.encode(0) }
    }

    /// The underlying code parameters.
    pub fn code(&self) -> Hamming {
        self.code
    }
}

impl RegisterCell for EccRegister {
    fn store(&mut self, value: u64) {
        self.codeword = self.code.encode(mask(value, self.code.data_bits()));
    }

    fn load(&mut self) -> LoadOutcome {
        match self.code.decode(self.codeword) {
            DecodeOutcome::Clean(v) => LoadOutcome::Value(v),
            DecodeOutcome::Corrected(v, _) => {
                // Scrub: rewrite the corrected codeword so upsets don't accumulate.
                self.codeword = self.code.encode(v);
                LoadOutcome::Value(v)
            }
            DecodeOutcome::DoubleError => LoadOutcome::Detected,
        }
    }

    fn inject_flip(&mut self, bit: u32) {
        let bit = bit % self.physical_bits();
        self.codeword ^= 1u128 << bit;
    }

    fn physical_bits(&self) -> u32 {
        self.code.codeword_bits()
    }

    fn gate_cost(&self) -> u64 {
        6 * self.code.codeword_bits() as u64 + self.code.gate_cost()
    }

    fn protection_name(&self) -> &'static str {
        "secded"
    }
}

fn mask(v: u64, width: u32) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_silently_corrupts() {
        let mut r = PlainRegister::new(16);
        r.store(0x1234);
        assert_eq!(r.load(), LoadOutcome::Value(0x1234));
        r.inject_flip(0);
        // Reads fine — but wrong. This is the §III catastrophe.
        assert_eq!(r.load(), LoadOutcome::Value(0x1235));
    }

    #[test]
    fn parity_detects_single_flip() {
        let mut r = ParityRegister::new(16);
        r.store(0xBEEF);
        assert_eq!(r.load(), LoadOutcome::Value(0xBEEF));
        r.inject_flip(3);
        assert_eq!(r.load(), LoadOutcome::Detected);
    }

    #[test]
    fn parity_misses_double_flip() {
        let mut r = ParityRegister::new(16);
        r.store(0xBEEF);
        r.inject_flip(0);
        r.inject_flip(1);
        // Even number of flips — parity is fooled, value silently wrong.
        assert_eq!(r.load(), LoadOutcome::Value(0xBEEF ^ 0b11));
    }

    #[test]
    fn parity_flip_of_parity_bit_detected() {
        let mut r = ParityRegister::new(8);
        r.store(0xFF);
        r.inject_flip(8); // the parity bit itself
        assert_eq!(r.load(), LoadOutcome::Detected);
    }

    #[test]
    fn ecc_corrects_single_flip_everywhere() {
        let mut r = EccRegister::new(32);
        r.store(0xCAFEBABE);
        for bit in 0..r.physical_bits() {
            r.inject_flip(bit);
            assert_eq!(r.load(), LoadOutcome::Value(0xCAFEBABE), "bit={bit}");
        }
    }

    #[test]
    fn ecc_scrubs_after_correction() {
        let mut r = EccRegister::new(8);
        r.store(0x5A);
        r.inject_flip(2);
        assert_eq!(r.load(), LoadOutcome::Value(0x5A));
        // Another flip after scrubbing is again a single error.
        r.inject_flip(5);
        assert_eq!(r.load(), LoadOutcome::Value(0x5A));
    }

    #[test]
    fn ecc_detects_double_flip() {
        let mut r = EccRegister::new(8);
        r.store(0x5A);
        r.inject_flip(2);
        r.inject_flip(7);
        assert_eq!(r.load(), LoadOutcome::Detected);
    }

    #[test]
    fn store_clears_accumulated_damage() {
        let mut r = EccRegister::new(8);
        r.store(0x5A);
        r.inject_flip(1);
        r.inject_flip(2);
        r.store(0x33);
        assert_eq!(r.load(), LoadOutcome::Value(0x33));
    }

    #[test]
    fn cost_ordering_matches_protection() {
        let plain = PlainRegister::new(64);
        let parity = ParityRegister::new(64);
        let ecc = EccRegister::new(64);
        assert!(plain.gate_cost() < parity.gate_cost());
        assert!(parity.gate_cost() < ecc.gate_cost());
        assert_eq!(plain.protection_name(), "plain");
        assert_eq!(parity.protection_name(), "parity");
        assert_eq!(ecc.protection_name(), "secded");
    }

    #[test]
    fn random_flip_stays_in_width() {
        let mut rng = rsoc_sim::SimRng::new(3);
        let mut r = PlainRegister::new(8);
        r.store(0);
        for _ in 0..100 {
            r.inject_random_flip(&mut rng);
        }
        let v = r.load().value().unwrap();
        assert!(v < 256, "flips must stay within the declared width");
    }

    #[test]
    fn trait_object_usable() {
        let mut cells: Vec<Box<dyn RegisterCell>> = vec![
            Box::new(PlainRegister::new(16)),
            Box::new(ParityRegister::new(16)),
            Box::new(EccRegister::new(16)),
        ];
        for c in &mut cells {
            c.store(42);
            assert_eq!(c.load(), LoadOutcome::Value(42));
        }
    }
}
