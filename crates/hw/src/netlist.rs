//! Combinational netlists: gates wired in a DAG, evaluated in one forward
//! pass. Builders guarantee inputs always reference earlier gates, so
//! evaluation order equals construction order.

use crate::faults::{FaultKind, FaultMap};
use std::fmt;

/// Identifier of a gate inside a [`Netlist`]; indexes the gate vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Wraps a raw index.
    pub const fn new(raw: u32) -> Self {
        GateId(raw)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Primitive gate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (value supplied by the caller).
    Input,
    /// Constant driver.
    Const(bool),
    /// Buffer (identity); used to model wire repeaters / fan-out points.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
}

impl GateKind {
    /// Number of input pins this gate kind requires.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::Input => unreachable!("inputs are not evaluated"),
            GateKind::Const(v) => v,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Nand => !(a & b),
            GateKind::Nor => !(a | b),
            GateKind::Xor => a ^ b,
            GateKind::Xnor => !(a ^ b),
        }
    }
}

#[derive(Debug, Clone)]
struct Gate {
    kind: GateKind,
    pins: [GateId; 2],
}

/// A combinational circuit: a DAG of gates with named inputs and outputs.
///
/// Construct with the builder methods ([`Netlist::input`], [`Netlist::gate`],
/// convenience wrappers like [`Netlist::and`]), then evaluate with
/// [`Netlist::eval`] or [`Netlist::eval_with_faults`].
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist { name: name.into(), gates: Vec::new(), inputs: Vec::new(), outputs: Vec::new() }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its id.
    pub fn input(&mut self) -> GateId {
        let id = self.push(GateKind::Input, [GateId(0); 2]);
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, value: bool) -> GateId {
        self.push(GateKind::Const(value), [GateId(0); 2])
    }

    /// Adds a gate of `kind` fed by `pins`.
    ///
    /// # Panics
    /// Panics if the pin count does not match the gate's arity, or a pin
    /// references a not-yet-created gate (which would break the DAG order).
    pub fn gate(&mut self, kind: GateKind, pins: &[GateId]) -> GateId {
        assert_eq!(pins.len(), kind.arity(), "wrong pin count for {kind:?}");
        let next = self.gates.len() as u32;
        for p in pins {
            assert!(p.0 < next, "pin {p} references a future gate");
        }
        let mut fixed = [GateId(0); 2];
        for (i, p) in pins.iter().enumerate() {
            fixed[i] = *p;
        }
        self.push(kind, fixed)
    }

    fn push(&mut self, kind: GateKind, pins: [GateId; 2]) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate { kind, pins });
        id
    }

    /// 2-input AND convenience.
    pub fn and(&mut self, a: GateId, b: GateId) -> GateId {
        self.gate(GateKind::And, &[a, b])
    }

    /// 2-input OR convenience.
    pub fn or(&mut self, a: GateId, b: GateId) -> GateId {
        self.gate(GateKind::Or, &[a, b])
    }

    /// 2-input XOR convenience.
    pub fn xor(&mut self, a: GateId, b: GateId) -> GateId {
        self.gate(GateKind::Xor, &[a, b])
    }

    /// Inverter convenience.
    pub fn not(&mut self, a: GateId) -> GateId {
        self.gate(GateKind::Not, &[a])
    }

    /// Marks `id` as a primary output (order of calls = output order).
    pub fn expose(&mut self, id: GateId) {
        assert!(id.index() < self.gates.len(), "unknown gate");
        self.outputs.push(id);
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Total gate count, including input pseudo-gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Count of *logic* gates (excludes inputs and constants) — the paper's
    /// "complexity" currency for hybrids (§III).
    pub fn logic_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Input | GateKind::Const(_)))
            .count()
    }

    /// Primary input ids.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary output ids.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Evaluates the fault-free circuit.
    ///
    /// # Panics
    /// Panics if `input_values.len() != self.input_count()`.
    pub fn eval(&self, input_values: &[bool]) -> Vec<bool> {
        self.eval_with_faults(input_values, &FaultMap::new())
    }

    /// Evaluates under a fault map: faulty gates produce stuck or inverted
    /// values regardless of their inputs.
    ///
    /// # Panics
    /// Panics if `input_values.len() != self.input_count()`.
    pub fn eval_with_faults(&self, input_values: &[bool], faults: &FaultMap) -> Vec<bool> {
        assert_eq!(input_values.len(), self.inputs.len(), "input arity mismatch");
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0;
        for (idx, gate) in self.gates.iter().enumerate() {
            let raw = match gate.kind {
                GateKind::Input => {
                    let v = input_values[next_input];
                    next_input += 1;
                    v
                }
                kind => {
                    let a = values[gate.pins[0].index()];
                    let b = values[gate.pins[1].index()];
                    kind.eval(a, b)
                }
            };
            values[idx] = match faults.get(&GateId(idx as u32)) {
                Some(FaultKind::StuckAt0) => false,
                Some(FaultKind::StuckAt1) => true,
                Some(FaultKind::Flip) => !raw,
                None => raw,
            };
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Appends a structural copy of `other` into `self`, wiring `other`'s
    /// primary inputs to the given existing gates. Returns the ids that
    /// correspond to `other`'s outputs.
    ///
    /// This is the primitive behind N-modular redundancy: the copy's gates
    /// are fresh (and thus fail independently under fault sampling).
    ///
    /// # Panics
    /// Panics if `wired_inputs.len() != other.input_count()`.
    pub fn instantiate(&mut self, other: &Netlist, wired_inputs: &[GateId]) -> Vec<GateId> {
        assert_eq!(wired_inputs.len(), other.inputs.len(), "input wiring mismatch");
        let mut map: Vec<GateId> = Vec::with_capacity(other.gates.len());
        let mut next_input = 0;
        for gate in &other.gates {
            let new_id = match gate.kind {
                GateKind::Input => {
                    let wired = wired_inputs[next_input];
                    next_input += 1;
                    wired
                }
                kind => {
                    let pins: Vec<GateId> =
                        gate.pins[..kind.arity()].iter().map(|p| map[p.index()]).collect();
                    self.gate(kind, &pins)
                }
            };
            map.push(new_id);
        }
        other.outputs.iter().map(|o| map[o.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut n = Netlist::new("half-adder");
        let a = n.input();
        let b = n.input();
        let sum = n.xor(a, b);
        let carry = n.and(a, b);
        n.expose(sum);
        n.expose(carry);
        n
    }

    #[test]
    fn half_adder_truth_table() {
        let n = half_adder();
        assert_eq!(n.eval(&[false, false]), vec![false, false]);
        assert_eq!(n.eval(&[true, false]), vec![true, false]);
        assert_eq!(n.eval(&[false, true]), vec![true, false]);
        assert_eq!(n.eval(&[true, true]), vec![false, true]);
    }

    #[test]
    fn gate_kinds_truth() {
        for (kind, table) in [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ] {
            let mut n = Netlist::new("t");
            let a = n.input();
            let b = n.input();
            let g = n.gate(kind, &[a, b]);
            n.expose(g);
            for (i, expect) in table.iter().enumerate() {
                let a_v = i & 1 != 0;
                let b_v = i & 2 != 0;
                assert_eq!(n.eval(&[a_v, b_v]), vec![*expect], "{kind:?} {a_v} {b_v}");
            }
        }
    }

    #[test]
    fn constants_and_buf_and_not() {
        let mut n = Netlist::new("t");
        let one = n.constant(true);
        let a = n.input();
        let buf = n.gate(GateKind::Buf, &[a]);
        let inv = n.not(one);
        n.expose(buf);
        n.expose(inv);
        assert_eq!(n.eval(&[true]), vec![true, false]);
        assert_eq!(n.eval(&[false]), vec![false, false]);
    }

    #[test]
    fn faults_change_outputs() {
        let n = half_adder();
        let mut faults = FaultMap::new();
        // Gate 2 is the XOR producing `sum`.
        faults.insert(GateId::new(2), FaultKind::StuckAt1);
        assert_eq!(n.eval_with_faults(&[false, false], &faults), vec![true, false]);
        faults.insert(GateId::new(2), FaultKind::Flip);
        assert_eq!(n.eval_with_faults(&[true, false], &faults), vec![false, false]);
    }

    #[test]
    fn fault_on_input_gate_overrides_value() {
        let n = half_adder();
        let mut faults = FaultMap::new();
        faults.insert(GateId::new(0), FaultKind::StuckAt0);
        // a stuck at 0: (a=1,b=1) behaves like (0,1).
        assert_eq!(n.eval_with_faults(&[true, true], &faults), vec![true, false]);
    }

    #[test]
    fn instantiate_copies_behaviour() {
        let ha = half_adder();
        let mut n = Netlist::new("wrap");
        let x = n.input();
        let y = n.input();
        let outs = n.instantiate(&ha, &[x, y]);
        for o in outs {
            n.expose(o);
        }
        for bits in 0..4u8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            assert_eq!(n.eval(&[a, b]), ha.eval(&[a, b]));
        }
    }

    #[test]
    fn logic_gate_count_excludes_inputs() {
        let n = half_adder();
        assert_eq!(n.gate_count(), 4);
        assert_eq!(n.logic_gate_count(), 2);
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn eval_rejects_wrong_arity() {
        half_adder().eval(&[true]);
    }

    #[test]
    #[should_panic(expected = "wrong pin count")]
    fn gate_rejects_wrong_pins() {
        let mut n = Netlist::new("t");
        let a = n.input();
        n.gate(GateKind::And, &[a]);
    }
}
