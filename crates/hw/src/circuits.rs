//! Library of combinational circuits used by experiments and hybrids:
//! ripple-carry adder, equality comparator, multiplexer, parity tree,
//! and majority voters.

use crate::netlist::{GateId, Netlist};

/// Builds a `width`-bit ripple-carry adder.
///
/// Inputs: `a[0..width]` (LSB first), `b[0..width]`, carry-in.
/// Outputs: `sum[0..width]`, carry-out.
///
/// # Panics
/// Panics if `width == 0`.
pub fn ripple_carry_adder(width: usize) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let mut n = Netlist::new(format!("rca{width}"));
    let a: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let b: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let mut carry = n.input();
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        // Full adder: sum = a ^ b ^ cin; cout = (a&b) | (cin & (a^b)).
        let axb = n.xor(a[i], b[i]);
        let sum = n.xor(axb, carry);
        let ab = n.and(a[i], b[i]);
        let cx = n.and(carry, axb);
        carry = n.or(ab, cx);
        sums.push(sum);
    }
    for s in sums {
        n.expose(s);
    }
    n.expose(carry);
    n
}

/// Builds a `width`-bit equality comparator: output 1 iff `a == b`.
///
/// Inputs: `a[0..width]`, `b[0..width]`. One output.
///
/// This is the shape of the "counter matches expected value" check inside a
/// USIG-style hybrid (§III).
///
/// # Panics
/// Panics if `width == 0`.
pub fn equality_comparator(width: usize) -> Netlist {
    assert!(width > 0, "comparator width must be positive");
    let mut n = Netlist::new(format!("eq{width}"));
    let a: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let b: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let mut acc: Option<GateId> = None;
    for i in 0..width {
        let bit_eq = n.gate(crate::netlist::GateKind::Xnor, &[a[i], b[i]]);
        acc = Some(match acc {
            None => bit_eq,
            Some(prev) => n.and(prev, bit_eq),
        });
    }
    n.expose(acc.expect("width > 0"));
    n
}

/// Builds a 2:1 multiplexer over `width`-bit words.
///
/// Inputs: select, `a[0..width]`, `b[0..width]`. Outputs: `width` bits
/// (`a` when select=0, `b` when select=1).
///
/// # Panics
/// Panics if `width == 0`.
pub fn mux2(width: usize) -> Netlist {
    assert!(width > 0, "mux width must be positive");
    let mut n = Netlist::new(format!("mux2x{width}"));
    let sel = n.input();
    let a: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let b: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    let nsel = n.not(sel);
    let mut outs = Vec::with_capacity(width);
    for i in 0..width {
        let pa = n.and(a[i], nsel);
        let pb = n.and(b[i], sel);
        outs.push(n.or(pa, pb));
    }
    for o in outs {
        n.expose(o);
    }
    n
}

/// Builds an XOR parity tree over `width` inputs (1 output).
///
/// # Panics
/// Panics if `width == 0`.
pub fn parity_tree(width: usize) -> Netlist {
    assert!(width > 0, "parity width must be positive");
    let mut n = Netlist::new(format!("parity{width}"));
    let mut layer: Vec<GateId> = (0..width).map(|_| n.input()).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(n.xor(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    n.expose(layer[0]);
    n
}

/// Appends a 3-input majority function (`(a&b)|(a&c)|(b&c)`) to `n`,
/// returning the output gate. The voter is built from ordinary gates and is
/// therefore itself fault-prone — TMR analyses that assume perfect voters
/// overstate reliability, which E1 quantifies.
pub fn majority3(n: &mut Netlist, a: GateId, b: GateId, c: GateId) -> GateId {
    let ab = n.and(a, b);
    let ac = n.and(a, c);
    let bc = n.and(b, c);
    let t = n.or(ab, ac);
    n.or(t, bc)
}

/// Appends a majority-of-N function for odd `N` (vote is 1 when more than
/// half of `xs` are 1), returning the output gate.
///
/// Implemented as an OR over all `(N+1)/2`-subsets ANDed together; fine for
/// the small N (3, 5, 7) used in modular redundancy.
///
/// # Panics
/// Panics if `xs` has even length or is empty.
pub fn majority_n(n: &mut Netlist, xs: &[GateId]) -> GateId {
    assert!(!xs.is_empty() && xs.len() % 2 == 1, "majority needs odd N");
    if xs.len() == 1 {
        return xs[0];
    }
    if xs.len() == 3 {
        return majority3(n, xs[0], xs[1], xs[2]);
    }
    let k = xs.len() / 2 + 1;
    // Enumerate k-subsets of xs; AND each, OR the lot.
    let mut subsets: Vec<GateId> = Vec::new();
    let mut pick = vec![0usize; k];
    fn rec(
        n: &mut Netlist,
        xs: &[GateId],
        k: usize,
        start: usize,
        depth: usize,
        pick: &mut Vec<usize>,
        out: &mut Vec<GateId>,
    ) {
        if depth == k {
            let mut acc = xs[pick[0]];
            for p in &pick[1..] {
                acc = n.and(acc, xs[*p]);
            }
            out.push(acc);
            return;
        }
        for i in start..=(xs.len() - (k - depth)) {
            pick[depth] = i;
            rec(n, xs, k, i + 1, depth + 1, pick, out);
        }
    }
    rec(n, xs, k, 0, 0, &mut pick, &mut subsets);
    let mut acc = subsets[0];
    for s in &subsets[1..] {
        acc = n.or(acc, *s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn val(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    #[test]
    fn adder_is_correct_for_exhaustive_4bit() {
        let n = ripple_carry_adder(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in 0..2u64 {
                    let mut inputs = bits(a, 4);
                    inputs.extend(bits(b, 4));
                    inputs.push(cin == 1);
                    let out = n.eval(&inputs);
                    assert_eq!(val(&out), a + b + cin, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn comparator_matches_equality() {
        let n = equality_comparator(5);
        for a in 0..32u64 {
            for b in [a, (a + 1) % 32, a ^ 0x10] {
                let mut inputs = bits(a, 5);
                inputs.extend(bits(b, 5));
                assert_eq!(n.eval(&inputs), vec![a == b], "{a} vs {b}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        let n = mux2(3);
        let a = bits(0b101, 3);
        let b = bits(0b010, 3);
        let mut in0 = vec![false];
        in0.extend(a.iter().copied());
        in0.extend(b.iter().copied());
        assert_eq!(val(&n.eval(&in0)), 0b101);
        let mut in1 = vec![true];
        in1.extend(a);
        in1.extend(b);
        assert_eq!(val(&n.eval(&in1)), 0b010);
    }

    #[test]
    fn parity_counts_ones() {
        let n = parity_tree(6);
        for v in 0..64u64 {
            let inputs = bits(v, 6);
            let expect = v.count_ones() % 2 == 1;
            assert_eq!(n.eval(&inputs), vec![expect], "v={v}");
        }
    }

    #[test]
    fn majority3_truth_table() {
        let mut n = Netlist::new("m3");
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let m = majority3(&mut n, a, b, c);
        n.expose(m);
        for v in 0..8u64 {
            let inputs = bits(v, 3);
            let expect = v.count_ones() >= 2;
            assert_eq!(n.eval(&inputs), vec![expect], "v={v:03b}");
        }
    }

    #[test]
    fn majority5_truth_table() {
        let mut n = Netlist::new("m5");
        let xs: Vec<GateId> = (0..5).map(|_| n.input()).collect();
        let m = majority_n(&mut n, &xs);
        n.expose(m);
        for v in 0..32u64 {
            let inputs = bits(v, 5);
            let expect = v.count_ones() >= 3;
            assert_eq!(n.eval(&inputs), vec![expect], "v={v:05b}");
        }
    }

    #[test]
    fn majority1_is_identity() {
        let mut n = Netlist::new("m1");
        let a = n.input();
        let m = majority_n(&mut n, &[a]);
        n.expose(m);
        assert_eq!(n.eval(&[true]), vec![true]);
        assert_eq!(n.eval(&[false]), vec![false]);
    }
}
