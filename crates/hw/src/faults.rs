//! Gate-level fault models: permanent stuck-at faults (fabrication defects,
//! aging, §I of the paper) and transient flips (SEUs, overheating glitches).

use crate::netlist::{GateId, Netlist};
use rsoc_sim::SimRng;
use std::collections::BTreeMap;

/// How a faulty gate misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Output tied to logic 0 (classic fabrication/aging defect).
    StuckAt0,
    /// Output tied to logic 1.
    StuckAt1,
    /// Output inverted for this evaluation (transient upset).
    Flip,
}

/// A set of gate faults applied during one evaluation. A `BTreeMap` so
/// iteration order is a pure function of content (the determinism
/// contract `rsoc_lint` enforces), not of a per-process hash seed.
pub type FaultMap = BTreeMap<GateId, FaultKind>;

/// Samples random fault maps for Monte-Carlo reliability runs (E1).
///
/// Each *logic* gate fails independently with probability `p_fault`; a
/// failing gate draws uniformly among the enabled fault kinds. Input
/// pseudo-gates never fail (input corruption is a separate concern modeled
/// at the NoC/register layers).
#[derive(Debug, Clone)]
pub struct FaultSampler {
    p_fault: f64,
    kinds: Vec<FaultKind>,
}

impl FaultSampler {
    /// Creates a sampler with the given per-gate fault probability drawing
    /// from all three fault kinds.
    ///
    /// # Panics
    /// Panics if `p_fault` is not within `[0, 1]`.
    pub fn new(p_fault: f64) -> Self {
        Self::with_kinds(p_fault, vec![FaultKind::StuckAt0, FaultKind::StuckAt1, FaultKind::Flip])
    }

    /// Creates a sampler restricted to the given fault kinds.
    ///
    /// # Panics
    /// Panics if `p_fault` is outside `[0,1]` or `kinds` is empty.
    pub fn with_kinds(p_fault: f64, kinds: Vec<FaultKind>) -> Self {
        assert!((0.0..=1.0).contains(&p_fault), "probability out of range");
        assert!(!kinds.is_empty(), "need at least one fault kind");
        FaultSampler { p_fault, kinds }
    }

    /// Per-gate fault probability.
    pub fn p_fault(&self) -> f64 {
        self.p_fault
    }

    /// Draws a fault map for one evaluation of `netlist`.
    pub fn sample(&self, netlist: &Netlist, rng: &mut SimRng) -> FaultMap {
        let mut map = FaultMap::new();
        if self.p_fault <= 0.0 {
            return map;
        }
        let input_count = netlist.input_count();
        for idx in 0..netlist.gate_count() {
            let id = GateId::new(idx as u32);
            // Skip primary-input pseudo-gates: ids 0..input_count are the
            // inputs only when created first, so check structurally instead.
            if netlist.inputs().contains(&id) {
                continue;
            }
            if rng.chance(self.p_fault) {
                let kind = *rng.choose(&self.kinds).expect("kinds nonempty");
                map.insert(id, kind);
            }
        }
        let _ = input_count;
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn toy() -> Netlist {
        let mut n = Netlist::new("toy");
        let a = n.input();
        let b = n.input();
        let g = n.and(a, b);
        let h = n.or(g, a);
        n.expose(h);
        n
    }

    #[test]
    fn zero_probability_yields_empty_map() {
        let n = toy();
        let mut rng = SimRng::new(1);
        let sampler = FaultSampler::new(0.0);
        assert!(sampler.sample(&n, &mut rng).is_empty());
    }

    #[test]
    fn certainty_faults_all_logic_gates() {
        let n = toy();
        let mut rng = SimRng::new(2);
        let sampler = FaultSampler::new(1.0);
        let map = sampler.sample(&n, &mut rng);
        // 2 logic gates, inputs excluded.
        assert_eq!(map.len(), 2);
        assert!(!map.contains_key(&GateId::new(0)));
        assert!(!map.contains_key(&GateId::new(1)));
    }

    #[test]
    fn fault_rate_is_plausible() {
        let n = toy();
        let mut rng = SimRng::new(3);
        let sampler = FaultSampler::new(0.25);
        let total: usize = (0..4000).map(|_| sampler.sample(&n, &mut rng).len()).sum();
        let rate = total as f64 / (4000.0 * 2.0);
        assert!((rate - 0.25).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn restricted_kinds_respected() {
        let n = toy();
        let mut rng = SimRng::new(4);
        let sampler = FaultSampler::with_kinds(1.0, vec![FaultKind::StuckAt0]);
        let map = sampler.sample(&n, &mut rng);
        assert!(map.values().all(|k| *k == FaultKind::StuckAt0));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        FaultSampler::new(1.5);
    }
}
