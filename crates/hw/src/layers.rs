//! Multi-vendor 3D-fabric layer model (§I of the paper).
//!
//! 3D-synthesized chips can stack layers of identical functionality from
//! different vendors "to avoid vendor lock-in or potential aging issues,
//! backdoors, and kill switches — so called Distribution attack on the
//! supply chain." This module models dies as stacks of vendor-tagged layers
//! and quantifies how vendor diversity changes the probability that a
//! supply-chain event (a vendor-level defect or backdoor) takes out a
//! masking majority of layers.

use rsoc_sim::SimRng;
use std::collections::BTreeMap;

/// A hardware vendor identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VendorId(pub u32);

/// One functional layer of a 3D die.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Who fabricated this layer.
    pub vendor: VendorId,
    /// Probability that a *vendor-independent* (local) defect disables this
    /// layer during the mission.
    pub local_defect_rate: f64,
}

/// A 3D die: redundant layers of identical functionality, majority-voted.
///
/// The die survives while a strict majority of layers is healthy.
#[derive(Debug, Clone)]
pub struct Die {
    layers: Vec<Layer>,
}

impl Die {
    /// Builds a die from layers.
    ///
    /// # Panics
    /// Panics if `layers` is empty or even in count (majority voting needs
    /// odd redundancy).
    pub fn new(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty() && layers.len() % 2 == 1, "need odd layer count");
        Die { layers }
    }

    /// Builds a die with `n` layers all from one vendor (the monoculture
    /// baseline).
    pub fn monoculture(n: usize, vendor: VendorId, local_defect_rate: f64) -> Self {
        Die::new((0..n).map(|_| Layer { vendor, local_defect_rate }).collect())
    }

    /// Builds a die with `n` layers cycling over `vendors`.
    ///
    /// # Panics
    /// Panics if `vendors` is empty.
    pub fn diverse(n: usize, vendors: &[VendorId], local_defect_rate: f64) -> Self {
        assert!(!vendors.is_empty(), "need at least one vendor");
        Die::new(
            (0..n)
                .map(|i| Layer { vendor: vendors[i % vendors.len()], local_defect_rate })
                .collect(),
        )
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of distinct vendors.
    pub fn vendor_count(&self) -> usize {
        let mut v: Vec<VendorId> = self.layers.iter().map(|l| l.vendor).collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Simulates one mission: draws vendor-level events (each vendor is
    /// compromised/defective with probability `vendor_event_rate`,
    /// disabling *all* of that vendor's layers — the common-mode channel)
    /// plus independent local defects, then majority-votes.
    ///
    /// Returns `true` when the die survives (majority of layers healthy).
    pub fn survives_mission(&self, vendor_event_rate: f64, rng: &mut SimRng) -> bool {
        let mut vendor_down: BTreeMap<VendorId, bool> = BTreeMap::new();
        for l in &self.layers {
            vendor_down.entry(l.vendor).or_insert_with(|| rng.chance(vendor_event_rate));
        }
        let healthy = self
            .layers
            .iter()
            .filter(|l| !vendor_down[&l.vendor] && !rng.chance(l.local_defect_rate))
            .count();
        healthy * 2 > self.layers.len()
    }

    /// Monte-Carlo estimate of mission survival probability.
    ///
    /// # Panics
    /// Panics if `trials == 0`.
    pub fn survival_probability(
        &self,
        vendor_event_rate: f64,
        trials: u64,
        rng: &mut SimRng,
    ) -> f64 {
        assert!(trials > 0, "need at least one trial");
        let ok = (0..trials).filter(|_| self.survives_mission(vendor_event_rate, rng)).count();
        ok as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monoculture_shares_vendor_fate() {
        let die = Die::monoculture(3, VendorId(1), 0.0);
        let mut rng = SimRng::new(1);
        // Vendor event takes out all layers at once.
        let p = die.survival_probability(1.0, 200, &mut rng);
        assert_eq!(p, 0.0);
        let p_ok = die.survival_probability(0.0, 200, &mut rng);
        assert_eq!(p_ok, 1.0);
    }

    #[test]
    fn diversity_beats_monoculture_under_vendor_events() {
        let mono = Die::monoculture(3, VendorId(1), 0.01);
        let div = Die::diverse(3, &[VendorId(1), VendorId(2), VendorId(3)], 0.01);
        let mut rng = SimRng::new(2);
        let p_mono = mono.survival_probability(0.2, 20_000, &mut rng);
        let p_div = div.survival_probability(0.2, 20_000, &mut rng);
        assert!(
            p_div > p_mono + 0.05,
            "diverse {p_div:.3} should clearly beat monoculture {p_mono:.3}"
        );
    }

    #[test]
    fn diverse_survival_matches_analytic() {
        // 3 vendors, each down with q=0.2 independently, no local defects:
        // survive iff at most 1 vendor down: (1-q)^3 + 3q(1-q)^2 = 0.896.
        let div = Die::diverse(3, &[VendorId(1), VendorId(2), VendorId(3)], 0.0);
        let mut rng = SimRng::new(3);
        let p = div.survival_probability(0.2, 50_000, &mut rng);
        assert!((p - 0.896).abs() < 0.01, "p={p}");
    }

    #[test]
    fn vendor_count_reported() {
        let div = Die::diverse(5, &[VendorId(1), VendorId(2)], 0.0);
        assert_eq!(div.layer_count(), 5);
        assert_eq!(div.vendor_count(), 2);
    }

    #[test]
    #[should_panic(expected = "odd layer count")]
    fn rejects_even_layers() {
        Die::monoculture(4, VendorId(0), 0.0);
    }
}
