//! Monte-Carlo reliability estimation for netlists under stochastic gate
//! faults — the measurement engine behind experiment E1.

use crate::faults::FaultSampler;
use crate::netlist::Netlist;
use rsoc_sim::{OnlineStats, SimRng};

/// Result of a Monte-Carlo reliability run.
#[derive(Debug, Clone)]
pub struct ReliabilityReport {
    /// Circuit evaluated.
    pub circuit: String,
    /// Per-gate fault probability used.
    pub p_fault: f64,
    /// Trials executed.
    pub trials: u64,
    /// Fraction of trials whose outputs matched the golden (fault-free) run.
    pub correct_fraction: f64,
    /// Average number of faulty gates per trial.
    pub mean_faults: f64,
    /// Logic gate count of the circuit (area proxy).
    pub logic_gates: usize,
}

impl ReliabilityReport {
    /// Probability of an incorrect output.
    pub fn failure_probability(&self) -> f64 {
        1.0 - self.correct_fraction
    }
}

/// Estimates the probability that `netlist` produces correct outputs when
/// each logic gate fails independently with `sampler`'s probability.
///
/// Every trial draws fresh random inputs and a fresh fault map; correctness
/// is judged against the fault-free evaluation on the same inputs.
///
/// # Panics
/// Panics if `trials == 0`.
pub fn estimate_reliability(
    netlist: &Netlist,
    sampler: &FaultSampler,
    trials: u64,
    rng: &mut SimRng,
) -> ReliabilityReport {
    assert!(trials > 0, "need at least one trial");
    let mut correct = 0u64;
    let mut fault_stats = OnlineStats::new();
    for _ in 0..trials {
        let inputs: Vec<bool> = (0..netlist.input_count()).map(|_| rng.chance(0.5)).collect();
        let golden = netlist.eval(&inputs);
        let faults = sampler.sample(netlist, rng);
        fault_stats.push(faults.len() as f64);
        let observed = netlist.eval_with_faults(&inputs, &faults);
        if observed == golden {
            correct += 1;
        }
    }
    ReliabilityReport {
        circuit: netlist.name().to_string(),
        p_fault: sampler.p_fault(),
        trials,
        correct_fraction: correct as f64 / trials as f64,
        mean_faults: fault_stats.mean(),
        logic_gates: netlist.logic_gate_count(),
    }
}

/// Estimates N-modular-redundancy reliability with a *protected* (ideal)
/// voter: each of the `n` copies evaluates with independently sampled
/// faults and the outputs are majority-voted functionally, i.e. the voter
/// itself never fails.
///
/// This is the classic Lyons–Vanderkulk TMR model. Comparing it against
/// [`estimate_reliability`] of [`crate::redundancy::nmr`] (whose voter is
/// built from fault-prone gates) quantifies how much of the redundancy
/// budget the voter itself consumes — E1 reports both.
///
/// # Panics
/// Panics if `trials == 0` or `n` is even.
pub fn estimate_nmr_ideal_voter(
    module: &Netlist,
    n: usize,
    sampler: &FaultSampler,
    trials: u64,
    rng: &mut SimRng,
) -> ReliabilityReport {
    assert!(trials > 0, "need at least one trial");
    assert!(n >= 1 && n % 2 == 1, "NMR requires odd n");
    let mut correct = 0u64;
    let mut fault_stats = OnlineStats::new();
    for _ in 0..trials {
        let inputs: Vec<bool> = (0..module.input_count()).map(|_| rng.chance(0.5)).collect();
        let golden = module.eval(&inputs);
        let mut vote_counts = vec![0u32; module.output_count()];
        let mut total_faults = 0usize;
        for _ in 0..n {
            let faults = sampler.sample(module, rng);
            total_faults += faults.len();
            let out = module.eval_with_faults(&inputs, &faults);
            for (i, bit) in out.iter().enumerate() {
                if *bit {
                    vote_counts[i] += 1;
                }
            }
        }
        fault_stats.push(total_faults as f64);
        let voted: Vec<bool> = vote_counts.iter().map(|c| *c as usize * 2 > n).collect();
        if voted == golden {
            correct += 1;
        }
    }
    ReliabilityReport {
        circuit: format!("{}x{}(ideal-voter)", module.name(), n),
        p_fault: sampler.p_fault(),
        trials,
        correct_fraction: correct as f64 / trials as f64,
        mean_faults: fault_stats.mean(),
        logic_gates: module.logic_gate_count() * n,
    }
}

/// Convenience sweep: reliability of `netlist` across several fault
/// probabilities. Each point uses a forked RNG stream so points are
/// independent and reproducible.
pub fn reliability_sweep(
    netlist: &Netlist,
    p_faults: &[f64],
    trials: u64,
    rng: &SimRng,
) -> Vec<ReliabilityReport> {
    p_faults
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let mut stream = rng.fork(i as u64 + 1);
            estimate_reliability(netlist, &FaultSampler::new(p), trials, &mut stream)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::ripple_carry_adder;
    use crate::redundancy::nmr;

    #[test]
    fn zero_fault_rate_is_perfect() {
        let n = ripple_carry_adder(4);
        let mut rng = SimRng::new(1);
        let rep = estimate_reliability(&n, &FaultSampler::new(0.0), 200, &mut rng);
        assert_eq!(rep.correct_fraction, 1.0);
        assert_eq!(rep.mean_faults, 0.0);
    }

    #[test]
    fn tmr_beats_simplex_at_low_fault_rates() {
        let base = ripple_carry_adder(4);
        let tmr = nmr(&base, 3);
        let rng = SimRng::new(2);
        let p = 0.002;
        let mut r1 = rng.fork(1);
        let mut r2 = rng.fork(2);
        let simplex_rep = estimate_reliability(&base, &FaultSampler::new(p), 4000, &mut r1);
        let tmr_rep = estimate_reliability(&tmr, &FaultSampler::new(p), 4000, &mut r2);
        assert!(
            tmr_rep.correct_fraction > simplex_rep.correct_fraction,
            "TMR {:.4} must beat simplex {:.4} at p={p}",
            tmr_rep.correct_fraction,
            simplex_rep.correct_fraction
        );
    }

    #[test]
    fn tmr_loses_at_extreme_fault_rates() {
        // When faults are ubiquitous, the (larger) TMR circuit fails more:
        // the paper's redundancy-is-not-free crossover.
        let base = ripple_carry_adder(4);
        let tmr = nmr(&base, 3);
        let rng = SimRng::new(3);
        let p = 0.3;
        let mut r1 = rng.fork(1);
        let mut r2 = rng.fork(2);
        let simplex_rep = estimate_reliability(&base, &FaultSampler::new(p), 3000, &mut r1);
        let tmr_rep = estimate_reliability(&tmr, &FaultSampler::new(p), 3000, &mut r2);
        assert!(
            tmr_rep.correct_fraction < simplex_rep.correct_fraction,
            "at p={p} TMR {:.3} should trail simplex {:.3}",
            tmr_rep.correct_fraction,
            simplex_rep.correct_fraction
        );
    }

    #[test]
    fn sweep_is_monotone_in_fault_rate() {
        let n = ripple_carry_adder(3);
        let rng = SimRng::new(4);
        let reports = reliability_sweep(&n, &[0.0, 0.01, 0.1, 0.5], 2000, &rng);
        assert_eq!(reports.len(), 4);
        for w in reports.windows(2) {
            assert!(
                w[0].correct_fraction >= w[1].correct_fraction - 0.02,
                "reliability should not improve with more faults: {} -> {}",
                w[0].correct_fraction,
                w[1].correct_fraction
            );
        }
    }

    #[test]
    fn ideal_voter_tmr_clearly_beats_simplex() {
        let base = ripple_carry_adder(8);
        let rng = SimRng::new(21);
        let p = 0.002;
        let mut r1 = rng.fork(1);
        let mut r2 = rng.fork(2);
        let simplex = estimate_reliability(&base, &FaultSampler::new(p), 5000, &mut r1);
        let tmr = estimate_nmr_ideal_voter(&base, 3, &FaultSampler::new(p), 5000, &mut r2);
        assert!(
            tmr.failure_probability() < simplex.failure_probability() * 0.5,
            "protected-voter TMR must at least halve the failure rate: {} vs {}",
            tmr.failure_probability(),
            simplex.failure_probability()
        );
    }

    #[test]
    fn ideal_voter_beats_gate_voter() {
        let base = ripple_carry_adder(4);
        let gate_voter = nmr(&base, 3);
        let rng = SimRng::new(22);
        let p = 0.001;
        let mut r1 = rng.fork(1);
        let mut r2 = rng.fork(2);
        let real = estimate_reliability(&gate_voter, &FaultSampler::new(p), 20_000, &mut r1);
        let ideal = estimate_nmr_ideal_voter(&base, 3, &FaultSampler::new(p), 20_000, &mut r2);
        assert!(
            ideal.correct_fraction >= real.correct_fraction,
            "the fault-prone voter can only hurt: ideal {} vs real {}",
            ideal.correct_fraction,
            real.correct_fraction
        );
    }

    #[test]
    fn reports_are_reproducible() {
        let n = ripple_carry_adder(2);
        let a = estimate_reliability(&n, &FaultSampler::new(0.05), 500, &mut SimRng::new(9));
        let b = estimate_reliability(&n, &FaultSampler::new(0.05), 500, &mut SimRng::new(9));
        assert_eq!(a.correct_fraction, b.correct_fraction);
        assert_eq!(a.mean_faults, b.mean_faults);
    }
}
