//! Hamming SEC-DED (single-error-correct, double-error-detect) codec.
//!
//! This is the ECC the paper's §III proposes for hybrid registers: "ECC
//! registers add extra bits and the logic required for correction, which
//! both increase the complexity of the circuit at the benefit of tolerating
//! a certain number of bitflips."
//!
//! Layout: extended Hamming code. Codeword bit positions are 1-indexed;
//! positions that are powers of two hold parity bits; position 0 (stored as
//! the top bit here) holds the overall parity for double-error detection.

/// Outcome of decoding a possibly corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// No error detected; payload returned.
    Clean(u64),
    /// A single bit error was corrected; payload plus the corrupted
    /// codeword bit position (1-indexed; `0` = overall parity bit).
    Corrected(u64, u32),
    /// Two-bit error detected; data unrecoverable.
    DoubleError,
}

impl DecodeOutcome {
    /// Payload if recoverable.
    pub fn value(self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean(v) | DecodeOutcome::Corrected(v, _) => Some(v),
            DecodeOutcome::DoubleError => None,
        }
    }
}

/// An extended Hamming SEC-DED code for payloads of 1..=64 bits.
///
/// ```
/// use rsoc_hw::ecc::{DecodeOutcome, Hamming};
/// let code = Hamming::new(32);
/// let cw = code.encode(0xDEAD_BEEF);
/// assert_eq!(code.decode(cw), DecodeOutcome::Clean(0xDEAD_BEEF));
/// // Any single flipped bit is corrected:
/// let corrupted = cw ^ (1 << 7);
/// assert_eq!(code.decode(corrupted).value(), Some(0xDEAD_BEEF));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hamming {
    data_bits: u32,
    parity_bits: u32,
    /// Codeword position of payload bit `i` (scatter/gather map).
    data_pos: [u8; 64],
    /// Coverage mask per Hamming parity bit: the set of codeword
    /// positions whose 1-indexed position has bit `p` set. Parity and
    /// syndrome computations reduce to `count_ones` over these masks —
    /// the software analogue of the hardware XOR tree — instead of
    /// per-bit scans (this codec runs on every USIG counter access, so
    /// it is squarely on the consensus hot path).
    masks: [u128; 7],
}

impl Hamming {
    /// Creates a code for `data_bits`-bit payloads.
    ///
    /// # Panics
    /// Panics unless `1 <= data_bits <= 64`.
    pub fn new(data_bits: u32) -> Self {
        assert!((1..=64).contains(&data_bits), "data width must be 1..=64");
        let mut r = 0u32;
        while (1u64 << r) < (data_bits + r + 1) as u64 {
            r += 1;
        }
        let total = data_bits + r;
        let mut data_pos = [0u8; 64];
        let mut idx = 0usize;
        for pos in 1..=total {
            if pos & (pos - 1) != 0 {
                data_pos[idx] = pos as u8;
                idx += 1;
            }
        }
        let mut masks = [0u128; 7];
        for (p, mask) in masks.iter_mut().enumerate().take(r as usize) {
            for pos in 1..=total {
                if pos & (1u32 << p) != 0 {
                    *mask |= 1u128 << pos;
                }
            }
        }
        Hamming { data_bits, parity_bits: r, data_pos, masks }
    }

    /// Payload width in bits.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Number of Hamming parity bits (excluding the overall parity bit).
    pub fn parity_bits(&self) -> u32 {
        self.parity_bits
    }

    /// Total codeword width: data + parity + 1 overall-parity bit.
    pub fn codeword_bits(&self) -> u32 {
        self.data_bits + self.parity_bits + 1
    }

    /// Rough gate-equivalent cost of the encoder+decoder (XOR trees plus a
    /// correction decoder), for §III complexity accounting.
    pub fn gate_cost(&self) -> u64 {
        let n = self.codeword_bits() as u64;
        // Each parity bit XORs ~n/2 positions; syndrome decode ~n AND-OR; correction n XOR.
        (self.parity_bits as u64 + 1) * (n / 2) + 2 * n
    }

    /// Encodes `data` into a codeword (stored in the low
    /// [`codeword_bits`](Self::codeword_bits) bits of the return value).
    ///
    /// # Panics
    /// Panics if `data` has bits beyond the payload width.
    pub fn encode(&self, data: u64) -> u128 {
        if self.data_bits < 64 {
            assert!(data < (1u64 << self.data_bits), "payload too wide");
        }
        // Scatter data bits into non-power-of-two positions.
        let mut word: u128 = 0;
        let mut rest = data;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            word |= 1u128 << self.data_pos[i];
            rest &= rest - 1;
        }
        // Each Hamming parity bit is one masked popcount (the XOR tree).
        // Position `2^p` is still zero in `word`, so including it in the
        // mask is harmless here and required for the decode syndrome.
        for p in 0..self.parity_bits as usize {
            if (word & self.masks[p]).count_ones() & 1 == 1 {
                word |= 1u128 << (1u32 << p);
            }
        }
        // Overall parity over positions 1..=total, stored at bit 0.
        if (word >> 1).count_ones() % 2 == 1 {
            word |= 1;
        }
        word
    }

    /// Decodes a codeword, correcting single-bit and detecting double-bit
    /// errors.
    pub fn decode(&self, mut word: u128) -> DecodeOutcome {
        let total = self.data_bits + self.parity_bits;
        // Syndrome bit `p` is the parity of the set positions whose index
        // has bit `p` set — one masked popcount per parity bit.
        let mut syndrome: u32 = 0;
        for p in 0..self.parity_bits as usize {
            syndrome |= ((word & self.masks[p]).count_ones() & 1) << p;
        }
        // Overall parity check (positions 0..=total).
        let mask = if total + 1 >= 128 { u128::MAX } else { (1u128 << (total + 1)) - 1 };
        let overall_odd = (word & mask).count_ones() % 2 == 1;

        let corrected_pos = if syndrome == 0 && !overall_odd {
            None // clean
        } else if overall_odd {
            // Single-bit error: at `syndrome` (or the overall parity bit when 0).
            if syndrome > total {
                return DecodeOutcome::DoubleError; // syndrome points outside codeword
            }
            word ^= 1u128 << syndrome;
            Some(syndrome)
        } else {
            // Syndrome nonzero but overall parity even: double error.
            return DecodeOutcome::DoubleError;
        };

        // Gather payload through the scatter map.
        let mut data: u64 = 0;
        for i in 0..self.data_bits as usize {
            data |= (((word >> self.data_pos[i]) & 1) as u64) << i;
        }
        match corrected_pos {
            None => DecodeOutcome::Clean(data),
            Some(p) => DecodeOutcome::Corrected(data, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsoc_sim::SimRng;

    #[test]
    fn parity_bit_counts() {
        assert_eq!(Hamming::new(1).parity_bits(), 2);
        assert_eq!(Hamming::new(4).parity_bits(), 3);
        assert_eq!(Hamming::new(11).parity_bits(), 4);
        assert_eq!(Hamming::new(26).parity_bits(), 5);
        assert_eq!(Hamming::new(32).parity_bits(), 6);
        assert_eq!(Hamming::new(57).parity_bits(), 6);
        assert_eq!(Hamming::new(64).parity_bits(), 7);
        assert_eq!(Hamming::new(64).codeword_bits(), 72);
    }

    #[test]
    fn roundtrip_clean() {
        for width in [1u32, 4, 8, 16, 32, 48, 64] {
            let code = Hamming::new(width);
            let mut rng = SimRng::new(width as u64);
            for _ in 0..200 {
                let data = if width == 64 {
                    rng.next_u64()
                } else {
                    rng.next_u64() & ((1u64 << width) - 1)
                };
                assert_eq!(code.decode(code.encode(data)), DecodeOutcome::Clean(data));
            }
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        for width in [4u32, 16, 64] {
            let code = Hamming::new(width);
            let mut rng = SimRng::new(100 + width as u64);
            for _ in 0..50 {
                let data = rng.next_u64() & if width == 64 { u64::MAX } else { (1 << width) - 1 };
                let cw = code.encode(data);
                for bit in 0..code.codeword_bits() {
                    let corrupted = cw ^ (1u128 << bit);
                    match code.decode(corrupted) {
                        DecodeOutcome::Corrected(v, pos) => {
                            assert_eq!(v, data, "width={width} bit={bit}");
                            assert_eq!(pos, bit, "reported position");
                        }
                        other => panic!("width={width} bit={bit}: got {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn detects_every_double_bit_error() {
        let code = Hamming::new(16);
        let mut rng = SimRng::new(7);
        for _ in 0..20 {
            let data = rng.next_u64() & 0xFFFF;
            let cw = code.encode(data);
            let n = code.codeword_bits();
            for b1 in 0..n {
                for b2 in (b1 + 1)..n {
                    let corrupted = cw ^ (1u128 << b1) ^ (1u128 << b2);
                    assert_eq!(
                        code.decode(corrupted),
                        DecodeOutcome::DoubleError,
                        "bits {b1},{b2}"
                    );
                }
            }
        }
    }

    #[test]
    fn triple_errors_may_miscorrect_but_never_panic() {
        // SEC-DED gives no guarantee beyond 2 flips; just assert totality.
        let code = Hamming::new(8);
        let cw = code.encode(0xA5);
        let mut rng = SimRng::new(13);
        for _ in 0..500 {
            let mut corrupted = cw;
            for _ in 0..3 {
                corrupted ^= 1u128 << rng.below(code.codeword_bits() as u64);
            }
            let _ = code.decode(corrupted);
        }
    }

    #[test]
    fn gate_cost_grows_with_width() {
        assert!(Hamming::new(64).gate_cost() > Hamming::new(16).gate_cost());
        assert!(Hamming::new(16).gate_cost() > Hamming::new(4).gate_cost());
    }

    #[test]
    #[should_panic(expected = "payload too wide")]
    fn encode_rejects_oversized_payload() {
        Hamming::new(4).encode(0x1F);
    }
}
