//! N-modular redundancy transforms (§I of the paper: "backup gates,
//! replicated parallel gates, or diverse gates").
//!
//! [`nmr`] replicates a module N times and votes each output with a majority
//! circuit built from ordinary — fault-prone — gates. This keeps the analysis
//! honest: reliability gains saturate once voter failures dominate, the
//! crossover E1 measures.

use crate::circuits::majority_n;
use crate::netlist::{GateId, Netlist};

/// Builds the N-modular-redundant version of `module` for odd `n >= 1`.
///
/// The result has the same interface as `module` (same input and output
/// counts); internally it instantiates `n` structural copies sharing the
/// primary inputs and votes each output bit with [`majority_n`].
///
/// `nmr(m, 1)` is a structural copy of `m` (no voters).
///
/// # Panics
/// Panics if `n` is even or zero.
///
/// ```
/// use rsoc_hw::circuits::equality_comparator;
/// use rsoc_hw::redundancy::nmr;
/// let eq = equality_comparator(3);
/// let tmr = nmr(&eq, 3);
/// assert_eq!(tmr.input_count(), eq.input_count());
/// assert_eq!(tmr.output_count(), eq.output_count());
/// assert!(tmr.logic_gate_count() > 3 * eq.logic_gate_count());
/// ```
pub fn nmr(module: &Netlist, n: usize) -> Netlist {
    assert!(n >= 1 && n % 2 == 1, "NMR requires odd n >= 1, got {n}");
    let mut out = Netlist::new(format!("{}x{}", module.name(), n));
    let inputs: Vec<GateId> = (0..module.input_count()).map(|_| out.input()).collect();
    let mut copies: Vec<Vec<GateId>> = Vec::with_capacity(n);
    for _ in 0..n {
        copies.push(out.instantiate(module, &inputs));
    }
    for bit in 0..module.output_count() {
        let votes: Vec<GateId> = copies.iter().map(|c| c[bit]).collect();
        let voted = majority_n(&mut out, &votes);
        out.expose(voted);
    }
    out
}

/// Gate-count overhead factor of `nmr(module, n)` relative to `module`,
/// the "space" cost in the paper's space/energy/time-vs-resilience tradeoff.
pub fn nmr_overhead(module: &Netlist, n: usize) -> f64 {
    let base = module.logic_gate_count().max(1) as f64;
    nmr(module, n).logic_gate_count() as f64 / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::ripple_carry_adder;
    use crate::faults::{FaultKind, FaultMap};
    use rsoc_sim::SimRng;

    fn adder_inputs(rng: &mut SimRng, width: usize) -> Vec<bool> {
        (0..2 * width + 1).map(|_| rng.chance(0.5)).collect()
    }

    #[test]
    fn nmr_preserves_function() {
        let base = ripple_carry_adder(4);
        let mut rng = SimRng::new(5);
        for n in [1, 3, 5] {
            let red = nmr(&base, n);
            for _ in 0..50 {
                let inputs = adder_inputs(&mut rng, 4);
                assert_eq!(red.eval(&inputs), base.eval(&inputs), "n={n}");
            }
        }
    }

    #[test]
    fn tmr_masks_any_single_gate_fault() {
        let base = ripple_carry_adder(2);
        let tmr = nmr(&base, 3);
        let mut rng = SimRng::new(9);
        let inputs: Vec<Vec<bool>> = (0..8).map(|_| adder_inputs(&mut rng, 2)).collect();
        for gate_idx in 0..tmr.gate_count() {
            let id = crate::netlist::GateId::new(gate_idx as u32);
            if tmr.inputs().contains(&id) {
                continue; // input corruption is not maskable by modular redundancy
            }
            // Voter gates (after the three copies) are NOT masked — skip the
            // final voter region and assert masking only for copy-internal faults.
            let copies_end = tmr.input_count() + 3 * (base.gate_count() - base.input_count());
            if gate_idx >= copies_end {
                continue;
            }
            for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1, FaultKind::Flip] {
                let mut faults = FaultMap::new();
                faults.insert(id, kind);
                for input in &inputs {
                    assert_eq!(
                        tmr.eval_with_faults(input, &faults),
                        base.eval(input),
                        "gate {gate_idx} {kind:?} must be masked"
                    );
                }
            }
        }
    }

    #[test]
    fn simplex_does_not_mask() {
        let base = ripple_carry_adder(2);
        let simplex = nmr(&base, 1);
        // Fault the first logic gate; at least one input pattern must differ.
        let first_logic = (0..simplex.gate_count())
            .map(|i| crate::netlist::GateId::new(i as u32))
            .find(|id| !simplex.inputs().contains(id))
            .unwrap();
        let mut faults = FaultMap::new();
        faults.insert(first_logic, FaultKind::Flip);
        let mut rng = SimRng::new(11);
        let mut any_diff = false;
        for _ in 0..64 {
            let inputs = adder_inputs(&mut rng, 2);
            if simplex.eval_with_faults(&inputs, &faults) != base.eval(&inputs) {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "an unprotected fault must be observable");
    }

    #[test]
    fn overhead_grows_with_n() {
        let base = ripple_carry_adder(4);
        let o3 = nmr_overhead(&base, 3);
        let o5 = nmr_overhead(&base, 5);
        assert!(o3 > 3.0, "TMR overhead includes voters: {o3}");
        assert!(o5 > o3, "5-MR costs more than TMR");
    }

    #[test]
    #[should_panic(expected = "odd n")]
    fn rejects_even_n() {
        nmr(&ripple_carry_adder(2), 2);
    }
}
